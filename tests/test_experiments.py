"""Integration tests for the experiment harness (profiles, workloads, tables, runner)."""

from __future__ import annotations

import pytest

from repro.benchmarks_data.paper_results import (
    FILL_COLUMNS,
    PAPER_TABLE2,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
    improvement_percent,
)
from repro.benchmarks_data.profiles import all_profiles, default_benchmark_names, get_profile
from repro.experiments import figure1, figure2, table1, table2, table4, table5, table6
from repro.experiments.fill_sweep import FILL_METHODS
from repro.experiments.report import TableResult, percent_improvement, render_markdown, render_table
from repro.experiments.runner import build_parser, run_all
from repro.experiments.techniques import TECHNIQUES, apply_all_techniques, apply_technique
from repro.experiments.workloads import build_workload

SMALL = ["b01", "b03"]


class TestProfilesAndPaperData:
    def test_all_table1_benchmarks_present(self):
        names = {p.name for p in all_profiles()}
        for expected in ("b01", "b12", "b19", "b22"):
            assert expected in names

    def test_profile_lookup(self):
        profile = get_profile("B12")
        assert profile.test_pins == 126 and profile.gates == 1600
        with pytest.raises(KeyError):
            get_profile("c6288")

    def test_pin_split_is_consistent(self):
        for profile in all_profiles():
            assert profile.primary_inputs + profile.flip_flops == profile.test_pins
            assert 0 < profile.x_fraction < 1

    def test_default_names_ordering_and_large_flag(self):
        small = default_benchmark_names()
        everything = default_benchmark_names(include_large=True)
        assert set(small) < set(everything)
        assert "b19" in everything and "b19" not in small

    def test_paper_tables_are_consistent(self):
        # Every benchmark in Table II also appears in Tables IV, V and VI.
        assert set(PAPER_TABLE2) == set(PAPER_TABLE4) == set(PAPER_TABLE5) == set(PAPER_TABLE6)
        for name, row in PAPER_TABLE2.items():
            assert set(row) == set(FILL_COLUMNS)
            # The paper's DP-fill column is the row minimum (its optimality claim).
            assert row["DP-fill"] == min(row.values()), name

    def test_improvement_percent(self):
        assert improvement_percent(100, 50) == 50.0
        assert improvement_percent(0, 50) == 0.0


class TestWorkloads:
    def test_workload_consistency(self):
        workload = build_workload("b03")
        assert workload.cubes.n_pins == workload.circuit.n_test_pins
        assert len(workload.cubes) >= 4
        assert workload.cube_source in ("podem", "synthetic")

    def test_workloads_are_cached(self):
        assert build_workload("b03") is build_workload("b03")

    def test_synthetic_workload_matches_profile_density(self):
        workload = build_workload("b04")
        assert workload.cube_source == "synthetic"
        assert abs(workload.x_percent - workload.profile.x_percent) < 12.0

    def test_large_profile_is_scaled(self):
        workload = build_workload("b17")
        assert workload.scale < 1.0
        assert workload.circuit.n_gates <= 3000


class TestWorkloadCacheKey:
    """An edited netlist or changed ATPG knobs must never serve stale cubes."""

    @staticmethod
    def _fresh_circuit(name: str):
        from repro.circuit.library import itc99_like

        return itc99_like(name, seed=0)

    def test_key_tracks_circuit_structure(self):
        from repro.circuit.gates import GateType
        from repro.experiments.workloads import _cube_cache_key

        profile = get_profile("b01")
        edited = self._fresh_circuit("b01")
        before = _cube_cache_key(profile, edited, "podem", seed=0)
        assert edited.structure_digest()[:12] in before
        inputs = edited.combinational_inputs
        edited.add_gate("extra_probe", GateType.AND, [inputs[0], inputs[1]])
        edited.add_output("extra_probe")
        assert _cube_cache_key(profile, edited, "podem", seed=0) != before

    def test_key_tracks_atpg_knobs(self, monkeypatch):
        import repro.experiments.workloads as workloads_module
        from repro.experiments.workloads import _cube_cache_key

        profile = get_profile("b01")
        circuit = self._fresh_circuit("b01")
        before = _cube_cache_key(profile, circuit, "podem", seed=0)
        monkeypatch.setattr(workloads_module, "ATPG_BACKTRACK_LIMIT", 99)
        changed_limit = _cube_cache_key(profile, circuit, "podem", seed=0)
        assert changed_limit != before
        monkeypatch.setattr(workloads_module, "ATPG_MAX_FAULTS", 7)
        assert _cube_cache_key(profile, circuit, "podem", seed=0) != changed_limit

    def test_synthetic_key_tracks_x_density(self):
        from dataclasses import replace

        from repro.experiments.workloads import _cube_cache_key

        profile = get_profile("b04")
        circuit = self._fresh_circuit("b04")
        key = _cube_cache_key(profile, circuit, "synthetic", seed=0)
        denser = replace(profile, x_percent=profile.x_percent / 2)
        assert _cube_cache_key(denser, circuit, "synthetic", seed=0) != key

    def test_structure_digest_is_content_stable(self):
        a = self._fresh_circuit("b01")
        b = self._fresh_circuit("b01")
        assert a is not b
        assert a.structure_digest() == b.structure_digest()


class TestReportRendering:
    def _table(self) -> TableResult:
        return TableResult(
            title="demo",
            columns=["circuit", "value"],
            rows=[{"circuit": "b01", "value": 4}, {"circuit": "b02", "value": None}],
            notes=["a note"],
        )

    def test_render_table_contains_all_cells(self):
        text = render_table(self._table())
        assert "demo" in text and "b01" in text and "note: a note" in text
        assert "-" in text  # the None cell

    def test_render_markdown(self):
        text = render_markdown(self._table())
        assert text.count("|") > 6 and "### demo" in text

    def test_column_and_row_lookup(self):
        table = self._table()
        assert table.column("value") == [4, None]
        assert table.row_for("circuit", "b02")["value"] is None
        assert table.row_for("circuit", "b99") is None

    def test_percent_improvement(self):
        assert percent_improvement(10, 5) == 50.0
        assert percent_improvement(0, 5) is None
        assert percent_improvement(None, 5) is None


class TestTables:
    def test_table1_rows(self):
        result = table1.run(SMALL)
        assert [row["circuit"] for row in result.rows] == SMALL
        for row in result.rows:
            assert 0 <= row["X% (measured)"] <= 100

    def test_table2_dpfill_is_row_minimum(self):
        result = table2.run(SMALL)
        for row in result.rows:
            values = [row[m] for m in FILL_METHODS]
            assert row["DP-fill"] == min(values)

    def test_table4_never_worse_than_table2_for_dpfill(self):
        tool = table2.run(SMALL)
        iord = table4.run(SMALL)
        for a, b in zip(tool.rows, iord.rows):
            assert b["DP-fill"] <= a["DP-fill"]

    def test_table5_columns_and_improvements(self):
        result = table5.run(SMALL)
        for row in result.rows:
            assert set(TECHNIQUES) <= set(row)
            assert row["Proposed"] <= row["Tool"]
            if row["%impr Tool"] is not None:
                assert row["%impr Tool"] >= 0

    def test_table6_power_columns(self):
        result = table6.run(SMALL)
        for row in result.rows:
            for technique in TECHNIQUES:
                assert row[f"{technique} (uW)"] >= 0.0

    def test_figure1_reproduces_suboptimality(self):
        result = figure1.run()
        assert result.optimum_peak < result.xstat_peak
        table = figure1.as_table(result)
        assert len(table.rows) == 2

    def test_figure2_panels(self):
        result = figure2.run(SMALL)
        assert len(result.panel_a) == 2 and len(result.panel_b) == 2
        assert {series.ordering for series in result.panel_c} == {"tool", "xstat", "i-ordering"}
        tables = figure2.as_tables(result)
        assert len(tables) == 3


class TestTechniques:
    def test_all_techniques_fill_completely(self):
        workload = build_workload("b03")
        outcomes = apply_all_techniques(workload.cubes)
        assert set(outcomes) == set(TECHNIQUES)
        for outcome in outcomes.values():
            assert outcome.filled.is_fully_specified()
            assert outcome.peak_input_toggles >= 0

    def test_unknown_technique_rejected(self):
        workload = build_workload("b01")
        with pytest.raises(KeyError):
            apply_technique("Magic", workload.cubes)

    def test_proposed_is_best_or_tied_on_x_rich_sets(self):
        workload = build_workload("b04")  # synthetic, X-dominated
        outcomes = apply_all_techniques(workload.cubes)
        proposed = outcomes["Proposed"].peak_input_toggles
        assert proposed <= outcomes["Tool"].peak_input_toggles
        assert proposed <= outcomes["Adj-fill"].peak_input_toggles


class TestRunner:
    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args([])
        assert args.seed == 0 and args.out == ""

    def test_run_all_selected_artifacts(self):
        results = run_all(artifacts=["fig1"], names=SMALL)
        assert set(results) == {"fig1"}
        assert results["fig1"][0].rows

    def test_main_writes_report(self, tmp_path, capsys):
        from repro.experiments.runner import main

        out_file = tmp_path / "report.txt"
        code = main(["--artifacts", "fig1", "--benchmarks", "b01", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists() and "Figure 1" in out_file.read_text()
        captured = capsys.readouterr()
        assert "experiment report" in captured.out
