"""Tests for the hardened cluster runtime.

Covers the robustness machinery layered onto ``repro.cluster``: bounded
retry budgets with deterministic backoff, the task quarantine and its
inline last-resort re-execution, corrupt-result detection, the
``queue -> mp -> local -> inline`` degradation ladder, the seeded chaos
harness (``REPRO_CHAOS``), lease-timeout configuration, and the worker
entrypoint's ``--max-idle`` / ``--clean`` maintenance surface.

The acceptance bar throughout: under any injected failure pattern a run
either completes **bit-identically** to the single-process reference or
aborts with a structured quarantine report naming the exact tasks — never
a silent wrong answer, never a hang.
"""

from __future__ import annotations

import os
import pickle
import shutil
import time

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.circuit.library import b01_like_fsm
from repro.cluster import (
    CHAOS_ENV_VAR,
    LEASE_TIMEOUT_ENV_VAR,
    TASK_RETRIES_ENV_VAR,
    ChaosInjector,
    ClusterFaultSimulator,
    LocalTransport,
    QuarantineError,
    QueueTransport,
    TransportError,
    TransportTaskError,
    degraded_transport_name,
    parse_chaos_spec,
    parse_lease_timeout,
    parse_task_retries,
    resolve_lease_timeout,
    resolve_task_retries,
    set_default_lease_timeout,
)
from repro.cluster.chaos import env_injector
from repro.cluster.retry import (
    BACKOFF_CAP,
    backoff_delay,
    format_quarantine_report,
    quarantine_root,
)
from repro.cluster.transport import claim_task
from repro.cluster.worker import build_parser, clean_spool
from repro.cluster.worker import main as worker_main
from repro.cubes.cube import TestSet
from repro.engine import PackedFaultSimulator


def _patterns(circuit, n=120, seed=1):
    rng = np.random.default_rng(seed)
    return TestSet.from_matrix(
        rng.integers(0, 2, size=(n, circuit.n_test_pins)).astype(np.int8)
    )


def _assert_same(reference, result, context=""):
    assert list(reference.detected.items()) == list(result.detected.items()), context
    assert reference.undetected == result.undetected, context
    assert reference.coverage == result.coverage, context


def _queue_transport(**kwargs) -> QueueTransport:
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("lease_timeout", 5.0)
    kwargs.setdefault("poll_interval", 0.01)
    kwargs.setdefault("self_drain_after", 0.01)
    return QueueTransport(**kwargs)


# -- configuration surfaces --------------------------------------------------
class TestRetryBudgetConfig:
    def test_parse_task_retries(self):
        assert parse_task_retries("3") == 3
        assert parse_task_retries(0) == 0
        for bad in ("-1", "two", "1.5", ""):
            with pytest.raises(ValueError, match="non-negative integer"):
                parse_task_retries(bad)

    def test_resolve_task_retries(self, monkeypatch):
        assert resolve_task_retries(5) == 5
        monkeypatch.setenv(TASK_RETRIES_ENV_VAR, "7")
        assert resolve_task_retries() == 7
        monkeypatch.setenv(TASK_RETRIES_ENV_VAR, "nope")
        with pytest.raises(ValueError, match=TASK_RETRIES_ENV_VAR):
            resolve_task_retries()
        monkeypatch.delenv(TASK_RETRIES_ENV_VAR)
        assert resolve_task_retries() == 3


class TestLeaseTimeoutConfig:
    def test_parse_lease_timeout(self):
        assert parse_lease_timeout("2.5") == 2.5
        for bad in ("0", "-1", "soon", ""):
            with pytest.raises(ValueError, match="positive number"):
                parse_lease_timeout(bad)

    def test_resolution_chain(self, monkeypatch):
        monkeypatch.setenv(LEASE_TIMEOUT_ENV_VAR, "2.5")
        assert resolve_lease_timeout() == 2.5
        assert resolve_lease_timeout(1.0) == 1.0  # explicit beats env
        previous = set_default_lease_timeout(9.0)
        try:
            assert resolve_lease_timeout() == 9.0  # override beats env
        finally:
            set_default_lease_timeout(previous)
        monkeypatch.setenv(LEASE_TIMEOUT_ENV_VAR, "never")
        with pytest.raises(ValueError, match=LEASE_TIMEOUT_ENV_VAR):
            resolve_lease_timeout()
        monkeypatch.delenv(LEASE_TIMEOUT_ENV_VAR)
        assert resolve_lease_timeout() == 15.0

    def test_transport_uses_resolved_timeout(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEASE_TIMEOUT_ENV_VAR, "3.25")
        transport = QueueTransport(spool=str(tmp_path / "spool"), workers=0, jobs=2)
        try:
            assert transport.lease_timeout == 3.25
        finally:
            transport.close()


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay(2, "c0t000001") == backoff_delay(2, "c0t000001")
        assert backoff_delay(2, "c0t000001") != backoff_delay(2, "c0t000002")

    def test_exponential_and_capped(self):
        previous = 0.0
        for attempt in range(1, 12):
            delay = backoff_delay(attempt, "task")
            base = min(BACKOFF_CAP, 0.1 * 2 ** (attempt - 1))
            assert base <= delay < 2.0 * base
            if attempt <= 6:
                assert delay > previous / 4  # grows (modulo jitter)
            previous = delay


# -- chaos harness -----------------------------------------------------------
class TestChaosSpec:
    def test_parse_ok(self):
        seed, rates = parse_chaos_spec("7:kill=0.05, corrupt=0.1,dup=1")
        assert seed == 7
        assert rates == {"kill": 0.05, "corrupt": 0.1, "dup": 1.0}

    @pytest.mark.parametrize(
        "bad",
        ["kill=0.5", "x:kill=0.5", "7:explode=0.5", "7:kill=1.5", "7:kill=-0.1", "7:", "7:kill"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_chaos_spec(bad)

    def test_env_injector(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "3:kill=1.0")
        injector = env_injector()
        assert injector is not None and injector.seed == 3
        assert env_injector() is injector  # cached per env value
        monkeypatch.delenv(CHAOS_ENV_VAR)
        assert env_injector() is None


class TestChaosInjector:
    def test_decisions_are_deterministic(self):
        a = ChaosInjector(11, {"kill": 0.3, "corrupt": 0.5})
        b = ChaosInjector(11, {"kill": 0.3, "corrupt": 0.5})
        keys = [f"t{i % 5}" for i in range(60)]
        draws_a = [(a.should("kill", k), a.should("corrupt", k)) for k in keys]
        draws_b = [(b.should("kill", k), b.should("corrupt", k)) for k in keys]
        assert draws_a == draws_b
        assert any(flag for pair in draws_a for flag in pair)
        assert not all(flag for pair in draws_a for flag in pair)

    def test_rate_extremes(self):
        injector = ChaosInjector(1, {"kill": 1.0, "stall": 0.0})
        assert all(injector.should("kill", "t") for _ in range(10))
        assert not any(injector.should("stall", "t") for _ in range(10))
        assert not injector.should("corrupt", "t")  # unconfigured kind

    def test_corrupt_bytes(self):
        injector = ChaosInjector(5, {"corrupt": 1.0})
        blob = pickle.dumps(("ok", list(range(100))))
        torn = injector.corrupt_bytes(blob, "t1")
        assert 0 < len(torn) < len(blob)
        assert torn == injector.corrupt_bytes(blob, "t1")
        with pytest.raises(Exception):
            pickle.loads(torn)


# -- retry / quarantine over the queue transport -----------------------------
class TestRetryAndQuarantine:
    def test_failing_task_retries_until_success(self, tmp_path):
        marker = str(tmp_path / "attempts")
        transport = _queue_transport(task_retries=3)
        try:
            task_id = transport.submit(
                {
                    "kind": "echo",
                    "payload": 9,
                    "attempt_marker": marker,
                    "fail_until_attempt": 2,
                }
            )
            assert transport.next_result(timeout=30.0) == (task_id, 9)
            with open(marker) as handle:
                assert sum(1 for _ in handle) == 2
            assert transport.quarantined == []
        finally:
            transport.close()

    def test_exhausted_task_quarantines_with_report(self, tmp_path):
        transport = _queue_transport(task_retries=1)
        try:
            task_id = transport.submit({"kind": "echo", "fail": "boom"})
            with pytest.raises(QuarantineError) as excinfo:
                transport.next_result(timeout=30.0)
            err = excinfo.value
            assert isinstance(err, TransportTaskError)  # legacy contract
            assert err.task_id == task_id
            assert len(err.report) == 1
            entry = err.report[0]
            assert entry["task_id"] == task_id
            assert entry["kind"] == "echo"
            assert entry["attempts"] >= 2  # budget + the inline attempt
            directory = os.path.join(quarantine_root(transport.spool), task_id)
            assert os.path.isdir(directory)
            for name in ("envelope.pickle", "tracebacks.txt", "events.jsonl", "report.json"):
                assert os.path.exists(os.path.join(directory, name)), name
            with open(os.path.join(directory, "envelope.pickle"), "rb") as handle:
                envelope = pickle.load(handle)
            assert envelope["kind"] == "echo" and envelope["fail"] == "boom"
            with open(os.path.join(directory, "tracebacks.txt")) as handle:
                assert "echo task failed on request" in handle.read()
            assert transport.quarantined == [entry]
            assert task_id in format_quarantine_report(err.report)
        finally:
            transport.close()

    def test_quarantined_task_recovers_inline(self, tmp_path):
        """Exhausted budget, but the task is healthy in the parent: the
        inline re-execution completes the run with the correct result."""
        marker = str(tmp_path / "attempts")
        transport = _queue_transport(task_retries=0)
        try:
            task_id = transport.submit(
                {
                    "kind": "echo",
                    "payload": 5,
                    "attempt_marker": marker,
                    "fail_until_attempt": 2,
                }
            )
            assert transport.next_result(timeout=30.0) == (task_id, 5)
            # Forensics are still on disk even though the run completed.
            assert os.path.isdir(os.path.join(quarantine_root(transport.spool), task_id))
            assert transport.quarantined == []  # the run did not lose the task
        finally:
            transport.close()

    def test_corrupt_result_is_retried(self, tmp_path):
        transport = _queue_transport()
        try:
            task_id = transport.submit({"kind": "echo", "payload": 11})
            claimed = claim_task(transport.spool)
            assert claimed is not None and claimed[0] == task_id
            blob = pickle.dumps(("ok", 11), protocol=pickle.HIGHEST_PROTOCOL)
            with open(
                os.path.join(transport.spool, "results", f"{task_id}.result"), "wb"
            ) as handle:
                handle.write(blob[: len(blob) // 2])  # torn write
            assert transport.next_result(timeout=30.0) == (task_id, 11)
            assert transport.quarantined == []
        finally:
            transport.close()

    def test_vanished_spool_raises_instead_of_hanging(self):
        transport = _queue_transport(self_drain_after=60.0)
        try:
            transport.submit({"kind": "echo", "payload": 1, "sleep": 60})
            shutil.rmtree(os.path.join(transport.spool, "tasks"))
            start = time.time()
            with pytest.raises(TransportError, match="vanished"):
                transport.next_result(timeout=30.0)
            assert time.time() - start < 10.0
        finally:
            transport.close()


# -- degradation ladder ------------------------------------------------------
class TestDegradationLadder:
    def test_rung_order(self):
        assert degraded_transport_name("queue") == "mp"
        assert degraded_transport_name("mp") == "local"
        assert degraded_transport_name("local") is None
        assert degraded_transport_name("custom") is None

    def test_fault_sim_steps_down_one_rung(self, monkeypatch):
        """A spec-resolved transport that dies mid-run is replaced by the
        next rung, not by an immediate drop to inline."""

        class ExplodingQueue(LocalTransport):
            name = "queue"

            def next_result(self, timeout=30.0):
                raise TransportError("transport lost")

        import repro.cluster.fault_sim as fault_sim_mod

        resolved = []

        def fake_resolve(spec, jobs=None):
            resolved.append(spec)
            return ExplodingQueue() if spec == "queue" else LocalTransport()

        monkeypatch.setattr(fault_sim_mod, "resolve_transport", fake_resolve)
        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 120, seed=5)
        faults = collapse_faults(circuit)
        reference = PackedFaultSimulator(circuit).run(patterns, faults)
        simulator = ClusterFaultSimulator(
            circuit, transport="queue", jobs=2, min_chunk_faults=2, chunks_per_worker=2
        )
        result = simulator.run(patterns, faults)
        _assert_same(reference, result, "degraded run")
        assert simulator.last_run_stats["degraded_from"] == "queue"
        assert resolved == ["queue", "mp"]


# -- chaos end to end --------------------------------------------------------
class TestChaosEndToEnd:
    def test_certain_kill_recovered_by_lease_expiry(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CHAOS_ENV_VAR, "1:kill=1.0")
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=1,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.01,
            self_drain_after=0.5,
        )
        try:
            task_id = transport.submit({"kind": "echo", "payload": 21})
            assert transport.next_result(timeout=60.0) == (task_id, 21)
            assert transport.retries >= 1  # the killed claim expired
            assert transport.quarantined == []
        finally:
            transport.close()

    def test_fault_sim_parity_under_mixed_chaos(self, monkeypatch):
        """The acceptance bar: with workers dying, results torn and claims
        leaking, the fault-sim result is still bit-identical to packed."""
        monkeypatch.setenv(CHAOS_ENV_VAR, "7:kill=0.2,corrupt=0.2,dup=0.2")
        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 120, seed=5)
        faults = collapse_faults(circuit)
        reference = PackedFaultSimulator(circuit).run(patterns, faults)
        transport = QueueTransport(
            workers=2,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.01,
            self_drain_after=0.5,
            task_retries=6,
        )
        try:
            simulator = ClusterFaultSimulator(
                circuit,
                transport=transport,
                jobs=2,
                min_chunk_faults=2,
                chunks_per_worker=2,
            )
            result = simulator.run(patterns, faults)
            _assert_same(reference, result, "chaos parity")
        finally:
            transport.close()


# -- worker maintenance surface ----------------------------------------------
class TestWorkerMaintenance:
    def test_max_idle_flag_and_alias(self):
        parser = build_parser()
        assert parser.parse_args(["--spool", "s", "--max-idle", "5"]).max_idle == 5.0
        assert parser.parse_args(["--spool", "s", "--idle-exit", "5"]).max_idle == 5.0
        assert parser.parse_args(["--spool", "s"]).max_idle is None

    def test_clean_flag_parses(self):
        args = build_parser().parse_args(["--spool", "s", "--clean", "--ttl", "10"])
        assert args.clean and args.ttl == 10.0

    def test_clean_spool_removes_stale_debris(self, tmp_path):
        spool = str(tmp_path / "spool")
        for sub in ("tasks", "claimed", "results", "workers", "events"):
            os.makedirs(os.path.join(spool, sub))
        stale = os.path.join(spool, "results", "dead.result")
        fresh = os.path.join(spool, "tasks", "live.task")
        for path in (stale, fresh):
            with open(path, "w") as handle:
                handle.write("x")
        old = time.time() - 1000.0
        os.utime(stale, (old, old))
        quarantine = os.path.join(spool, "quarantine", "t1")
        os.makedirs(quarantine)
        with open(os.path.join(quarantine, "report.json"), "w") as handle:
            handle.write("{}")
        os.utime(quarantine, (old, old))
        removed = clean_spool(spool, ttl=500.0)
        assert stale in removed and quarantine in removed
        assert not os.path.exists(stale) and not os.path.exists(quarantine)
        assert os.path.exists(fresh)  # fresh debris and the spool survive
        assert os.path.isdir(spool)

    def test_clean_spool_removes_dead_directory_whole(self, tmp_path):
        spool = str(tmp_path / "spool")
        os.makedirs(os.path.join(spool, "tasks"))
        stale = os.path.join(spool, "tasks", "orphan.task")
        with open(stale, "w") as handle:
            handle.write("x")
        old = time.time() - 1000.0
        os.utime(stale, (old, old))
        removed = clean_spool(spool, ttl=500.0)
        assert spool in removed
        assert not os.path.exists(spool)

    def test_clean_subcommand(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        os.makedirs(os.path.join(spool, "results"))
        stale = os.path.join(spool, "results", "dead.result")
        with open(stale, "w") as handle:
            handle.write("x")
        old = time.time() - 1000.0
        os.utime(stale, (old, old))
        assert worker_main(["--spool", spool, "--clean", "--ttl", "500"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out and "dead.result" in out
        assert not os.path.exists(stale)
