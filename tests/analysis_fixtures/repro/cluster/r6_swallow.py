"""R6 positive: broad exception handlers that swallow the failure."""


def load_or_default(path):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        return None


def best_effort_cleanup(paths):
    for path in paths:
        try:
            path.unlink()
        except:  # noqa: E722
            pass


def swallow_tuple(task):
    try:
        return task.run()
    except (ValueError, Exception):
        return None
