"""R6 negative: broad handlers that re-raise, record, or document."""

from repro.obs import recorder as obs


def annotate_and_reraise(task):
    try:
        return task.run()
    except Exception as err:
        raise RuntimeError(f"task {task.id} failed") from err


def record_and_continue(task):
    try:
        return task.run()
    except Exception as err:
        obs.event("task_failed", task_id=task.id, detail=repr(err))
        return None


def documented_swallow(path):
    try:
        return path.read_text()
    except Exception:  # repro: allow[R6] missing forensics file is expected
        return None


def narrow_handler(path):
    # Catching a specific expected error is normal control flow, not R6.
    try:
        return path.read_text()
    except OSError:
        return None
