"""R4 positive: task handlers and pool callables that cannot cross a spawn."""


def make_handlers(config):
    def handle_simulate(task):
        return config["scale"] * task["n"]  # closure over config

    return handle_simulate


def submit_all(pool, tasks):
    handles = []
    for task in tasks:
        handles.append(pool.apply_async(lambda t: t["n"] + 1, (task,)))

    def local_runner(task):
        return task["n"]

    handles.append(pool.apply_async(local_runner, (tasks[0],)))
    return handles


_EXECUTORS = {
    "echo": lambda task: task,
    "simulate": make_handlers({"scale": 2}),
}
