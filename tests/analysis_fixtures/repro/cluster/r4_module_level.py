"""R4 negative: spawn-safe task handlers and pool submissions."""


def handle_echo(task):
    return task


def handle_simulate(task):
    return task["n"] * 2


def submit_all(pool, tasks):
    return [pool.apply_async(handle_simulate, (task,)) for task in tasks]


_EXECUTORS = {
    "echo": handle_echo,
    "simulate": handle_simulate,
}
