"""R3 negative: every REPRO_* knob goes through the declaration registry."""

import os

from repro import envvars


def jobs_from_env():
    return envvars.JOBS.read() or 1


def backend_from_env():
    return envvars.BACKEND.read()


def unrelated_env_read():
    # Non-REPRO names are outside the registry's jurisdiction.
    return os.environ.get("HOME")
