"""R3 positive: REPRO_* env reads bypassing or missing the registry."""

import os


def jobs_from_env():
    # Declared variable, but read directly: its parser/default are bypassed.
    return int(os.environ.get("REPRO_JOBS", "1"))


def rogue_knob():
    # Never declared in repro.envvars at all.
    return os.getenv("REPRO_UNDECLARED_KNOB")


def subscript_read():
    return os.environ["REPRO_BACKEND"]
