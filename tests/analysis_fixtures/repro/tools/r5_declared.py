"""R5 negative: declared counters, prefixes and span roots only."""

from repro.obs import recorder as obs


def emit(result, circuit_name):
    obs.counter("cluster.tasks_executed")
    obs.counter(f"podem.status.{result.status}")  # declared dynamic family
    obs.add_counters(result.stats, prefix="fault_sim.")
    obs.add_counters(
        {
            "podem.faults": 1,
            "podem.backtracks": result.backtracks,
        }
    )
    obs.counter("obs.intervals_dropped")  # timeline ring-buffer overflow
    with obs.span(f"fault_sim/{circuit_name}/words/grade"):
        pass
    with obs.span("runner/table1/collect"):
        pass
