"""R5 positive: telemetry names that escape the declared manifest."""

from repro.obs import recorder as obs


def emit(result):
    obs.counter("totally_ungrammatical")  # no subsystem prefix at all
    obs.counter("cluster.not_in_manifest")  # parses but is undeclared
    obs.counter(f"runner.cell.{result.kind}")  # undeclared dynamic family
    obs.add_counters(result.stats, prefix="rogue.")  # undeclared prefix
    obs.counter("obs.not_a_real_interval_counter")  # undeclared obs.* name
    with obs.span("bogus/root/path"):  # undeclared span root
        pass
