"""R2 negative: both tail-safe idioms for word-table consumption."""

from repro.engine.packed import WORD_BITS, evaluate_words, tail_mask

import numpy as np


def good_table_self_masked(program, packed, n_patterns):
    # Passing n_patterns makes evaluate_words zero the tail itself.
    return evaluate_words(program, packed, n_patterns)


def count_detections(good, n_patterns):
    # Explicit masking: the last word is ANDed with tail_mask before use.
    n_words = -(-n_patterns // WORD_BITS)
    total = 0
    for word in range(n_words):
        value = np.uint64(good[0, word])
        if word == n_words - 1:
            value &= tail_mask(n_patterns)
        total += int(value).bit_count()
    return total
