"""R1 positive: nondeterminism sources in a determinism-contract module."""

import os
import random
import time
import uuid

import numpy as np


def shuffled_order(items):
    random.shuffle(items)  # unseeded global RNG
    return items


def noisy_matrix(n):
    return np.random.rand(n, n)  # global numpy RNG


def stamp_result(payload):
    payload["ts"] = time.time()  # wall clock into a result payload
    payload["id"] = uuid.uuid4().hex  # entropy-derived identity
    payload["salt"] = os.urandom(4)  # raw entropy
    return payload


def serialize(nets):
    out = []
    for net in {"a", "b", "c"}:  # set iteration feeds ordered output
        out.append(net)
    return out
