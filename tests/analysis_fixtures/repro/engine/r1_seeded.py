"""R1 negative: the deterministic counterparts of every r1_unseeded sin."""

import random
import time
from hashlib import blake2b

import numpy as np


def shuffled_order(items, seed):
    random.Random(seed).shuffle(items)  # seeded instance is fine
    return items


def noisy_matrix(n, seed):
    return np.random.default_rng(seed).random((n, n))


def stamp_result(payload, blob):
    start = time.perf_counter()  # monotonic timing is fine
    payload["id"] = blake2b(blob, digest_size=8).hexdigest()  # content digest
    payload["elapsed"] = time.perf_counter() - start
    return payload


def serialize(nets):
    out = []
    for net in sorted({"a", "b", "c"}):  # sorted() pins the order
        out.append(net)
    return out
