"""R2 negative: fault-word packing under the fault_lane_mask discipline."""

from repro.engine.fault import FAULT_WORD_LANES, fault_lane_mask


def grade_fault_words(program, good, sites, stuck_values):
    # The undetected set starts from fault_lane_mask, so the unpopulated
    # tail lanes of the last word can never record a detection.
    detected = []
    for word_lo in range(0, len(sites), FAULT_WORD_LANES):
        word = sites[word_lo : word_lo + FAULT_WORD_LANES]
        undet = fault_lane_mask(len(word))
        diff = _diff_word(program, good, word, stuck_values)
        new = diff & undet
        while new:
            lane = (new & -new).bit_length() - 1
            detected.append(word_lo + lane)
            new &= new - 1
    return detected


def _diff_word(program, good, word, stuck_values):
    return 0
