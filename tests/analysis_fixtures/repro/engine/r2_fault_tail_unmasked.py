"""R2 positive: fault-word packing that leaks unpopulated tail lanes."""

from repro.engine.fault import FAULT_WORD_LANES


def grade_fault_words(program, good, sites, stuck_values):
    # Packs faults into 64-lane words but never applies fault_lane_mask:
    # the last word's unpopulated lanes ride along as valid detections and
    # scatter onto fault indices that do not exist.
    detected = []
    for word_lo in range(0, len(sites), FAULT_WORD_LANES):
        word = sites[word_lo : word_lo + FAULT_WORD_LANES]
        undet = (1 << FAULT_WORD_LANES) - 1
        diff = _diff_word(program, good, word, stuck_values)
        new = diff & undet
        while new:
            lane = (new & -new).bit_length() - 1
            detected.append(word_lo + lane)
            new &= new - 1
    return detected


def _diff_word(program, good, word, stuck_values):
    return 0
