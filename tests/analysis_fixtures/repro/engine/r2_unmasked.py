"""R2 positive: word-table consumption that leaks tail-word garbage."""

from repro.engine.packed import WORD_BITS, evaluate_words

import numpy as np


def good_table_unmasked(program, packed):
    # evaluate_words without n_patterns: the last word keeps garbage bits,
    # and nothing in this function masks them.
    return evaluate_words(program, packed)


def count_detections(good, n_patterns):
    # Word-level arithmetic over a word table without tail_mask: the final
    # popcount includes bits past n_patterns.
    n_words = -(-n_patterns // WORD_BITS)
    total = 0
    for word in range(n_words):
        total += int(good[0, word]).bit_count()
    return total
