"""Tests for the fault-parallel grading kernel (``mode="faults"``).

The kernel packs 64 faults per ``uint64`` lane word and replays each
pattern once over the union of the packed faults' cones, so the contract
is the same bit-for-bit parity bar the lanes and words kernels already
clear: identical detection maps, identical first-detecting pattern
indices, identical fault order — against the naive reference, across
every benchmark profile, on every backend (packed / sharded / cluster
over local, mp and queue transports, including a chaos-seeded kill), and
through PODEM's fault-dropping sweep where the kernel collapses the
historical one-fault-at-a-time tail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.faults import full_fault_list
from repro.atpg.tpg import generate_test_cubes
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm
from repro.cluster import ClusterFaultSimulator, QueueTransport
from repro.cluster.chaos import CHAOS_ENV_VAR
from repro.cubes.cube import TestSet
from repro.engine import (
    FAULT_MODE_ENV_VAR,
    FAULT_WORD_LANES,
    FAULTS_MODE_MAX_PATTERNS,
    FAULTS_MODE_MIN_FAULTS,
    LANE_MODE_MAX_PATTERNS,
    NaiveFaultSimulator,
    PackedFaultSimulator,
    ShardedFaultSimulator,
    fault_lane_mask,
    resolve_grading_kernel,
)
from repro.experiments.workloads import build_workload, default_workload_names


def _random_patterns(circuit, n_patterns: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n_patterns, circuit.n_test_pins)).astype(np.int8)


def _patterns(circuit, n: int, seed: int = 0) -> TestSet:
    return TestSet.from_matrix(_random_patterns(circuit, n, seed=seed))


def _sample_faults(circuit, cap: int):
    faults = collapse_faults(circuit)
    if len(faults) > cap:
        stride = len(faults) / cap
        faults = [faults[int(i * stride)] for i in range(cap)]
    return faults


def _assert_same(reference, result, context=""):
    assert list(reference.detected.items()) == list(result.detected.items()), context
    assert reference.undetected == result.undetected, context
    assert reference.coverage == result.coverage, context


class TestFaultLaneMask:
    """The fault-axis dual of tail_mask: unpopulated lanes never grade."""

    def test_values(self):
        assert fault_lane_mask(1) == 1
        assert fault_lane_mask(63) == (1 << 63) - 1
        assert fault_lane_mask(64) == (1 << 64) - 1
        assert fault_lane_mask(65) == 1
        assert fault_lane_mask(130) == 3

    def test_full_words_saturate(self):
        full = (1 << FAULT_WORD_LANES) - 1
        assert fault_lane_mask(FAULT_WORD_LANES) == full
        assert fault_lane_mask(4 * FAULT_WORD_LANES) == full


class TestKernelResolution:
    """The auto heuristic picks the kernel from the run's (patterns, faults) shape."""

    @pytest.mark.parametrize("mode", ["lanes", "words", "faults"])
    def test_explicit_mode_passes_through(self, mode):
        assert resolve_grading_kernel(mode, 1, 10_000) == mode
        assert resolve_grading_kernel(mode, 10_000, 1) == mode

    def test_wide_pattern_sets_go_to_words(self):
        assert (
            resolve_grading_kernel("auto", LANE_MODE_MAX_PATTERNS + 1, 100_000)
            == "words"
        )

    def test_many_faults_few_patterns_goes_to_faults(self):
        assert (
            resolve_grading_kernel(
                "auto", FAULTS_MODE_MAX_PATTERNS, FAULTS_MODE_MIN_FAULTS
            )
            == "faults"
        )
        # PODEM's drop sweep shape: one filled cube, the whole remaining list.
        assert resolve_grading_kernel("auto", 1, 1000) == "faults"

    def test_middle_ground_stays_on_lanes(self):
        assert resolve_grading_kernel("auto", FAULTS_MODE_MAX_PATTERNS + 1, 1000) == "lanes"
        assert resolve_grading_kernel("auto", 8, FAULTS_MODE_MIN_FAULTS - 1) == "lanes"

    def test_auto_run_reports_faults_kernel(self):
        circuit = generate_circuit(CircuitSpec("auto_faults", 8, 6, 120, seed=2))
        faults = full_fault_list(circuit)
        assert len(faults) >= FAULTS_MODE_MIN_FAULTS
        simulator = PackedFaultSimulator(circuit, mode="auto")
        result = simulator.run(_patterns(circuit, FAULTS_MODE_MAX_PATTERNS), faults)
        assert simulator.last_run_stats["fault_mode"] == "faults"
        reference = PackedFaultSimulator(circuit, mode="lanes").run(
            _patterns(circuit, FAULTS_MODE_MAX_PATTERNS), faults
        )
        _assert_same(reference, result)


class TestBenchmarkProfileParity:
    """naive × lanes × words × faults over every benchmark profile."""

    @pytest.mark.parametrize("name", default_workload_names())
    def test_four_way_parity(self, name):
        workload = build_workload(name)
        circuit = workload.circuit
        # >= 2 fault words with a ragged tail; capped so the naive
        # reference stays affordable on the largest profiles.
        cap = 130 if circuit.n_gates <= 650 else 70
        faults = _sample_faults(circuit, cap)
        patterns = _patterns(circuit, 45, seed=7)
        reference = NaiveFaultSimulator(circuit).run(patterns, faults)
        for mode in ("lanes", "words", "faults"):
            for drop in (True, False):
                result = PackedFaultSimulator(circuit, mode=mode).run(
                    patterns, faults, drop_detected=drop
                )
                _assert_same(reference, result, (name, mode, drop))


class TestForcedFaultsMode:
    """REPRO_FAULT_MODE=faults must hold on every distributed backend."""

    def test_sharded_honours_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_MODE_ENV_VAR, "faults")
        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 100, seed=3)
        faults = full_fault_list(circuit)
        simulator = ShardedFaultSimulator(
            circuit, jobs=2, min_chunk_faults=2, chunks_per_worker=2
        )
        result = simulator.run(patterns, faults)
        assert simulator.mode == "faults"
        _assert_same(NaiveFaultSimulator(circuit).run(patterns, faults), result)

    @pytest.mark.parametrize("transport", ["local", "mp"])
    def test_cluster_honours_env(self, monkeypatch, transport):
        monkeypatch.setenv(FAULT_MODE_ENV_VAR, "faults")
        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 100, seed=3)
        faults = collapse_faults(circuit)
        simulator = ClusterFaultSimulator(
            circuit, transport=transport, jobs=2, min_chunk_faults=2, chunks_per_worker=2
        )
        result = simulator.run(patterns, faults)
        assert simulator.mode == "faults"
        if transport == "mp" and simulator.last_run_stats["mode"] == "inline":
            pytest.skip("worker pool unavailable in this environment")
        reference = PackedFaultSimulator(circuit, mode="lanes").run(patterns, faults)
        _assert_same(reference, result, transport)

    def test_cluster_queue_with_chaos_kill(self, monkeypatch):
        monkeypatch.setenv(FAULT_MODE_ENV_VAR, "faults")
        monkeypatch.setenv(CHAOS_ENV_VAR, "11:kill=0.2")
        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 100, seed=3)
        faults = collapse_faults(circuit)
        reference = PackedFaultSimulator(circuit, mode="lanes").run(patterns, faults)
        transport = QueueTransport(
            workers=2,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.01,
            self_drain_after=0.5,
            task_retries=6,
        )
        try:
            simulator = ClusterFaultSimulator(
                circuit,
                transport=transport,
                jobs=2,
                min_chunk_faults=2,
                chunks_per_worker=2,
            )
            result = simulator.run(patterns, faults)
            assert simulator.mode == "faults"
            _assert_same(reference, result, "chaos kill")
        finally:
            transport.close()


class TestPodemFaultPackedDrop:
    """The fault-packed drop sweep must not change a single ATPG byte."""

    def _assert_results_identical(self, a, b, context=""):
        assert np.array_equal(a.cubes.matrix, b.cubes.matrix), context
        assert a.circuit_name == b.circuit_name, context
        assert list(a.detected_faults.items()) == list(b.detected_faults.items()), context
        assert a.untestable_faults == b.untestable_faults, context
        assert a.aborted_faults == b.aborted_faults, context
        assert a.total_faults == b.total_faults, context

    def test_atpg_result_byte_identical_across_drop_modes(self):
        circuit = build_workload("b10").circuit
        kwargs = dict(max_faults=150, backtrack_limit=15, seed=0)
        lanes = generate_test_cubes(circuit, drop_fault_mode="lanes", **kwargs)
        faults_mode = generate_test_cubes(circuit, drop_fault_mode="faults", **kwargs)
        default = generate_test_cubes(circuit, **kwargs)
        assert len(lanes.cubes) > 4
        self._assert_results_identical(lanes, faults_mode, "lanes vs faults")
        self._assert_results_identical(lanes, default, "lanes vs default")
