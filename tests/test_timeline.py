"""Timeline tier tests: clock anchoring, interval recording, trace export,
run reports, live top, and the bench-history ledger.

The timeline contract extends the counter-parity contract one axis further:
span *intervals* recorded in queue workers on other processes must merge
onto the parent's wall-clock axis (per-recorder clock anchor), dedupe by
task id like counters, and export as Chrome trace-event JSON whose per-
worker tracks a viewer can read directly.  The run report and ``top`` are
pure consumers of the same payloads/event logs, and the history ledger
turns ``BENCH_engine.json`` overwrites into an append-only trajectory.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cluster import QueueTransport
from repro.cluster.chaos import CHAOS_ENV_VAR
from repro.obs import __main__ as obs_cli
from repro.obs import history as obs_history
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs
from repro.obs import report as obs_report
from repro.obs import timeline
from repro.obs import top as obs_top

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "data")

#: The synthetic payload behind ``tests/data/golden_trace.json`` — fixed
#: wall times so the exported trace is byte-stable.
GOLDEN_PAYLOAD = {
    "schema": 2,
    "enabled": True,
    "truncated": False,
    "counters": {},
    "spans": [],
    "events": [
        {"ts": 1000.0005, "kind": "worker_joined", "worker": "w-aa11"},
        {
            "ts": 1000.0160,
            "kind": "task_retried",
            "task_id": "t-2",
            "transport": "queue",
        },
    ],
    "intervals": [
        {
            "path": "runner.cluster",
            "start_s": 1000.0,
            "dur_s": 0.020,
            "pid": 10,
            "worker": None,
        },
        {
            "path": "fault_sim/b12/lanes/grade",
            "start_s": 1000.001,
            "dur_s": 0.008,
            "pid": 11,
            "worker": "w-aa11",
            "task": "t-1",
        },
        {
            "path": "fault_sim/b12/lanes/grade",
            "start_s": 1000.011,
            "dur_s": 0.006,
            "pid": 11,
            "worker": "w-aa11",
            "task": "t-2",
        },
    ],
    "clock": {"wall_anchor_s": 1000.0, "pid": 10, "worker": None},
    "meta": {"tool": "golden"},
}


@pytest.fixture(autouse=True)
def _clean_recorder():
    obs.disable()
    yield
    obs.disable()


# -- clock anchoring ----------------------------------------------------------
class TestClockAnchor:
    def test_event_ts_is_wall_time(self):
        obs.enable()
        before = time.time()
        obs.event("probe")
        after = time.time()
        ts = obs.snapshot()["events"][0]["ts"]
        assert before - 0.001 <= ts <= after + 0.001

    def test_interval_start_is_wall_time(self):
        obs.enable()
        obs.enable_timeline()
        before = time.time()
        with obs.span("fault_sim/c/grade"):
            time.sleep(0.002)
        after = time.time()
        (interval,) = obs.snapshot()["intervals"]
        assert before - 0.001 <= interval["start_s"]
        assert interval["start_s"] + interval["dur_s"] <= after + 0.001

    def test_events_and_intervals_share_one_axis(self):
        obs.enable()
        obs.enable_timeline()
        obs.event("first")
        with obs.span("fault_sim/c/grade"):
            pass
        obs.event("last")
        snap = obs.snapshot()
        first, last = snap["events"][0]["ts"], snap["events"][1]["ts"]
        (interval,) = snap["intervals"]
        assert first <= interval["start_s"]
        assert interval["start_s"] + interval["dur_s"] <= last + 0.001


# -- interval recording -------------------------------------------------------
class TestTimelineRecorder:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.TIMELINE_ENV_VAR, raising=False)
        obs.enable()
        assert not obs.timeline_enabled()
        with obs.span("fault_sim/c/grade"):
            pass
        snap = obs.snapshot()
        assert snap["intervals"] == []
        assert snap["spans"]["fault_sim/c/grade"][0] == 1  # spans still fold

    def test_env_var_turns_timeline_on(self, monkeypatch):
        monkeypatch.setenv(obs.TIMELINE_ENV_VAR, "1")
        obs.enable()
        assert obs.timeline_enabled()

    def test_enable_timeline_records_attributed_intervals(self):
        obs.enable()
        obs.enable_timeline()
        obs.set_worker("w-test")
        with obs.span("fault_sim/c/grade"):
            pass
        (interval,) = obs.snapshot()["intervals"]
        assert interval["path"] == "fault_sim/c/grade"
        assert interval["pid"] == os.getpid()
        assert interval["worker"] == "w-test"
        assert interval["dur_s"] >= 0.0

    def test_clock_block_names_the_process(self):
        obs.enable()
        clock = obs.snapshot()["clock"]
        assert clock["pid"] == os.getpid()
        assert clock["worker"] is None
        assert isinstance(clock["wall_anchor_s"], float)

    def test_interval_cap_counts_drops(self):
        obs.enable()
        obs.enable_timeline()
        for _ in range(obs.MAX_INTERVALS + 25):
            with obs.span("k"):
                pass
        snap = obs.snapshot()
        assert len(snap["intervals"]) == obs.MAX_INTERVALS
        assert snap["counters"]["obs.intervals_dropped"] == 25
        # The span table itself is uncapped: every repeat still folded.
        assert snap["spans"]["k"][0] == obs.MAX_INTERVALS + 25

    def test_absorb_stamps_task_and_dedupes(self):
        obs.enable()
        foreign = {
            "counters": {},
            "intervals": [
                {
                    "path": "fault_sim/c/grade",
                    "start_s": 5.0,
                    "dur_s": 0.5,
                    "pid": 999,
                    "worker": "w-else",
                }
            ],
        }
        assert obs.absorb_task("t1", foreign) is True
        assert obs.absorb_task("t1", foreign) is False  # duplicate delivery
        (interval,) = obs.snapshot()["intervals"]
        assert interval["task"] == "t1"
        assert interval["worker"] == "w-else"

    def test_task_capture_inherits_worker_and_timeline(self):
        obs.enable()
        obs.enable_timeline()
        obs.set_worker("w-outer")
        capture = obs.task_capture()
        with capture:
            with obs.span("fault_sim/c/grade"):
                pass
        (interval,) = capture.snapshot()["intervals"]
        assert interval["worker"] == "w-outer"

    def test_reset_clears_intervals(self):
        obs.enable()
        obs.enable_timeline()
        with obs.span("k"):
            pass
        obs.reset()
        assert obs.snapshot()["intervals"] == []


# -- track math ---------------------------------------------------------------
class TestTrackMath:
    def test_merged_busy_unions_overlaps(self):
        rows = [
            {"start_s": 0.0, "dur_s": 1.0},
            {"start_s": 0.5, "dur_s": 1.0},  # overlaps the first
            {"start_s": 3.0, "dur_s": 1.0},
        ]
        busy, gaps = timeline.merged_busy(rows)
        assert busy == pytest.approx(2.5)
        assert gaps == [(1.5, 3.0)]

    def test_tracks_group_by_pid_and_worker(self):
        grouped = timeline.tracks(GOLDEN_PAYLOAD["intervals"])
        labels = [timeline.track_label(*key) for key in grouped]
        assert labels == ["pid-10", "w-aa11"]
        assert len(grouped[(11, "w-aa11")]) == 2

    def test_span_bounds_cover_events_too(self):
        bounds = timeline.span_bounds(
            GOLDEN_PAYLOAD["intervals"], GOLDEN_PAYLOAD["events"]
        )
        assert bounds == (1000.0, 1000.020)


# -- Chrome trace export ------------------------------------------------------
class TestTraceExport:
    def test_golden_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        timeline.write_trace(str(out), GOLDEN_PAYLOAD)
        produced = out.read_text()
        golden = open(
            os.path.join(GOLDEN_DIR, "golden_trace.json"), encoding="utf-8"
        ).read()
        assert produced == golden

    def test_trace_shape_is_viewer_compatible(self):
        trace = timeline.trace_payload(GOLDEN_PAYLOAD)
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert trace["otherData"]["t0_wall_s"] == 1000.0
        phases = {entry["ph"] for entry in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}
        for entry in trace["traceEvents"]:
            if entry["ph"] == "X":
                assert isinstance(entry["ts"], float)
                assert isinstance(entry["dur"], float)
                assert entry["ts"] >= 0.0
        # One thread-name track per (pid, worker) pair plus the events track.
        threads = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert threads == ["pid-10", "w-aa11", "events"]
        # Task attribution survives into the viewer args.
        tasks = {
            e["args"]["task"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and "args" in e
        }
        assert tasks == {"t-1", "t-2"}

    def test_empty_payload_exports_cleanly(self, tmp_path):
        out = tmp_path / "trace.json"
        timeline.write_trace(str(out), {"intervals": [], "events": []})
        assert json.loads(out.read_text())["traceEvents"] == []


# -- run report ---------------------------------------------------------------
class TestRunReport:
    def test_report_structure_from_golden(self):
        text = obs_report.render_report(GOLDEN_PAYLOAD)
        assert "tool: golden" in text
        assert "timeline" in text
        assert "makespan" in text
        assert "w-aa11" in text
        assert "<- parent" in text  # clock pid matches the pid-10 track
        assert "task_retried" in text

    def test_report_without_timeline_still_renders(self):
        payload = dict(GOLDEN_PAYLOAD, intervals=[], events=[])
        text = obs_report.render_report(payload)
        assert "tool: golden" in text
        assert "makespan" not in text

    def test_chaos_queue_run_names_killed_worker(self, tmp_path, monkeypatch):
        """The acceptance bar: a chaos-killed worker's retried task is
        attributed to that worker by merging the spool's durable logs."""
        monkeypatch.setenv(CHAOS_ENV_VAR, "1:kill=1.0")
        obs.enable()
        obs.enable_timeline()
        spool = str(tmp_path / "spool")
        transport = QueueTransport(
            spool=spool,
            workers=1,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.01,
            self_drain_after=0.5,
        )
        try:
            task_id = transport.submit({"kind": "echo", "payload": 21})
            assert transport.next_result(timeout=60.0) == (task_id, 21)
            assert transport.retries >= 1
        finally:
            transport.close()
        metrics_path = tmp_path / "metrics.json"
        obs_metrics.write_metrics(str(metrics_path), meta={"tool": "chaos-test"})
        obs.disable()

        # The dead worker's log survives it; its id is in the filename.
        events_dir = os.path.join(spool, "events")
        logs = [n for n in os.listdir(events_dir) if n.endswith(".jsonl")]
        assert logs
        killed_worker = logs[0][: -len(".jsonl")]

        code = obs_cli.main(["report", str(metrics_path), "--spool", spool])
        assert code == 0
        payload = json.loads(metrics_path.read_text())
        extra = obs_cli._spool_events(spool)
        text = obs_report.render_report(payload, extra_events=extra)
        assert "task_retried" in text
        assert f"last claimed by {killed_worker}" in text
        assert "chaos_injected" in text

    def test_report_cli_on_spool_directory_alone(self, tmp_path):
        spool = tmp_path / "spool"
        events = spool / "events"
        events.mkdir(parents=True)
        (events / "w-1.jsonl").write_text(
            json.dumps({"ts": 1.0, "kind": "task_claimed", "task_id": "t-1"})
            + "\n"
            + json.dumps({"ts": 2.0, "kind": "task_done", "task_id": "t-1"})
            + "\n"
        )
        assert obs_cli.main(["report", str(spool)]) == 0
        assert obs_cli.main(["report", str(tmp_path / "empty")]) == 2


# -- live top -----------------------------------------------------------------
class TestTop:
    def _seed_spool(self, spool):
        events = spool / "events"
        events.mkdir(parents=True)
        for sub in obs_top.QUEUE_SUBDIRS:
            (spool / sub).mkdir(exist_ok=True)
        (events / "w-7.jsonl").write_text(
            json.dumps({"ts": 1.0, "kind": "task_claimed", "task_id": "t-1"})
            + "\n"
            + json.dumps({"ts": 2.0, "kind": "task_done", "task_id": "t-1"})
            + "\n"
            + json.dumps({"ts": 3.0, "kind": "worker_exit", "reason": "stop_file"})
            + "\n"
        )

    def test_spool_snapshot_tallies(self, tmp_path):
        spool = tmp_path / "spool"
        self._seed_spool(spool)
        snap = obs_top.spool_snapshot(str(spool))
        stats = snap["workers"]["w-7"]
        assert stats["task_claimed"] == 1
        assert stats["task_done"] == 1
        assert stats["exit_reason"] == "stop_file"
        assert snap["depths"]["tasks"] == 0

    def test_run_top_one_iteration(self, tmp_path):
        spool = tmp_path / "spool"
        self._seed_spool(spool)
        lines = []
        assert obs_top.run_top(str(spool), iterations=1, out=lines.append) == 0
        text = "\n".join(lines)
        assert "w-7" in text and "exit:sto" in text

    def test_run_top_missing_spool(self, tmp_path):
        assert obs_top.run_top(str(tmp_path / "nope"), iterations=1) == 1


# -- bench history ledger -----------------------------------------------------
class TestHistory:
    def _bench(self, sha, stamp, packed=12.0, sharded=3.0):
        return {
            "schema": 6,
            "git_sha": sha,
            "timestamp": stamp,
            "python": "3.x",
            "sharded_jobs": 4,
            "available_cores": 8,
            "profiles": [
                {
                    "circuit": "b12",
                    "seconds": {"packed": {"fault": 0.5}},
                    "fault_speedup_packed_vs_naive": packed,
                    "fault_speedup_sharded_vs_packed": sharded,
                }
            ],
            "fault_modes": {"words_gate_speedup": 2.0},
            "fault_parallel": {"faults_gate_speedup": 2.0},
            "atpg": {"largest": {"compiled_speedup": 10.0}},
            "cluster": {"mp_vs_sharded_slowdown": 1.2},
            "obs": {"overhead": {"enabled_overhead_pct": 0.5}},
        }

    def test_append_is_idempotent(self, tmp_path):
        bench = tmp_path / "bench.json"
        ledger = tmp_path / "history.jsonl"
        bench.write_text(json.dumps(self._bench("aaa", "t1")))
        record, appended = obs_history.append(str(bench), str(ledger))
        assert appended and record["git_sha"] == "aaa"
        assert record["profiles"]["b12"]["fault_speedup_packed_vs_naive"] == 12.0
        assert record["gates"]["obs_overhead_pct"] == 0.5
        _, again = obs_history.append(str(bench), str(ledger))
        assert not again
        assert len(obs_history.load_history(str(ledger))) == 1

    def test_compare_flags_synthetic_regression(self, tmp_path):
        ledger = tmp_path / "history.jsonl"
        for sha, stamp, packed in (("aaa", "t1", 12.0), ("bbb", "t2", 4.0)):
            bench = tmp_path / f"{sha}.json"
            bench.write_text(json.dumps(self._bench(sha, stamp, packed=packed)))
            obs_history.append(str(bench), str(ledger))
        history = obs_history.load_history(str(ledger))
        regressions = obs_history.compare(history, threshold=0.6)
        assert [r["key"] for r in regressions] == [
            "fault_speedup_packed_vs_naive"
        ]
        assert regressions[0]["profile"] == "b12"
        assert regressions[0]["ratio"] == pytest.approx(4.0 / 12.0)
        text, rendered = obs_history.render_compare(history, threshold=0.6)
        assert "REGRESSIONS:" in text and rendered == regressions

    def test_compare_passes_within_threshold(self, tmp_path):
        ledger = tmp_path / "history.jsonl"
        for sha, stamp, packed in (("aaa", "t1", 12.0), ("bbb", "t2", 11.0)):
            bench = tmp_path / f"{sha}.json"
            bench.write_text(json.dumps(self._bench(sha, stamp, packed=packed)))
            obs_history.append(str(bench), str(ledger))
        history = obs_history.load_history(str(ledger))
        assert obs_history.compare(history, threshold=0.6) == []
        text, _ = obs_history.render_compare(history, threshold=0.6)
        assert "no regressions beyond the threshold" in text

    def test_history_cli_append_and_strict_compare(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        ledger = tmp_path / "history.jsonl"
        bench.write_text(json.dumps(self._bench("aaa", "t1", packed=12.0)))
        assert (
            obs_cli.main(
                ["history", "append", "--bench", str(bench), "--history", str(ledger)]
            )
            == 0
        )
        bench.write_text(json.dumps(self._bench("bbb", "t2", packed=1.0)))
        assert (
            obs_cli.main(
                ["history", "append", "--bench", str(bench), "--history", str(ledger)]
            )
            == 0
        )
        assert (
            obs_cli.main(["history", "compare", "--history", str(ledger)]) == 0
        )
        assert (
            obs_cli.main(
                ["history", "compare", "--history", str(ledger), "--strict"]
            )
            == 1
        )
        capsys.readouterr()

    def test_torn_ledger_line_is_skipped(self, tmp_path):
        ledger = tmp_path / "history.jsonl"
        ledger.write_text('{"git_sha": "aaa", "timestamp": "t1"}\n{"torn...\n')
        assert len(obs_history.load_history(str(ledger))) == 1

    def test_repo_ledger_matches_committed_bench(self):
        """The seeded repo ledger must contain the committed bench artifact."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        ledger = os.path.join(root, "BENCH_history.jsonl")
        bench_path = os.path.join(root, "BENCH_engine.json")
        history = obs_history.load_history(ledger)
        assert history, "BENCH_history.jsonl missing or empty"
        with open(bench_path, encoding="utf-8") as handle:
            bench = json.load(handle)
        keys = {(r.get("git_sha"), r.get("timestamp")) for r in history}
        assert (bench["git_sha"], bench["timestamp"]) in keys


# -- CLI surface --------------------------------------------------------------
class TestCli:
    def test_export_trace_cli(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(GOLDEN_PAYLOAD))
        out = tmp_path / "trace.json"
        assert obs_cli.main(["export-trace", str(metrics), "-o", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        capsys.readouterr()

    def test_missing_metrics_file_is_a_clean_error(self, tmp_path, capsys):
        assert (
            obs_cli.main(["export-trace", str(tmp_path / "missing.json")]) == 2
        )
        assert "error" in capsys.readouterr().err


# -- runner integration -------------------------------------------------------
class TestRunnerTraceOut:
    @pytest.fixture()
    def cold_cubes(self, tmp_path, monkeypatch):
        from repro.experiments.workloads import build_workload

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cube-cache"))
        build_workload.cache_clear()
        yield
        build_workload.cache_clear()

    def test_trace_out_writes_viewable_trace(self, tmp_path, cold_cubes):
        from repro.experiments.runner import main

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "--artifacts",
                "1",
                "--benchmarks",
                "b01",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete, "trace has no span intervals"
        names = {e["name"] for e in complete}
        assert any(name.startswith("runner/") for name in names)
        # --trace-out implied tracing + timeline for the run only.
        assert not obs.enabled()
        assert not obs.timeline_enabled()
