"""Unit tests for gates, the netlist container and the .bench front end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.bench_format import BenchParseError, parse_bench, write_bench
from repro.circuit.gates import GateType, controlling_value, evaluate_bool, evaluate_ternary
from repro.circuit.library import b01_like_fsm, c17, ripple_counter, toy_pipeline
from repro.circuit.netlist import Circuit, CircuitError, Gate
from repro.cubes.bits import ONE, X, ZERO


class TestGateTypes:
    def test_from_name_aliases(self):
        assert GateType.from_name("buff") is GateType.BUF
        assert GateType.from_name("INV") is GateType.NOT
        assert GateType.from_name("nand") is GateType.NAND

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            GateType.from_name("MAJ")

    def test_arity_checks(self):
        assert GateType.NOT.arity_ok(1) and not GateType.NOT.arity_ok(2)
        assert GateType.AND.arity_ok(3) and not GateType.AND.arity_ok(1)
        assert GateType.INPUT.arity_ok(0) and not GateType.INPUT.arity_ok(1)

    def test_controlling_values(self):
        assert controlling_value(GateType.AND) == ZERO
        assert controlling_value(GateType.NOR) == ONE
        with pytest.raises(ValueError):
            controlling_value(GateType.XOR)


class TestGateEvaluation:
    def test_bool_truth_tables(self):
        a = np.array([False, False, True, True])
        b = np.array([False, True, False, True])
        np.testing.assert_array_equal(evaluate_bool(GateType.AND, [a, b]), a & b)
        np.testing.assert_array_equal(evaluate_bool(GateType.NAND, [a, b]), ~(a & b))
        np.testing.assert_array_equal(evaluate_bool(GateType.NOR, [a, b]), ~(a | b))
        np.testing.assert_array_equal(evaluate_bool(GateType.XNOR, [a, b]), ~(a ^ b))
        np.testing.assert_array_equal(evaluate_bool(GateType.NOT, [a]), ~a)

    def test_ternary_controlling_value_dominates_x(self):
        assert evaluate_ternary(GateType.AND, [ZERO, X]) == ZERO
        assert evaluate_ternary(GateType.OR, [ONE, X]) == ONE
        assert evaluate_ternary(GateType.NAND, [ZERO, X]) == ONE
        assert evaluate_ternary(GateType.NOR, [ONE, X]) == ZERO

    def test_ternary_x_propagates_otherwise(self):
        assert evaluate_ternary(GateType.AND, [ONE, X]) == X
        assert evaluate_ternary(GateType.XOR, [ONE, X]) == X
        assert evaluate_ternary(GateType.NOT, [X]) == X

    def test_ternary_fully_specified(self):
        assert evaluate_ternary(GateType.XOR, [ONE, ONE]) == ZERO
        assert evaluate_ternary(GateType.XNOR, [ONE, ZERO]) == ZERO


class TestCircuitConstruction:
    def test_duplicate_driver_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.NOT, ["a"])
        with pytest.raises(CircuitError):
            circuit.add_gate("g", GateType.NOT, ["a"])
        with pytest.raises(CircuitError):
            circuit.add_gate("a", GateType.NOT, ["g"])

    def test_undriven_net_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", GateType.AND, ["a", "ghost"])
        circuit.add_output("g")
        with pytest.raises(CircuitError, match="undriven"):
            circuit.validate()

    def test_combinational_cycle_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g1", GateType.AND, ["a", "g2"])
        circuit.add_gate("g2", GateType.AND, ["a", "g1"])
        circuit.add_output("g1")
        with pytest.raises(CircuitError, match="cycle"):
            circuit.validate()

    def test_dff_feedback_is_not_a_cycle(self):
        circuit = b01_like_fsm()
        circuit.validate()
        assert circuit.n_flip_flops == 5

    def test_gate_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate(output="g", gate_type=GateType.AND, inputs=("a",))


class TestCircuitAnalysis:
    def test_c17_statistics(self):
        circuit = c17()
        stats = circuit.stats()
        assert stats == {
            "primary_inputs": 5,
            "primary_outputs": 2,
            "flip_flops": 0,
            "gates": 6,
            "test_pins": 5,
            "depth": 3,
        }

    def test_topological_order_respects_dependencies(self):
        circuit = c17()
        order = circuit.topological_order()
        position = {net: i for i, net in enumerate(order)}
        for name in order:
            for net in circuit.get_gate(name).inputs:
                if net in position:
                    assert position[net] < position[name]

    def test_levelize_and_depth(self):
        circuit = c17()
        levels = circuit.levelize()
        assert levels["G10"] == 1 and levels["G22"] == 3
        assert circuit.depth() == 3

    def test_fanout_counts_include_outputs(self):
        circuit = c17()
        counts = circuit.fanout_counts()
        assert counts["G11"] == 2      # feeds G16 and G19
        assert counts["G22"] == 1      # primary output only

    def test_combinational_view_of_sequential_circuit(self):
        circuit = ripple_counter(3)
        assert circuit.n_test_pins == 1 + 3  # enable + 3 state bits
        assert set(circuit.combinational_outputs) >= {"sum0", "sum1", "sum2"}

    def test_transitive_fanin(self):
        circuit = c17()
        fanin = circuit.transitive_fanin("G22")
        assert "G1" in fanin and "G3" in fanin and "G7" not in fanin


class TestBenchFormat:
    def test_round_trip_preserves_structure(self):
        for circuit in (c17(), b01_like_fsm(), toy_pipeline(2, 3)):
            rebuilt = parse_bench(write_bench(circuit), name=circuit.name)
            assert rebuilt.n_gates == circuit.n_gates
            assert rebuilt.n_flip_flops == circuit.n_flip_flops
            assert rebuilt.primary_inputs == circuit.primary_inputs
            assert rebuilt.primary_outputs == circuit.primary_outputs

    def test_parse_handles_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)

        OUTPUT(y)
        y = NOT(a)   # trailing comment
        """
        circuit = parse_bench(text)
        assert circuit.n_gates == 1

    def test_parse_error_reports_line(self):
        with pytest.raises(BenchParseError, match="line 2"):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_unknown_gate_type_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MYSTERY(a)\n")

    def test_structural_problems_surface_as_parse_errors(self):
        with pytest.raises((BenchParseError, CircuitError)):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")
