"""Tests for the sharded multi-process fault-simulation backend.

The contract is the same as the packed engine's: *bit-for-bit parity* with
the naive reference — same detection maps, same first-detecting pattern
indices, same fault order — regardless of how the work is partitioned
across worker processes, which sharding strategy is picked, or whether the
pool exists at all.  On top of parity, the suite checks the scale-out
machinery itself: shard-boundary fault dropping (the detected-fault
broadcast), the jobs=1 / broken-pool inline fallback, worker-count
resolution, and the experiment runner's deterministic ``--jobs`` merge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import StuckAtFault, full_fault_list
from repro.circuit.gates import GateType
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm, c17
from repro.circuit.netlist import Circuit
from repro.cubes.cube import TestSet
from repro.engine import (
    NaiveFaultSimulator,
    PackedFaultSimulator,
    ShardedBackend,
    ShardedFaultSimulator,
    available_backends,
    get_backend,
)
from repro.engine.sharded import (
    JOBS_ENV_VAR,
    default_jobs,
    parse_jobs,
    resolve_jobs,
    set_default_jobs,
    worker_pool,
)


def _random_patterns(circuit, n_patterns: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n_patterns, circuit.n_test_pins)).astype(np.int8)


def _pooled_simulator(circuit, **kwargs) -> ShardedFaultSimulator:
    """A sharded simulator with knobs forcing real pool dispatch."""
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("min_chunk_faults", 2)
    kwargs.setdefault("chunks_per_worker", 2)
    return ShardedFaultSimulator(circuit, **kwargs)


def _and_circuit() -> Circuit:
    """Two-input AND with one output: a fault with a huge pattern set."""
    circuit = Circuit("and2")
    circuit.add_input("a")
    circuit.add_input("b")
    circuit.add_gate("out", GateType.AND, ["a", "b"])
    circuit.add_output("out")
    circuit.validate()
    return circuit


CIRCUITS = [
    pytest.param(lambda: c17(), id="c17"),
    pytest.param(lambda: b01_like_fsm(), id="b01_fsm"),
    pytest.param(
        lambda: generate_circuit(CircuitSpec("rand_medium", 12, 20, 400, seed=5)),
        id="rand_medium",
    ),
]


class TestShardedParity:
    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    @pytest.mark.parametrize("n_patterns", [1, 63, 64, 65, 130])
    @pytest.mark.parametrize("drop", [True, False])
    @pytest.mark.parametrize("fault_mode", ["lanes", "words", "faults"])
    def test_detection_map_parity(self, make_circuit, n_patterns, drop, fault_mode):
        circuit = make_circuit()
        patterns = TestSet.from_matrix(_random_patterns(circuit, n_patterns, seed=9))
        faults = full_fault_list(circuit)
        naive = NaiveFaultSimulator(circuit).run(patterns, faults, drop_detected=drop)
        sharded = _pooled_simulator(circuit, mode=fault_mode).run(
            patterns, faults, drop_detected=drop
        )
        # Bit-for-bit: same faults, same first-detecting indices, same order.
        assert list(naive.detected.items()) == list(sharded.detected.items())
        assert naive.undetected == sharded.undetected
        assert naive.coverage == sharded.coverage

    def test_wide_pattern_set_grades_on_words_in_auto_mode(self):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 4160, seed=3))
        faults = full_fault_list(circuit)
        simulator = _pooled_simulator(circuit, mode="auto")
        result = simulator.run(patterns, faults)
        assert simulator.last_run_stats["fault_mode"] == "words"
        reference = PackedFaultSimulator(circuit, mode="lanes").run(patterns, faults)
        assert list(result.detected.items()) == list(reference.detected.items())
        assert result.undetected == reference.undetected

    def test_fault_chunk_mode_actually_shards(self):
        circuit = generate_circuit(CircuitSpec("chunky", 8, 6, 200, seed=21))
        patterns = TestSet.from_matrix(_random_patterns(circuit, 130, seed=2))
        faults = collapse_faults(circuit)
        simulator = _pooled_simulator(circuit)
        result = simulator.run(patterns, faults)
        stats = simulator.last_run_stats
        if stats["mode"] == "inline":
            pytest.skip("worker pool unavailable in this environment")
        assert stats["mode"] == "fault-chunks"
        assert stats["chunks"] > 1
        packed = PackedFaultSimulator(circuit).run(patterns, faults)
        assert list(result.detected.items()) == list(packed.detected.items())
        assert result.undetected == packed.undetected

    def test_facade_resolves_sharded_backend(self):
        circuit = generate_circuit(CircuitSpec("facade", 8, 6, 200, seed=21))
        patterns = TestSet.from_matrix(_random_patterns(circuit, 70, seed=2))
        faults = collapse_faults(circuit)
        res_sharded = FaultSimulator(circuit, backend="sharded").run(patterns, faults)
        res_packed = FaultSimulator(circuit, backend="packed").run(patterns, faults)
        assert list(res_sharded.detected.items()) == list(res_packed.detected.items())
        assert res_sharded.undetected == res_packed.undetected

    def test_empty_pattern_set(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        result = _pooled_simulator(circuit).run(TestSet([]), faults)
        assert result.detected_count == 0
        assert result.undetected == list(faults)

    def test_unknown_fault_net_is_undetected(self):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 8, seed=0))
        ghost = StuckAtFault("no_such_net", 0)
        result = _pooled_simulator(circuit).run(patterns, [ghost])
        assert result.undetected == [ghost]


class TestShardBoundaryDropping:
    """Block-wise fault dropping must survive shard boundaries."""

    def test_pattern_shards_broadcast_detected_faults(self):
        circuit = _and_circuit()
        matrix = _random_patterns(circuit, 256, seed=3)
        matrix[0] = [1, 1]  # pattern 0 detects out/s-a-0
        patterns = TestSet.from_matrix(matrix)
        faults = [StuckAtFault("out", 0)]
        simulator = ShardedFaultSimulator(
            circuit, jobs=2, block_patterns=8, chunks_per_worker=8
        )
        result = simulator.run(patterns, faults)
        stats = simulator.last_run_stats
        if stats["mode"] == "inline":
            pytest.skip("worker pool unavailable in this environment")
        assert stats["mode"] == "pattern-shards"
        assert stats["chunks"] > 2
        # The fault is detected at pattern 0; every shard submitted after
        # that result returned must have been told to skip it entirely.
        assert stats["shard_dropped_evaluations"] > 0
        # ...and the deterministic min-merge still reports the true first
        # detection, identical to the serial backends.
        packed = PackedFaultSimulator(circuit, block_patterns=8).run(patterns, faults)
        assert list(result.detected.items()) == list(packed.detected.items())
        assert result.detected[faults[0]] == 0

    def test_pattern_shards_broadcast_in_words_mode(self):
        circuit = _and_circuit()
        matrix = _random_patterns(circuit, 1024, seed=3)
        matrix[0] = [1, 1]  # pattern 0 detects out/s-a-0
        patterns = TestSet.from_matrix(matrix)
        faults = [StuckAtFault("out", 0)]
        simulator = ShardedFaultSimulator(
            circuit, jobs=2, block_patterns=64, chunks_per_worker=8, mode="words"
        )
        result = simulator.run(patterns, faults)
        stats = simulator.last_run_stats
        if stats["mode"] == "inline":
            pytest.skip("worker pool unavailable in this environment")
        assert stats["mode"] == "pattern-shards"
        assert stats["fault_mode"] == "words"
        assert stats["shard_dropped_evaluations"] > 0
        packed = PackedFaultSimulator(circuit, mode="lanes").run(patterns, faults)
        assert list(result.detected.items()) == list(packed.detected.items())
        assert result.detected[faults[0]] == 0

    def test_pattern_shards_without_dropping_keep_parity(self):
        circuit = _and_circuit()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 256, seed=4))
        faults = [StuckAtFault("out", 0), StuckAtFault("out", 1)]
        simulator = ShardedFaultSimulator(
            circuit, jobs=2, block_patterns=8, chunks_per_worker=8
        )
        result = simulator.run(patterns, faults, drop_detected=False)
        stats = simulator.last_run_stats
        if stats["mode"] == "inline":
            pytest.skip("worker pool unavailable in this environment")
        assert stats["shard_dropped_evaluations"] == 0
        packed = PackedFaultSimulator(circuit, block_patterns=8).run(
            patterns, faults, drop_detected=False
        )
        assert list(result.detected.items()) == list(packed.detected.items())


class TestFallbacks:
    def test_jobs_1_runs_inline(self):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 65, seed=1))
        faults = full_fault_list(circuit)
        simulator = ShardedFaultSimulator(circuit, jobs=1)
        result = simulator.run(patterns, faults)
        assert simulator.last_run_stats["mode"] == "inline"
        packed = PackedFaultSimulator(circuit).run(patterns, faults)
        assert list(result.detected.items()) == list(packed.detected.items())

    def test_inline_fallback_respects_words_mode(self):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 65, seed=1))
        faults = full_fault_list(circuit)
        simulator = ShardedFaultSimulator(circuit, jobs=1, mode="words")
        result = simulator.run(patterns, faults)
        assert simulator.last_run_stats["mode"] == "inline"
        assert simulator.last_run_stats["fault_mode"] == "words"
        packed = PackedFaultSimulator(circuit, mode="lanes").run(patterns, faults)
        assert list(result.detected.items()) == list(packed.detected.items())

    def test_small_workloads_stay_inline_despite_jobs(self):
        # Default knobs: a handful of faults over a handful of patterns is
        # not worth a single pickle round trip.
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 16, seed=1))
        simulator = ShardedFaultSimulator(circuit, jobs=4)
        simulator.run(patterns, full_fault_list(circuit)[:4])
        assert simulator.last_run_stats["mode"] == "inline"

    def test_worker_pool_refuses_single_job(self):
        assert worker_pool(1) is None

    def test_drop_flag_does_not_change_results(self):
        circuit = generate_circuit(CircuitSpec("dropflag", 8, 6, 150, seed=7))
        patterns = TestSet.from_matrix(_random_patterns(circuit, 200, seed=7))
        faults = collapse_faults(circuit)
        simulator = _pooled_simulator(circuit)
        with_drop = simulator.run(patterns, faults, drop_detected=True)
        without_drop = simulator.run(patterns, faults, drop_detected=False)
        assert list(with_drop.detected.items()) == list(without_drop.detected.items())
        assert with_drop.undetected == without_drop.undetected


class TestJobsResolution:
    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert default_jobs() == 3
        assert resolve_jobs() == 3

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(5) == 5

    def test_set_default_jobs_overrides_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        previous = set_default_jobs(2)
        try:
            assert resolve_jobs() == 2
        finally:
            set_default_jobs(previous)
        assert resolve_jobs() == 3

    def test_invalid_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    def test_non_positive_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "-2")
        with pytest.raises(ValueError, match="REPRO_JOBS must be a positive integer"):
            default_jobs()

    def test_non_positive_jobs_rejected(self):
        # A zero/negative worker count is a typo, not a request for serial
        # mode; it must fail loudly at the parsing surface.
        for bad in (0, -3, "nope", 2.5):
            with pytest.raises(ValueError, match="positive integer"):
                resolve_jobs(bad)
        with pytest.raises(ValueError, match="positive integer"):
            set_default_jobs(-1)

    def test_parse_jobs_accepts_integral_strings(self):
        assert parse_jobs("4") == 4
        assert parse_jobs(" 2 ") == 2
        assert parse_jobs(3) == 3


class TestBackendRegistration:
    def test_sharded_backend_registered(self):
        assert "sharded" in available_backends()
        backend = get_backend("sharded")
        assert isinstance(backend, ShardedBackend)

    def test_fault_simulator_shares_compiled_program(self):
        circuit = c17()
        backend = get_backend("sharded")
        first = backend.fault_simulator(circuit)
        second = backend.logic_simulator(circuit)
        assert isinstance(first, ShardedFaultSimulator)
        assert first.program is second.program

    def test_sharded_and_packed_share_program_shape(self):
        circuit = c17()
        sharded = get_backend("sharded").fault_simulator(circuit)
        packed = get_backend("packed").fault_simulator(circuit)
        assert sharded.program.net_names == packed.program.net_names


class TestRunnerJobs:
    """--jobs N must be a pure scheduling knob: byte-identical reports."""

    def test_parallel_report_matches_serial(self, tmp_path):
        from repro.experiments.runner import main

        serial_out = tmp_path / "serial.txt"
        parallel_out = tmp_path / "parallel.txt"
        base = ["--artifacts", "1,fig1", "--benchmarks", "b01,b03"]
        assert main(base + ["--out", str(serial_out)]) == 0
        assert main(base + ["--jobs", "2", "--out", str(parallel_out)]) == 0
        assert serial_out.read_bytes() == parallel_out.read_bytes()

    def test_jobs_flag_parsed(self):
        from repro.experiments.runner import build_parser

        args = build_parser().parse_args(["--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args([]).jobs is None

    @pytest.mark.parametrize("bad", ["many", "-2", "0", "2.5"])
    def test_bad_jobs_flag_rejected_at_cli(self, bad, capsys):
        from repro.experiments.runner import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--jobs", bad])
        assert "--jobs must be a positive integer" in capsys.readouterr().err

    def test_bad_jobs_env_rejected_before_running(self, monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv(JOBS_ENV_VAR, "-3")
        assert main(["--artifacts", "1", "--benchmarks", "b01"]) == 2
        assert "REPRO_JOBS must be a positive integer" in capsys.readouterr().err
