"""Order-independence sanitizer tests (``repro.analysis.sanitizer``).

Unit level: :class:`MergeShadow` must accept the commutative /
associative / idempotent ``min_merge`` and reject a deliberately
order-dependent merge (last-write-wins).  Integration level: with
``REPRO_SANITIZE=1`` armed, a real cluster fault-simulation run passes
the shadow re-merge, stays bit-identical to the packed baseline, and
proves the sanitizer actually ran via the ``cluster.sanitize_checks``
counter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import MergeShadow, SanitizerError, enabled, shadow_for
from repro.atpg.collapse import collapse_faults
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.cluster import ClusterFaultSimulator, LocalTransport
from repro.cluster.protocol import min_merge
from repro.cubes.cube import TestSet
from repro.engine import PackedFaultSimulator
from repro.obs import recorder as obs


def _last_write_wins(first, positions, chunk_first):
    """An order-dependent merge: later envelopes clobber earlier ones."""
    for index, found in zip(positions, chunk_first):
        if found is not None:
            first[index] = found


def _apply_all(merge, n_items, envelopes):
    live = [None] * n_items
    for positions, values in envelopes:
        merge(live, positions, values)
    return live


ENVELOPES = [
    ([0, 1, 2], [5, None, 9]),
    ([1, 2, 3], [4, 7, None]),
    ([0, 3], [3, 8]),
    ([0, 1, 2], [5, None, 9]),  # duplicate delivery
]


class TestMergeShadow:
    def test_min_merge_passes(self):
        shadow = MergeShadow(4, min_merge, label="unit")
        live = [None] * 4
        for positions, values in ENVELOPES:
            shadow.record(positions, values)
            min_merge(live, positions, values)
        shadow.verify(live)  # must not raise

    def test_order_dependent_merge_is_caught(self):
        shadow = MergeShadow(4, _last_write_wins, label="unit")
        live = [None] * 4
        for positions, values in ENVELOPES:
            shadow.record(positions, values)
            _last_write_wins(live, positions, values)
        with pytest.raises(SanitizerError, match="order-dependent"):
            shadow.verify(live)

    def test_error_names_the_run_and_positions(self):
        shadow = MergeShadow(4, _last_write_wins, label="fault_plan/b01/shards")
        live = [None] * 4
        for positions, values in ENVELOPES:
            shadow.record(positions, values)
            _last_write_wins(live, positions, values)
        with pytest.raises(SanitizerError, match="fault_plan/b01/shards"):
            shadow.verify(live)

    def test_wrong_length_is_caught(self):
        shadow = MergeShadow(4, min_merge)
        with pytest.raises(SanitizerError, match="items"):
            shadow.verify([None] * 3)

    def test_empty_run_verifies(self):
        shadow = MergeShadow(0, min_merge)
        shadow.verify([])

    def test_records_are_copies(self):
        # The live merge mutates nothing the shadow holds, and vice versa.
        shadow = MergeShadow(2, min_merge)
        positions, values = [0, 1], [1, 2]
        shadow.record(positions, values)
        values[0] = 99
        assert shadow.records[0][1] == [1, 2]

    def test_verify_counts_checks(self):
        obs.disable()
        obs.enable()
        shadow = MergeShadow(1, min_merge)
        shadow.record([0], [1])
        shadow.verify([1])
        counters = obs.snapshot()["counters"]
        obs.disable()
        assert counters.get("cluster.sanitize_checks") == 2  # two orders


class TestArming:
    def test_disarmed_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert enabled() is False
        assert shadow_for(4, min_merge) is None

    def test_armed_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert enabled() is True
        shadow = shadow_for(4, min_merge, label="x")
        assert isinstance(shadow, MergeShadow)
        assert shadow.label == "x"

    def test_garbage_value_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "maybe")
        with pytest.raises(ValueError, match="REPRO_SANITIZE"):
            enabled()


class TestClusterIntegration:
    def _workload(self):
        circuit = generate_circuit(CircuitSpec("sanitize_med", 8, 10, 160, seed=9))
        rng = np.random.default_rng(3)
        patterns = TestSet.from_matrix(
            rng.integers(0, 2, size=(96, circuit.n_test_pins)).astype(np.int8)
        )
        return circuit, patterns, collapse_faults(circuit)

    def test_sanitized_run_matches_packed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        circuit, patterns, faults = self._workload()
        baseline = PackedFaultSimulator(circuit).run(patterns, faults)
        simulator = ClusterFaultSimulator(
            circuit,
            transport=LocalTransport(),
            jobs=2,
            min_chunk_faults=2,
            chunks_per_worker=2,
        )
        result = simulator.run(patterns, faults)
        assert result.detected == baseline.detected
        assert result.undetected == baseline.undetected

    def test_sanitizer_provably_armed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        circuit, patterns, faults = self._workload()
        obs.disable()
        obs.enable()
        simulator = ClusterFaultSimulator(
            circuit,
            transport=LocalTransport(),
            jobs=2,
            min_chunk_faults=2,
            chunks_per_worker=2,
        )
        simulator.run(patterns, faults)
        counters = obs.snapshot()["counters"]
        obs.disable()
        assert counters.get("cluster.sanitize_checks", 0) >= 2

    def test_unarmed_run_records_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        circuit, patterns, faults = self._workload()
        obs.disable()
        obs.enable()
        simulator = ClusterFaultSimulator(
            circuit,
            transport=LocalTransport(),
            jobs=2,
            min_chunk_faults=2,
            chunks_per_worker=2,
        )
        simulator.run(patterns, faults)
        counters = obs.snapshot()["counters"]
        obs.disable()
        assert "cluster.sanitize_checks" not in counters
