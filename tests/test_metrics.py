"""Unit tests for toggle and don't-care metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubes.cube import TestCube, TestSet
from repro.cubes.metrics import (
    conflict_distance,
    hamming_distance,
    peak_toggles,
    specified_bit_count,
    stretch_histogram,
    toggle_profile,
    total_toggles,
    x_density,
)


class TestHammingDistance:
    def test_basic(self):
        assert hamming_distance(TestCube.from_string("0101"), TestCube.from_string("0011")) == 2

    def test_identical_vectors(self):
        cube = TestCube.from_string("0101")
        assert hamming_distance(cube, cube) == 0

    def test_rejects_x_bits(self):
        with pytest.raises(ValueError):
            hamming_distance(TestCube.from_string("0X"), TestCube.from_string("00"))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(TestCube.from_string("01"), TestCube.from_string("011"))


class TestConflictDistance:
    def test_counts_only_specified_disagreements(self):
        a = TestCube.from_string("0X1X")
        b = TestCube.from_string("1X0X")
        assert conflict_distance(a, b) == 2

    def test_x_never_conflicts(self):
        a = TestCube.from_string("XXXX")
        b = TestCube.from_string("0101")
        assert conflict_distance(a, b) == 0

    def test_lower_bounds_hamming_for_any_fill(self):
        a = TestCube.from_string("0X1")
        b = TestCube.from_string("10X")
        base = conflict_distance(a, b)
        for fill_a in ("001", "011"):
            for fill_b in ("100", "101"):
                assert hamming_distance(TestCube.from_string(fill_a), TestCube.from_string(fill_b)) >= base


class TestToggleProfiles:
    def test_profile_and_peak(self):
        ts = TestSet.from_strings(["0000", "0011", "1111", "1111"])
        np.testing.assert_array_equal(toggle_profile(ts), [2, 2, 0])
        assert peak_toggles(ts) == 2
        assert total_toggles(ts) == 4

    def test_single_pattern_has_no_boundaries(self):
        ts = TestSet.from_strings(["0101"])
        assert toggle_profile(ts).size == 0
        assert peak_toggles(ts) == 0
        assert total_toggles(ts) == 0

    def test_profile_rejects_unfilled_sets(self):
        ts = TestSet.from_strings(["0X", "00"])
        with pytest.raises(ValueError):
            toggle_profile(ts)

    def test_peak_is_max_of_profile(self):
        ts = TestSet.from_strings(["000", "111", "110", "000"])
        profile = toggle_profile(ts)
        assert peak_toggles(ts) == int(profile.max())


class TestXStatistics:
    def test_density_and_counts(self):
        ts = TestSet.from_strings(["0XXX", "01XX"])
        assert x_density(ts) == pytest.approx(5 / 8)
        assert specified_bit_count(ts) == 3

    def test_stretch_histogram_simple(self):
        # Pin rows (3 pins, 4 patterns): built from patterns below.
        ts = TestSet.from_strings(["0X0", "XXX", "X01", "0X1"]).reordered([0, 1, 2, 3])
        stats = stretch_histogram(ts)
        assert stats.n_rows == 3
        assert stats.n_columns == 4
        assert stats.total_x_bits == ts.x_count

    def test_stretch_histogram_counts_runs_per_pin(self):
        # One pin row: 0 X X 1 X 0 -> runs of length 2 and 1.
        ts = TestSet.from_pin_matrix(np.array([[0, 2, 2, 1, 2, 0]], dtype=np.int8))
        stats = stretch_histogram(ts)
        assert stats.histogram == {2: 1, 1: 1}
        assert stats.max_length == 2
        assert stats.mean_length == pytest.approx(1.5)
        assert stats.total_stretches == 2

    def test_stretch_histogram_full_x_row(self):
        ts = TestSet.from_pin_matrix(np.array([[2, 2, 2]], dtype=np.int8))
        stats = stretch_histogram(ts)
        assert stats.histogram == {3: 1}

    def test_cumulative_and_buckets(self):
        ts = TestSet.from_pin_matrix(
            np.array([[0, 2, 2, 2, 2, 1, 2, 0, 2, 2, 1]], dtype=np.int8)
        )
        stats = stretch_histogram(ts)
        assert stats.cumulative_at_least(2) == 2
        buckets = stats.bucketed(edges=(1, 2, 4))
        assert buckets["1"] == 1
        assert buckets["2-3"] == 1
        assert buckets[">=4"] == 1

    def test_no_x_means_empty_histogram(self):
        ts = TestSet.from_strings(["010", "101"])
        stats = stretch_histogram(ts)
        assert stats.histogram == {}
        assert stats.mean_length == 0.0
        assert stats.max_length == 0
