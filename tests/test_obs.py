"""Telemetry tests (``repro.obs``): recorder primitives and counter parity.

The observability contract mirrors the engine's determinism contract: with
tracing on, the *scheduling-independent* counters — cone evaluations, run /
pattern / fault / detection totals, PODEM backtracks and decisions — must
sum to identical values whichever backend executed the run
(naive / packed / sharded / cluster) and whichever transport carried the
work units (local / mp / queue), including under injected worker kills,
stale leases and duplicate deliveries.  Scheduling-dependent counters
(``fault_sim.blocks``, ``fault_sim.dropped_block_evaluations``) are
deliberately outside that set.

On top of parity, the suite checks the recorder itself (null/enabled paths,
span merging, task-snapshot dedupe, the JSONL event file), the metrics
artifact writer, the runner's ``--metrics`` flag and the queue transport's
lifecycle event records.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.podem import PodemEngine
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm
from repro.cluster import (
    ClusterFaultSimulator,
    LocalTransport,
    QueueTransport,
    TransportTaskError,
)
from repro.cluster.protocol import execute_task, unwrap_payload, worker_context
from repro.cluster.transport import (
    STOP_FILE,
    claim_task,
    spool_events_dir,
    write_atomic,
)
from repro.engine import NaiveFaultSimulator, PackedFaultSimulator, get_backend
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Every test starts and ends with tracing off (fresh recorder state)."""
    obs.disable()
    yield
    obs.disable()


def _medium_circuit():
    return generate_circuit(CircuitSpec("cluster_med", 10, 12, 300, seed=4))


def _patterns(circuit, n=160, seed=1):
    from repro.cubes.cube import TestSet

    rng = np.random.default_rng(seed)
    return TestSet.from_matrix(
        rng.integers(0, 2, size=(n, circuit.n_test_pins)).astype(np.int8)
    )


#: Counters that must be exactly equal across every backend and transport —
#: sourced from the declared manifest so the parity contract and the static
#: analyzer's R5 rule cannot drift apart.  Scheduling-dependent counters
#: (blocks, dropped_block_evaluations) are outside DETERMINISTIC by design;
#: the podem.* members are exercised by the ATPG parity suite, not here.
PARITY_KEYS = tuple(
    sorted(k for k in obs_manifest.DETERMINISTIC if k.startswith("fault_sim."))
)


def _traced_counters(run):
    """Counters collected by ``run()`` under a fresh enabled recorder."""
    obs.disable()
    obs.enable()
    run()
    counters = obs.snapshot()["counters"]
    obs.disable()
    return counters


def _parity_subset(counters):
    return {key: counters.get(key) for key in PARITY_KEYS}


def _forced_simulator(circuit, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("min_chunk_faults", 2)
    kwargs.setdefault("chunks_per_worker", 2)
    return ClusterFaultSimulator(circuit, **kwargs)


# -- recorder primitives -----------------------------------------------------
class TestRecorder:
    def test_disabled_is_noop(self):
        assert not obs.enabled()
        obs.counter("x", 5)
        obs.event("boom", detail="ignored")
        with obs.span("a/b"):
            pass
        assert obs.snapshot() == {
            "counters": {},
            "spans": {},
            "events": [],
            "intervals": [],
        }

    def test_null_span_is_shared(self):
        # The disabled hot path must not allocate per call.
        assert obs.span("a") is obs.span("b")

    def test_enable_records(self):
        obs.enable()
        obs.counter("x")
        obs.counter("x", 2)
        obs.event("kind", task_id="t1")
        with obs.span("fault_sim/c/grade"):
            pass
        snap = obs.snapshot()
        assert snap["counters"]["x"] == 3
        assert snap["events"][0]["kind"] == "kind"
        assert snap["events"][0]["task_id"] == "t1"
        count, total, peak = snap["spans"]["fault_sim/c/grade"]
        assert count == 1 and total >= 0.0 and peak == total

    def test_add_counters_skips_labels(self):
        obs.enable()
        obs.add_counters(
            {"cone_evaluations": 7, "mode": "words", "pooled": True},
            prefix="fault_sim.",
        )
        counters = obs.snapshot()["counters"]
        assert counters == {"fault_sim.cone_evaluations": 7}

    def test_span_table_merges_repeats(self):
        obs.enable()
        for _ in range(3):
            with obs.span("k"):
                pass
        count, total, peak = obs.snapshot()["spans"]["k"]
        assert count == 3 and total >= peak >= 0.0

    def test_absorb_task_dedupes_by_task_id(self):
        obs.enable()
        snap = {
            "counters": {"c": 2},
            "spans": {"s": [1, 0.5, 0.5]},
            "events": [{"ts": 0.0, "kind": "e"}],
        }
        assert obs.absorb_task("t1", snap) is True
        assert obs.absorb_task("t1", snap) is False  # duplicate delivery
        assert obs.absorb_task("t2", snap) is True
        merged = obs.snapshot()
        assert merged["counters"]["c"] == 4
        assert merged["spans"]["s"] == [2, 1.0, 0.5]
        assert len(merged["events"]) == 2

    def test_absorb_empty_snapshot_is_false(self):
        obs.enable()
        assert obs.absorb_task("t1", None) is False
        assert obs.absorb_task("t1", {}) is False
        # An empty absorb must not consume the task id.
        assert obs.absorb_task("t1", {"counters": {"c": 1}}) is True

    def test_task_capture_isolates_and_restores(self):
        outer = obs.enable()
        obs.counter("outer")
        capture = obs.task_capture()
        with capture:
            obs.counter("inner")
            nested = obs.task_capture()
            with nested:
                obs.counter("deepest")
            assert obs.active() is not outer
        assert obs.active() is outer
        assert capture.snapshot()["counters"] == {"inner": 1}
        assert nested.snapshot()["counters"] == {"deepest": 1}
        assert obs.snapshot()["counters"] == {"outer": 1}

    def test_event_cap_counts_drops(self):
        recorder = obs.enable()
        for i in range(obs.MAX_EVENTS + 25):
            recorder.event("e", i=i)
        snap = obs.snapshot()
        assert len(snap["events"]) == obs.MAX_EVENTS
        assert snap["counters"]["obs.events_dropped"] == 25

    def test_event_file_appends_jsonl(self, tmp_path):
        obs.enable()
        path = tmp_path / "events" / "w-1.jsonl"
        path.parent.mkdir()
        obs.set_event_file(str(path))
        obs.event("task_claimed", task_id="t1")
        obs.event("task_done", task_id="t1")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["kind"] for line in lines] == ["task_claimed", "task_done"]
        assert all(line["task_id"] == "t1" for line in lines)

    def test_event_file_errors_are_swallowed(self, tmp_path):
        obs.enable()
        obs.set_event_file(str(tmp_path / "no" / "such" / "dir" / "e.jsonl"))
        obs.event("kind")  # must not raise
        assert obs.snapshot()["events"][0]["kind"] == "kind"


# -- metrics artifacts -------------------------------------------------------
class TestMetrics:
    def test_resolve_path_precedence(self, monkeypatch):
        monkeypatch.delenv(obs_metrics.METRICS_ENV_VAR, raising=False)
        assert obs_metrics.resolve_metrics_path(None) is None
        monkeypatch.setenv(obs_metrics.METRICS_ENV_VAR, "env.json")
        assert obs_metrics.resolve_metrics_path(None) == "env.json"
        assert obs_metrics.resolve_metrics_path("cli.json") == "cli.json"

    def test_write_metrics_schema(self, tmp_path):
        obs.enable()
        obs.counter("fault_sim.runs")
        obs.event("lease_expired", task_id="t9")
        with obs.span("fault_sim/c/grade"):
            pass
        path = tmp_path / "sub" / "metrics.json"
        payload = obs_metrics.write_metrics(str(path), meta={"tool": "test"})
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == obs_metrics.METRICS_SCHEMA
        assert on_disk["enabled"] is True
        assert on_disk["counters"] == {"fault_sim.runs": 1}
        (span,) = on_disk["spans"]
        assert span["path"] == "fault_sim/c/grade" and span["count"] == 1
        assert on_disk["events"][0]["kind"] == "lease_expired"
        assert on_disk["meta"]["tool"] == "test"
        # Schema 2: the meta block snapshots every set REPRO_* knob, and
        # truncated records whether any ring-buffer cap dropped data.
        assert "env" in on_disk["meta"]
        assert on_disk["truncated"] is False
        if not obs.timeline_enabled():  # off unless REPRO_TIMELINE=1 forces it
            assert on_disk["intervals"] == []
        assert sorted(on_disk["clock"]) == ["pid", "wall_anchor_s", "worker"]

    def test_maybe_write_without_path_is_noop(self, monkeypatch, tmp_path):
        monkeypatch.delenv(obs_metrics.METRICS_ENV_VAR, raising=False)
        assert obs_metrics.maybe_write_metrics(None) is None


# -- engine counters ---------------------------------------------------------
class TestEngineTelemetry:
    def test_packed_counters_describe_the_run(self):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        result = PackedFaultSimulator(circuit).run(patterns, faults)
        counters = _traced_counters(
            lambda: PackedFaultSimulator(circuit).run(patterns, faults)
        )
        assert counters["fault_sim.runs"] == 1
        assert counters["fault_sim.patterns"] == len(patterns)
        assert counters["fault_sim.faults"] == len(faults)
        assert counters["fault_sim.detected"] == result.detected_count
        assert counters["fault_sim.cone_evaluations"] > 0

    def test_naive_matches_packed(self):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        packed = _traced_counters(
            lambda: PackedFaultSimulator(circuit).run(patterns, faults)
        )
        naive = _traced_counters(
            lambda: NaiveFaultSimulator(circuit).run(patterns, faults)
        )
        assert _parity_subset(naive) == _parity_subset(packed)

    @pytest.mark.parametrize("fault_mode", ["lanes", "words", "faults"])
    def test_fault_modes_match(self, fault_mode):
        # cone_evaluations is kernel-granularity-dependent (lanes counts one
        # per fault x block, the words table one per fault), so it is only
        # comparable between runs using the same mode; the run totals are
        # mode-invariant.
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        keys = [key for key in PARITY_KEYS if key != "fault_sim.cone_evaluations"]
        reference = _traced_counters(
            lambda: PackedFaultSimulator(circuit).run(patterns, faults)
        )
        counters = _traced_counters(
            lambda: PackedFaultSimulator(circuit, mode=fault_mode).run(
                patterns, faults
            )
        )
        assert {k: counters.get(k) for k in keys} == {
            k: reference.get(k) for k in keys
        }
        assert counters["fault_sim.cone_evaluations"] > 0

    def test_podem_counters_match_results(self):
        circuit = b01_like_fsm()
        faults = collapse_faults(circuit)[:24]
        engine = PodemEngine(circuit, backtrack_limit=15, mode="compiled")
        results = [engine.generate(fault) for fault in faults]
        counters = _traced_counters(
            lambda: [
                PodemEngine(circuit, backtrack_limit=15, mode="compiled").generate(
                    fault
                )
                for fault in faults
            ]
        )
        assert counters["podem.faults"] == len(faults)
        assert counters["podem.backtracks"] == sum(r.backtracks for r in results)
        assert counters["podem.decisions"] == sum(r.decisions for r in results)

    def test_podem_dict_matches_compiled(self):
        circuit = b01_like_fsm()
        faults = collapse_faults(circuit)[:24]

        def run(mode):
            engine = PodemEngine(circuit, backtrack_limit=15, mode=mode)
            return lambda: [engine.generate(fault) for fault in faults]

        assert _traced_counters(run("dict")) == _traced_counters(run("compiled"))

    def test_disabled_run_records_nothing(self):
        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 64)
        faults = collapse_faults(circuit)
        PackedFaultSimulator(circuit).run(patterns, faults)
        obs.enable()
        assert obs.snapshot()["counters"] == {}


# -- cross-backend / cross-transport parity ----------------------------------
class TestDistributedTelemetryParity:
    def _reference(self, circuit, patterns, faults):
        return _parity_subset(
            _traced_counters(
                lambda: PackedFaultSimulator(circuit).run(patterns, faults)
            )
        )

    @pytest.mark.parametrize("backend", ["sharded", "cluster"])
    def test_backend_counters_match_packed(self, backend):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = self._reference(circuit, patterns, faults)
        counters = _traced_counters(
            lambda: get_backend(backend).fault_simulator(circuit).run(patterns, faults)
        )
        assert _parity_subset(counters) == reference

    @pytest.mark.parametrize("transport", ["local", "mp"])
    def test_transport_counters_match_packed(self, transport):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = self._reference(circuit, patterns, faults)
        counters = _traced_counters(
            lambda: _forced_simulator(circuit, transport=transport).run(
                patterns, faults
            )
        )
        assert _parity_subset(counters) == reference

    def test_queue_counters_match_packed(self):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = self._reference(circuit, patterns, faults)
        obs.enable()
        transport = QueueTransport(
            workers=2, jobs=2, lease_timeout=5.0, poll_interval=0.01
        )
        try:
            _forced_simulator(circuit, transport=transport).run(patterns, faults)
            counters = obs.snapshot()["counters"]
        finally:
            transport.close()
        assert _parity_subset(counters) == reference

    def test_duplicate_deliveries_do_not_double_count(self):
        class EnvelopeDuplicatingTransport(LocalTransport):
            """Delivers every *raw* result envelope twice — the snapshot
            rides through ``unwrap_payload`` twice, like a retried queue
            task whose both executions published."""

            def __init__(self):
                super().__init__()
                self._replay = None

            def next_result(self, timeout=30.0):
                if self._replay is not None:
                    task_id, payload = self._replay
                    self._replay = None
                    return task_id, unwrap_payload(task_id, payload)
                task_id, task = self._pending.popleft()
                with worker_context():
                    payload = execute_task(task)
                self._replay = (task_id, payload)
                return task_id, unwrap_payload(task_id, payload)

        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = self._reference(circuit, patterns, faults)
        counters = _traced_counters(
            lambda: _forced_simulator(
                circuit, transport=EnvelopeDuplicatingTransport()
            ).run(patterns, faults)
        )
        assert _parity_subset(counters) == reference

    def test_worker_kill_counters_stay_exact(self, tmp_path):
        """SIGKILL a queue worker while the run is in flight; the retried
        work units must not double-count (task-id dedupe)."""
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = self._reference(circuit, patterns, faults)
        obs.enable()
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=2,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.02,
        )
        outcome = {}

        def run():
            outcome["result"] = _forced_simulator(circuit, transport=transport).run(
                patterns, faults
            )

        try:
            thread = threading.Thread(target=run)
            thread.start()
            claimed_dir = os.path.join(transport.spool, "claimed")
            deadline = time.time() + 30.0
            while time.time() < deadline and not outcome:
                if any(n.endswith(".task") for n in os.listdir(claimed_dir)):
                    break
                time.sleep(0.005)
            transport._procs[0].kill()
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            counters = obs.snapshot()["counters"]
        finally:
            transport.close()
        reference_result = PackedFaultSimulator(circuit).run(patterns, faults)
        assert list(reference_result.detected.items()) == list(
            outcome["result"].detected.items()
        )
        assert _parity_subset(counters) == reference


# -- queue lifecycle events --------------------------------------------------
class TestQueueEvents:
    def test_stale_lease_emits_expiry_and_retry(self, tmp_path):
        obs.enable()
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=0,
            jobs=2,
            lease_timeout=0.3,
            poll_interval=0.01,
            self_drain_after=0.05,
        )
        try:
            task_id = transport.submit({"kind": "echo", "payload": 42})
            # A claimant that dies on the spot: claimed, no lease ever beats.
            claimed = claim_task(transport.spool)
            assert claimed is not None and claimed[0] == task_id
            assert transport.next_result(timeout=20.0) == (task_id, 42)
            assert transport.retries == 1
        finally:
            transport.close()
        kinds = {event["kind"] for event in obs.snapshot()["events"]}
        assert "lease_expired" in kinds and "task_retried" in kinds
        for event in obs.snapshot()["events"]:
            if event["kind"] in ("lease_expired", "task_retried"):
                assert event["task_id"] == task_id

    def test_poisoned_task_event_carries_traceback(self, tmp_path):
        obs.enable()
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=0,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.01,
            self_drain_after=0.01,
        )
        try:
            task_id = transport.submit({"kind": "no-such-kind"})
            with pytest.raises(TransportTaskError) as excinfo:
                transport.next_result(timeout=10.0)
        finally:
            transport.close()
        assert excinfo.value.task_id == task_id
        assert excinfo.value.transport == "queue"
        failures = [
            event
            for event in obs.snapshot()["events"]
            if event["kind"] == "task_failed"
        ]
        assert failures and failures[0]["task_id"] == task_id
        assert "no-such-kind" in failures[0]["traceback"]

    def test_transport_failure_event_before_inline_fallback(self):
        class ExplodingTransport(LocalTransport):
            def next_result(self, timeout=30.0):
                raise RuntimeError("transport lost")

        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 64)
        faults = collapse_faults(circuit)
        obs.enable()
        simulator = _forced_simulator(circuit, transport=ExplodingTransport())
        simulator.run(patterns, faults)
        assert simulator.last_run_stats["mode"] == "inline"
        failures = [
            event
            for event in obs.snapshot()["events"]
            if event["kind"] == "transport_failed"
        ]
        assert failures
        assert failures[0]["consumer"] == "fault_sim"
        assert failures[0]["fallback"] == "inline"
        assert "transport lost" in failures[0]["traceback"]

    def test_worker_writes_jsonl_event_log(self, tmp_path):
        """A spawned queue worker leaves a durable per-worker JSONL log in
        the spool (tracing propagates via REPRO_TRACE to the subprocess)."""
        obs.enable()
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=1,
            jobs=1,
            lease_timeout=5.0,
            poll_interval=0.02,
        )
        try:
            task_id = transport.submit({"kind": "echo", "payload": "hi"})
            assert transport.next_result(timeout=30.0) == (task_id, "hi")
            events_dir = spool_events_dir(transport.spool)
            # Ask the worker to exit via the stop file (close() SIGTERMs,
            # which would race the final worker_exit line) and wait for its
            # clean shutdown before reading the log.
            write_atomic(os.path.join(transport.spool, STOP_FILE), b"stop\n")
            deadline = time.time() + 10.0
            logs = []
            while time.time() < deadline:
                logs = [
                    os.path.join(events_dir, name)
                    for name in os.listdir(events_dir)
                    if name.endswith(".jsonl")
                ]
                if logs and any(
                    '"worker_exit"' in open(path, encoding="utf-8").read()
                    for path in logs
                ):
                    break
                time.sleep(0.05)
        finally:
            transport.close()
        assert logs, "worker left no event log"
        lines = [
            json.loads(line)
            for path in logs
            for line in open(path, encoding="utf-8").read().splitlines()
        ]
        kinds = [line["kind"] for line in lines]
        assert "worker_joined" in kinds
        assert "task_claimed" in kinds and "task_done" in kinds
        assert "worker_exit" in kinds
        claims = [line for line in lines if line["kind"] == "task_claimed"]
        assert any(line["task_id"] == task_id for line in claims)


# -- runner integration ------------------------------------------------------
class TestRunnerMetrics:
    @pytest.fixture()
    def cold_cubes(self, tmp_path, monkeypatch):
        """Point the cube cache at an empty dir so the run does real ATPG
        and fault-sim work (warm caches would leave the counters empty)."""
        from repro.experiments.workloads import build_workload

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cube-cache"))
        build_workload.cache_clear()
        yield
        build_workload.cache_clear()

    def test_metrics_flag_writes_artifact(self, tmp_path, cold_cubes):
        from repro.experiments.runner import main

        path = tmp_path / "metrics.json"
        code = main(
            ["--artifacts", "1", "--benchmarks", "b01", "--metrics", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == obs_metrics.METRICS_SCHEMA
        assert payload["enabled"] is True
        assert payload["counters"].get("fault_sim.runs", 0) >= 1
        assert payload["counters"].get("podem.faults", 0) >= 1
        paths = [span["path"] for span in payload["spans"]]
        assert any(p.startswith("runner/") for p in paths)
        assert any(p.startswith("fault_sim/") for p in paths)
        assert payload["meta"]["tool"] == "dpfill-experiments"
        # --metrics implied tracing for the run only; it must not leak.
        assert not obs.enabled()

    def test_env_var_also_writes(self, tmp_path, monkeypatch, cold_cubes):
        from repro.experiments.runner import main

        path = tmp_path / "env-metrics.json"
        monkeypatch.setenv(obs_metrics.METRICS_ENV_VAR, str(path))
        code = main(["--artifacts", "1", "--benchmarks", "b01"])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == obs_metrics.METRICS_SCHEMA
        assert payload["counters"].get("fault_sim.runs", 0) >= 1


# -- counters manifest -------------------------------------------------------
class TestManifest:
    """The declared telemetry grammar (consumed by analysis rule R5)."""

    def test_manifest_is_internally_consistent(self):
        assert list(obs_manifest.validate()) == []

    def test_every_declared_counter_parses(self):
        for name in obs_manifest.COUNTERS:
            assert obs_manifest.COUNTER_GRAMMAR.match(name), name

    def test_parity_keys_are_declared_and_deterministic(self):
        assert PARITY_KEYS  # sourcing from the manifest must not empty the set
        for key in PARITY_KEYS:
            assert obs_manifest.is_declared(key)
            assert key in obs_manifest.DETERMINISTIC

    def test_dynamic_status_family_is_declared(self):
        assert obs_manifest.is_declared("podem.status.detected")
        assert obs_manifest.is_declared("podem.status.untestable")
        assert not obs_manifest.is_declared("nonsense.counter")

    def test_scheduling_dependent_counters_excluded(self):
        assert "fault_sim.blocks" not in obs_manifest.DETERMINISTIC
        assert "fault_sim.dropped_block_evaluations" not in obs_manifest.DETERMINISTIC
