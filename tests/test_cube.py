"""Unit tests for TestCube and TestSet containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubes.bits import ONE, X, ZERO
from repro.cubes.cube import TestCube, TestSet


class TestTestCube:
    def test_from_string_and_back(self):
        cube = TestCube.from_string("0X11X")
        assert cube.to_string() == "0X11X"
        assert len(cube) == 5

    def test_counts_and_fractions(self):
        cube = TestCube.from_string("0X1XX1")
        assert cube.x_count == 3
        assert cube.specified_count == 3
        assert cube.x_fraction == pytest.approx(0.5)

    def test_fully_x_constructor(self):
        cube = TestCube.fully_x(4)
        assert cube.to_string() == "XXXX"
        assert not cube.is_fully_specified()

    def test_indexing_and_iteration(self):
        cube = TestCube.from_string("01X")
        assert cube[0] == ZERO and cube[1] == ONE and cube[2] == X
        assert list(cube) == [ZERO, ONE, X]

    def test_equality_and_hash(self):
        a = TestCube.from_string("0X1")
        b = TestCube.from_string("0X1")
        c = TestCube.from_string("011")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_bits_are_immutable(self):
        cube = TestCube.from_string("0X1")
        with pytest.raises(ValueError):
            cube.bits[0] = 1

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TestCube(np.array([0, 5], dtype=np.int8))

    def test_compatibility_and_merge(self):
        a = TestCube.from_string("0XX1")
        b = TestCube.from_string("X01X")
        assert a.is_compatible(b)
        assert a.merge(b).to_string() == "0011"

    def test_merge_conflict_raises(self):
        with pytest.raises(ValueError):
            TestCube.from_string("00").merge(TestCube.from_string("01"))

    def test_covers(self):
        cube = TestCube.from_string("0XX1")
        assert cube.covers(TestCube.from_string("0101"))
        assert not cube.covers(TestCube.from_string("1101"))

    def test_filled_with_constant(self):
        cube = TestCube.from_string("0XX1")
        assert cube.filled_with(ONE).to_string() == "0111"
        assert cube.filled_with(ZERO).to_string() == "0001"
        with pytest.raises(ValueError):
            cube.filled_with(X)

    def test_specified_positions(self):
        cube = TestCube.from_string("X0X1")
        np.testing.assert_array_equal(cube.specified_positions(), [1, 3])


class TestTestSetConstruction:
    def test_from_strings(self):
        ts = TestSet.from_strings(["0X1", "10X"])
        assert len(ts) == 2
        assert ts.n_pins == 3
        assert ts.to_strings() == ["0X1", "10X"]

    def test_from_mixed_inputs(self):
        ts = TestSet([TestCube.from_string("0X"), "1X", [ZERO, ONE]])
        assert ts.to_strings() == ["0X", "1X", "01"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            TestSet.from_strings(["0X1", "10"])

    def test_empty_set(self):
        ts = TestSet([])
        assert len(ts) == 0
        assert ts.x_fraction == 0.0

    def test_pin_matrix_round_trip(self):
        ts = TestSet.from_strings(["0X1", "10X", "XX0"])
        rebuilt = TestSet.from_pin_matrix(ts.pin_matrix())
        assert rebuilt == ts

    def test_names_preserved(self):
        ts = TestSet([TestCube.from_string("0X", name="f1"), TestCube.from_string("10", name="f2")])
        assert ts.names == ["f1", "f2"]
        assert ts[1].name == "f2"

    def test_names_length_check(self):
        with pytest.raises(ValueError):
            TestSet.from_strings(["01"]).from_matrix(np.zeros((2, 2), dtype=np.int8), names=["a"])


class TestTestSetOperations:
    def test_x_statistics(self):
        ts = TestSet.from_strings(["0XXX", "01XX"])
        assert ts.x_count == 5
        assert ts.x_fraction == pytest.approx(5 / 8)
        np.testing.assert_array_equal(ts.x_counts_per_pattern(), [3, 2])

    def test_reordered(self):
        ts = TestSet.from_strings(["00", "11", "0X"])
        out = ts.reordered([2, 0, 1])
        assert out.to_strings() == ["0X", "00", "11"]

    def test_reordered_rejects_non_permutation(self):
        ts = TestSet.from_strings(["00", "11"])
        with pytest.raises(ValueError):
            ts.reordered([0, 0])

    def test_subset(self):
        ts = TestSet.from_strings(["00", "11", "0X"])
        assert ts.subset([1, 2]).to_strings() == ["11", "0X"]

    def test_with_pattern(self):
        ts = TestSet.from_strings(["00", "11"])
        out = ts.with_pattern(0, TestCube.from_string("01"))
        assert out.to_strings() == ["01", "11"]
        assert ts.to_strings() == ["00", "11"]  # original untouched

    def test_filled_accepts_valid_fill(self):
        ts = TestSet.from_strings(["0X", "X1"])
        filled = ts.filled(np.array([[0, 1], [0, 1]], dtype=np.int8))
        assert filled.is_fully_specified()
        assert filled.to_strings() == ["01", "01"]

    def test_filled_rejects_care_bit_change(self):
        ts = TestSet.from_strings(["0X"])
        with pytest.raises(ValueError, match="care"):
            ts.filled(np.array([[1, 1]], dtype=np.int8))

    def test_filled_rejects_remaining_x(self):
        ts = TestSet.from_strings(["0X"])
        with pytest.raises(ValueError, match="X bits"):
            ts.filled(np.array([[0, X]], dtype=np.int8))

    def test_filled_rejects_wrong_shape(self):
        ts = TestSet.from_strings(["0X"])
        with pytest.raises(ValueError, match="shape"):
            ts.filled(np.zeros((2, 2), dtype=np.int8))

    def test_matrix_is_read_only(self):
        ts = TestSet.from_strings(["0X"])
        with pytest.raises(ValueError):
            ts.matrix[0, 0] = 1

    def test_copy_is_independent(self):
        ts = TestSet.from_strings(["0X"])
        assert ts.copy() == ts and ts.copy() is not ts
