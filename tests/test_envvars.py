"""Environment-variable registry tests (``repro.envvars``).

The registry is the single source of truth for every ``REPRO_*`` knob:
strict parsers (bad values fail loudly with the variable named), one
declaration per variable, and a rendered README table the R3 analyzer
rule locks against drift.  These tests pin the parser error contracts,
the declaration invariants, resolution through real environment values,
and the table/README machinery.
"""

from __future__ import annotations

import pytest

from repro import envvars


class TestParsers:
    def test_parse_jobs_accepts_positive(self):
        assert envvars.parse_jobs("4") == 4
        assert envvars.parse_jobs(2) == 2

    @pytest.mark.parametrize("bad", ["0", "-1", "x", "1.5", ""])
    def test_parse_jobs_rejects(self, bad):
        with pytest.raises(ValueError, match="positive integer"):
            envvars.parse_jobs(bad, source="REPRO_JOBS")

    def test_parse_jobs_names_its_source(self):
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            envvars.parse_jobs("zero", source="REPRO_JOBS")

    def test_parse_nonneg_int(self):
        assert envvars.parse_nonneg_int("0", "REPRO_QUEUE_WORKERS") == 0
        with pytest.raises(ValueError, match="REPRO_QUEUE_WORKERS"):
            envvars.parse_nonneg_int("-1", "REPRO_QUEUE_WORKERS")

    def test_parse_lease_timeout_positive_number(self):
        assert envvars.parse_lease_timeout("2.5") == 2.5
        with pytest.raises(ValueError, match="positive number"):
            envvars.parse_lease_timeout("0")

    @pytest.mark.parametrize(
        "token,expected",
        [("1", True), ("true", True), ("YES", True), ("on", True),
         ("0", False), ("false", False), ("No", False), ("off", False)],
    )
    def test_parse_flag_tokens(self, token, expected):
        assert envvars.parse_flag(token, "REPRO_TRACE") is expected

    def test_parse_flag_rejects_garbage(self):
        with pytest.raises(ValueError, match="REPRO_TRACE"):
            envvars.parse_flag("maybe", "REPRO_TRACE")

    def test_parse_choice_rejects_unknown(self):
        parser = envvars.parse_choice(("a", "b"), "widget")
        assert parser(" b ", "SRC") == "b"
        with pytest.raises(ValueError, match="unknown widget"):
            parser("c", "SRC")


class TestRegistry:
    def test_all_declarations_are_repro_prefixed(self):
        assert envvars.REGISTRY
        for name, var in envvars.REGISTRY.items():
            assert name == var.name
            assert name.startswith("REPRO_")
            assert var.doc  # every knob is documented

    def test_declare_rejects_foreign_prefix(self):
        with pytest.raises(ValueError, match="REPRO_"):
            envvars.declare("OTHER_THING", envvars.parse_string, doc="x")

    def test_declare_rejects_duplicates(self):
        existing = next(iter(envvars.REGISTRY))
        with pytest.raises(ValueError, match="already declared"):
            envvars.declare(existing, envvars.parse_string, doc="x")

    def test_is_declared(self):
        assert envvars.is_declared("REPRO_JOBS")
        assert not envvars.is_declared("REPRO_NOT_A_THING")

    def test_known_knobs_present(self):
        expected = {
            "REPRO_BACKEND", "REPRO_JOBS", "REPRO_FAULT_MODE",
            "REPRO_ATPG_MODE", "REPRO_TRANSPORT", "REPRO_QUEUE_DIR",
            "REPRO_QUEUE_WORKERS", "REPRO_LEASE_TIMEOUT",
            "REPRO_TASK_RETRIES", "REPRO_CHUNK_PLAN", "REPRO_CHAOS",
            "REPRO_CLUSTER_WORKER", "REPRO_TRACE", "REPRO_METRICS",
            "REPRO_SANITIZE", "REPRO_CACHE_DIR", "REPRO_INCLUDE_LARGE",
            "REPRO_FULL_SCALE", "REPRO_BENCH_FULL",
        }
        assert expected <= set(envvars.REGISTRY)


class TestResolution:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert envvars.JOBS.read() is None
        assert not envvars.JOBS.is_set()

    def test_set_value_is_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 3 ")
        assert envvars.JOBS.read() == 3
        assert envvars.JOBS.is_set()
        assert envvars.JOBS.raw() == "3"

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            envvars.JOBS.read()

    def test_empty_string_means_unset_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "")
        assert envvars.TRACE.read() is False  # parse_flag default path

    def test_cache_dir_empty_and_off_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert envvars.CACHE_DIR.read() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert envvars.CACHE_DIR.read() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/cache")
        assert envvars.CACHE_DIR.read() == "/tmp/cache"
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert envvars.CACHE_DIR.read() == ".repro_cache"

    def test_sanitize_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert envvars.SANITIZE.read() is False
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert envvars.SANITIZE.read() is True


class TestTable:
    def test_render_table_lists_every_variable(self):
        table = envvars.render_table()
        for name in envvars.REGISTRY:
            assert f"`{name}`" in table

    def test_readme_block_is_marker_wrapped(self):
        block = envvars.readme_block()
        assert block.startswith(envvars.TABLE_BEGIN)
        assert block.endswith(envvars.TABLE_END)

    def test_update_readme_round_trip(self, tmp_path):
        target = tmp_path / "README.md"
        target.write_text(
            "# Title\n\n"
            f"{envvars.TABLE_BEGIN}\nstale\n{envvars.TABLE_END}\n\ntail\n"
        )
        assert envvars.update_readme(str(target)) is True
        assert envvars.render_table() in target.read_text()
        assert envvars.update_readme(str(target)) is False  # idempotent

    def test_update_readme_requires_markers(self, tmp_path):
        target = tmp_path / "README.md"
        target.write_text("# Title\n")
        with pytest.raises(ValueError, match="markers"):
            envvars.update_readme(str(target))

    def test_repo_readme_table_is_current(self):
        from pathlib import Path

        readme = Path(__file__).resolve().parent.parent / "README.md"
        text = readme.read_text()
        inner = text.split(envvars.TABLE_BEGIN, 1)[1].split(
            envvars.TABLE_END, 1
        )[0].strip()
        assert inner == envvars.render_table().strip()
