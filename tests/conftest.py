"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubes.cube import TestSet
from repro.cubes.generator import CubeSetSpec, generate_cube_set


@pytest.fixture
def paper_motivation_set() -> TestSet:
    """A small cube set in the spirit of Fig. 1 of the paper.

    Four input pins, eight patterns, several long X stretches whose greedy
    fill is sub-optimal — the optimal peak is strictly better than what
    adjacent-style fills achieve.
    """
    rows = [
        "0XXXX1",
        "1XXXX0",
        "0X1XX0",
        "1XXX0X",
    ]
    pin_matrix = np.array(
        [[{"0": 0, "1": 1, "X": 2}[c] for c in row] for row in rows], dtype=np.int8
    )
    return TestSet.from_pin_matrix(pin_matrix)


@pytest.fixture
def medium_synthetic_set() -> TestSet:
    """A medium synthetic cube set (fast, deterministic) for integration tests."""
    return generate_cube_set(
        CubeSetSpec(n_pins=48, n_patterns=36, x_fraction=0.7, seed=7)
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy RNG for tests that need randomness."""
    return np.random.default_rng(12345)
