"""Unit tests for the tri-valued bit encoding helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubes.bits import (
    ONE,
    X,
    ZERO,
    bit_from_char,
    bit_to_char,
    bits_from_string,
    bits_to_string,
    is_specified,
    merge_bits,
    random_bits,
    validate_bits,
)


class TestBitConversion:
    def test_round_trip_characters(self):
        for char, value in [("0", ZERO), ("1", ONE), ("X", X)]:
            assert bit_from_char(char) == value
            assert bit_to_char(value) == char

    def test_alternate_dont_care_spellings(self):
        assert bit_from_char("x") == X
        assert bit_from_char("-") == X
        assert bit_from_char("D") == X
        assert bit_from_char("d") == X

    def test_invalid_character_raises(self):
        with pytest.raises(ValueError):
            bit_from_char("2")
        with pytest.raises(ValueError):
            bit_from_char("")

    def test_invalid_bit_value_raises(self):
        with pytest.raises(ValueError):
            bit_to_char(7)

    def test_string_round_trip(self):
        text = "01XX10X"
        assert bits_to_string(bits_from_string(text)) == text

    def test_string_parsing_ignores_whitespace_and_underscores(self):
        assert bits_to_string(bits_from_string("01_XX 10")) == "01XX10"

    def test_parsed_dtype_is_int8(self):
        assert bits_from_string("01X").dtype == np.int8


class TestBitPredicates:
    def test_is_specified_mask(self):
        bits = bits_from_string("0X1X")
        np.testing.assert_array_equal(is_specified(bits), [True, False, True, False])

    def test_validate_accepts_valid_values(self):
        validate_bits(np.array([ZERO, ONE, X], dtype=np.int8))

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="invalid bit values"):
            validate_bits(np.array([0, 3], dtype=np.int8))

    def test_validate_empty_is_fine(self):
        validate_bits(np.array([], dtype=np.int8))


class TestRandomBits:
    def test_length_and_alphabet(self):
        rng = np.random.default_rng(0)
        bits = random_bits(200, 0.5, rng)
        assert bits.shape == (200,)
        assert set(np.unique(bits)).issubset({ZERO, ONE, X})

    def test_extreme_fractions(self):
        rng = np.random.default_rng(0)
        assert not (random_bits(64, 0.0, rng) == X).any()
        assert (random_bits(64, 1.0, rng) == X).all()

    def test_invalid_fraction_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_bits(8, 1.5, rng)


class TestMergeBits:
    def test_specified_wins_over_x(self):
        merged = merge_bits(bits_from_string("0XX"), bits_from_string("X1X"))
        assert merged == [ZERO, ONE, X]

    def test_conflict_raises(self):
        with pytest.raises(ValueError, match="conflict"):
            merge_bits(bits_from_string("01"), bits_from_string("00"))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="different lengths"):
            merge_bits(bits_from_string("01"), bits_from_string("011"))
