"""Checkpoint/resume tests: the run journal and crash-resume parity.

A run directory holds append-only journals of completed task results keyed
by *content* (task fields salted with the circuit/program digest, never
spool task ids).  Re-running with ``resume=`` replays journalled results
and schedules only the remainder, so a parent SIGKILLed mid-run — on any
transport — resumes to a result identical to an uninterrupted run.  The
obs counters ``cluster.tasks_replayed`` / ``cluster.tasks_executed`` (and
the runner's ``runner.cells_*`` pair) verify that replay actually replaced
re-execution.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.atpg.collapse import collapse_faults
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.cluster import (
    ClusterFaultSimulator,
    ClusterPodemScheduler,
    LocalTransport,
    RunJournal,
    resolve_journal,
    task_key,
)
from repro.cluster.checkpoint import MISSING, program_digest
from repro.cubes.cube import TestSet
from repro.engine.backend import get_backend
from repro.experiments.report import render_table
from repro.experiments.runner import run_all
from repro.obs import recorder as obs


def _medium_circuit():
    return generate_circuit(CircuitSpec("resume_med", 10, 12, 260, seed=6))


def _patterns(circuit, n=96, seed=2):
    rng = np.random.default_rng(seed)
    return TestSet.from_matrix(
        rng.integers(0, 2, size=(n, circuit.n_test_pins)).astype(np.int8)
    )


def _assert_same(reference, result, context=""):
    assert list(reference.detected.items()) == list(result.detected.items()), context
    assert reference.undetected == result.undetected, context
    assert reference.coverage == result.coverage, context


def _counters(body) -> dict:
    """Run ``body`` under an enabled recorder; return the counter table."""
    obs.enable()
    obs.reset()
    try:
        body()
        return obs.snapshot()["counters"]
    finally:
        obs.disable()
        obs.reset()


# -- the journal itself ------------------------------------------------------
class TestRunJournal:
    def test_roundtrip_and_reload(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal(run_dir, scope="tasks") as journal:
            journal.put("a", [1, 2, 3])
            journal.put("b", {"x": (4, 5)})
            assert journal.get("a") == [1, 2, 3]
            assert "b" in journal and "c" not in journal
            assert journal.get("c") is MISSING
        with RunJournal(run_dir, scope="tasks") as reloaded:
            assert dict(reloaded.items()) == {"a": [1, 2, 3], "b": {"x": (4, 5)}}

    def test_last_write_wins(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal(run_dir) as journal:
            journal.put("k", "old")
            journal.put("k", "new")
        with RunJournal(run_dir) as reloaded:
            assert reloaded.get("k") == "new"

    def test_torn_tail_is_truncated(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal(run_dir) as journal:
            journal.put("a", 1)
            journal.put("b", 2)
            path = journal.path
        intact = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\xff\xfe\xfd")  # torn record from a dying writer
        with RunJournal(run_dir) as reloaded:
            assert dict(reloaded.items()) == {"a": 1, "b": 2}
        assert os.path.getsize(path) == intact  # tail truncated in place

    def test_scopes_are_separate_files(self, tmp_path):
        run_dir = str(tmp_path / "run")
        with RunJournal(run_dir, scope="fault_sim") as a, RunJournal(
            run_dir, scope="podem"
        ) as b:
            a.put("k", 1)
            b.put("k", 2)
            assert a.path != b.path
        with RunJournal(run_dir, scope="fault_sim") as reloaded:
            assert reloaded.get("k") == 1

    def test_resolve_journal(self, tmp_path):
        assert resolve_journal(None, "tasks") is None
        run_dir = str(tmp_path / "run")
        journal = resolve_journal(run_dir, "fault_sim")
        try:
            assert isinstance(journal, RunJournal)
            assert journal.run_dir == run_dir and journal.scope == "fault_sim"
            other = resolve_journal(journal, "podem")
            try:
                assert other.run_dir == run_dir and other.scope == "podem"
            finally:
                other.close()
        finally:
            journal.close()


class TestTaskKey:
    def test_content_keys_ignore_run_local_identity(self):
        task = {"kind": "simulate", "seed": 3, "pattern_start": 0}
        assert task_key(task, salt="s") == task_key(dict(task), salt="s")
        assert task_key(task, salt="s") != task_key(task, salt="other")
        with_blob = dict(task, program_blob=b"run-local-uuid-here", obs={"x": 1})
        assert task_key(with_blob, salt="s") == task_key(task, salt="s")
        changed = dict(task, seed=4)
        assert task_key(changed, salt="s") != task_key(task, salt="s")

    def test_program_digest_is_content_stable(self):
        circuit = _medium_circuit()
        backend = get_backend("cluster")
        a = program_digest(backend.compiled_program(circuit))
        b = program_digest(backend.compiled_program(_medium_circuit()))
        assert a == b
        other = generate_circuit(CircuitSpec("resume_other", 10, 12, 260, seed=7))
        assert program_digest(backend.compiled_program(other)) != a


# -- scheduler-level resume --------------------------------------------------
class TestFaultSimResume:
    def test_resume_replays_instead_of_executing(self, tmp_path):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        run_dir = str(tmp_path / "run")

        def simulator():
            return ClusterFaultSimulator(
                circuit,
                transport=LocalTransport(),
                jobs=2,
                min_chunk_faults=2,
                chunks_per_worker=2,
                resume=run_dir,
            )

        results = {}
        first = _counters(lambda: results.update(a=simulator().run(patterns, faults)))
        assert first.get("cluster.tasks_executed", 0) > 0
        assert first.get("cluster.tasks_replayed", 0) == 0
        second = _counters(lambda: results.update(b=simulator().run(patterns, faults)))
        assert second.get("cluster.tasks_replayed", 0) == first["cluster.tasks_executed"]
        assert second.get("cluster.tasks_executed", 0) == 0
        _assert_same(results["a"], results["b"], "journal replay")

    def test_journal_is_salted_by_run_shape(self, tmp_path):
        """Dropping vs non-dropping runs must not share journal entries."""
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        run_dir = str(tmp_path / "run")

        def run(drop):
            simulator = ClusterFaultSimulator(
                circuit,
                transport=LocalTransport(),
                jobs=2,
                min_chunk_faults=2,
                chunks_per_worker=2,
                resume=run_dir,
            )
            return simulator.run(patterns, faults, drop_detected=drop)

        run(True)
        counters = _counters(lambda: run(False))
        assert counters.get("cluster.tasks_replayed", 0) == 0  # different salt


class TestPodemResume:
    def test_resume_replays_instead_of_executing(self, tmp_path):
        circuit = _medium_circuit()
        program = get_backend("cluster").compiled_program(circuit)
        faults = collapse_faults(circuit)[:40]
        run_dir = str(tmp_path / "run")

        def scheduler():
            return ClusterPodemScheduler(
                program,
                sites=[program.net_index[f.net] for f in faults],
                stuck_values=[f.stuck_value for f in faults],
                backtrack_limit=20,
                transport=LocalTransport(),
                jobs=2,
                chunks_per_worker=2,
                resume=run_dir,
            )

        results = {}

        def fetch_all(tag):
            sched = scheduler()
            assert sched.pooled
            results[tag] = [sched.fetch(i) for i in range(len(faults))]

        first = _counters(lambda: fetch_all("a"))
        assert first.get("cluster.tasks_executed", 0) > 0
        second = _counters(lambda: fetch_all("b"))
        assert second.get("cluster.tasks_replayed", 0) == first["cluster.tasks_executed"]
        assert second.get("cluster.tasks_executed", 0) == 0
        for raw_a, raw_b in zip(results["a"], results["b"]):
            status_a, bits_a, backtracks_a, decisions_a = raw_a
            status_b, bits_b, backtracks_b, decisions_b = raw_b
            assert status_a == status_b
            assert np.array_equal(bits_a, bits_b)
            assert backtracks_a == backtracks_b and decisions_a == decisions_b


# -- crash/resume parity across transports -----------------------------------
_KILL_SCRIPT = textwrap.dedent(
    """
    import json, os, pickle, signal, sys

    import numpy as np

    from repro.atpg.collapse import collapse_faults
    from repro.circuit.generator import CircuitSpec, generate_circuit
    from repro.cluster import ClusterFaultSimulator, checkpoint
    from repro.cubes.cube import TestSet
    from repro.obs import recorder as obs


    def main():
        transport_spec, run_dir, out_path, kill_after = sys.argv[1:5]
        kill_after = int(kill_after)
        if kill_after > 0:
            real_put = checkpoint.RunJournal.put
            state = {"n": 0}

            def killing_put(self, key, payload):
                real_put(self, key, payload)
                state["n"] += 1
                if state["n"] >= kill_after:
                    os.kill(os.getpid(), signal.SIGKILL)  # no atexit, no cleanup

            checkpoint.RunJournal.put = killing_put

        metrics_out = os.environ.get("RESUME_TEST_METRICS")
        if metrics_out:
            obs.enable()
        circuit = generate_circuit(CircuitSpec("resume_kill", 10, 12, 260, seed=6))
        rng = np.random.default_rng(2)
        patterns = TestSet.from_matrix(
            rng.integers(0, 2, size=(96, circuit.n_test_pins)).astype(np.int8)
        )
        faults = collapse_faults(circuit)
        simulator = ClusterFaultSimulator(
            circuit,
            transport=transport_spec,
            jobs=2,
            min_chunk_faults=2,
            chunks_per_worker=2,
            resume=run_dir or None,
        )
        result = simulator.run(patterns, faults)
        summary = (
            [(repr(fault), index) for fault, index in result.detected.items()],
            sorted(map(repr, result.undetected)),
            result.coverage,
        )
        with open(out_path, "wb") as handle:
            pickle.dump(summary, handle, protocol=4)
        if metrics_out:
            with open(metrics_out, "w") as handle:
                json.dump(obs.snapshot()["counters"], handle)


    # The guard matters: the mp transport's spawn pool re-imports this
    # module in its workers, which must not re-run the experiment.
    if __name__ == "__main__":
        main()
    """
)


def _subprocess_env():
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    if src_dir not in parts:
        env["PYTHONPATH"] = os.pathsep.join([src_dir] + parts)
    return env


class TestSigkillResumeParity:
    @pytest.fixture(scope="class")
    def reference_summary(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("ref") / "ref.pickle")
        script = str(tmp_path_factory.mktemp("script") / "kill_script.py")
        with open(script, "w") as handle:
            handle.write(_KILL_SCRIPT)
        proc = subprocess.run(
            [sys.executable, script, "local", "", out, "0"],
            env=_subprocess_env(),
            timeout=300,
        )
        assert proc.returncode == 0
        with open(out, "rb") as handle:
            return pickle.load(handle)

    @pytest.mark.parametrize("transport", ["local", "mp", "queue"])
    def test_parent_sigkill_then_resume_is_identical(
        self, transport, reference_summary, tmp_path
    ):
        script = str(tmp_path / "kill_script.py")
        with open(script, "w") as handle:
            handle.write(_KILL_SCRIPT)
        run_dir = str(tmp_path / "run")
        out = str(tmp_path / "out.pickle")
        env = _subprocess_env()
        # Phase 1: parent SIGKILLs itself right after the 2nd journal put.
        proc = subprocess.run(
            [sys.executable, script, transport, run_dir, out, "2"],
            env=env,
            timeout=300,
        )
        assert proc.returncode == -9, "parent should have died mid-run"
        assert not os.path.exists(out)
        with RunJournal(run_dir, scope="fault_sim") as journal:
            survived = len(dict(journal.items()))
        assert survived >= 2  # fsync'd checkpoints outlived the SIGKILL
        # Phase 2: resume in a fresh process; only the remainder executes.
        metrics = str(tmp_path / "counters.json")
        env["RESUME_TEST_METRICS"] = metrics
        proc = subprocess.run(
            [sys.executable, script, transport, run_dir, out, "0"],
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0
        with open(out, "rb") as handle:
            resumed = pickle.load(handle)
        assert resumed == reference_summary, f"resume parity on {transport}"
        with open(metrics) as handle:
            counters = json.load(handle)
        assert counters.get("cluster.tasks_replayed", 0) >= survived
        assert counters.get("cluster.tasks_executed", 0) >= 1


# -- experiment-runner resume ------------------------------------------------
class TestRunnerResume:
    def test_run_all_resume_counters_and_parity(self, tmp_path):
        run_dir = str(tmp_path / "run")
        results = {}
        first = _counters(
            lambda: results.update(
                a=run_all(["1"], ["b03"], seed=0, jobs=1, resume=run_dir)
            )
        )
        assert first.get("runner.cells_executed", 0) == 1
        assert first.get("runner.cells_replayed", 0) == 0
        second = _counters(
            lambda: results.update(
                b=run_all(["1"], ["b03"], seed=0, jobs=1, resume=run_dir)
            )
        )
        assert second.get("runner.cells_replayed", 0) == 1
        assert second.get("runner.cells_executed", 0) == 0
        rendered = [
            [render_table(table) for table in results[tag]["1"]] for tag in ("a", "b")
        ]
        assert rendered[0] == rendered[1]

    def test_runner_sigkill_resume_byte_identical_report(self, tmp_path):
        driver = str(tmp_path / "driver.py")
        with open(driver, "w") as handle:
            handle.write(
                textwrap.dedent(
                    """
                    import os, signal, sys

                    from repro.cluster import checkpoint

                    real_put = checkpoint.RunJournal.put
                    state = {"n": 0}

                    def killing_put(self, key, payload):
                        real_put(self, key, payload)
                        state["n"] += 1
                        if state["n"] >= 1:
                            os.kill(os.getpid(), signal.SIGKILL)

                    checkpoint.RunJournal.put = killing_put
                    from repro.experiments.runner import main

                    sys.exit(main(sys.argv[1:]))
                    """
                )
            )
        env = _subprocess_env()
        base = ["--artifacts", "1,2", "--benchmarks", "b03", "--seed", "0"]
        ref = str(tmp_path / "ref.txt")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner"] + base + ["--out", ref],
            env=env,
            timeout=300,
            stdout=subprocess.DEVNULL,
        )
        assert proc.returncode == 0
        run_dir = str(tmp_path / "run")
        out = str(tmp_path / "resumed.txt")
        proc = subprocess.run(
            [sys.executable, driver]
            + base
            + ["--resume", run_dir, "--out", str(tmp_path / "dead.txt")],
            env=env,
            timeout=300,
            stdout=subprocess.DEVNULL,
        )
        assert proc.returncode == -9, "runner should have died after one cell"
        metrics = str(tmp_path / "metrics.json")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner"]
            + base
            + ["--resume", run_dir, "--out", out, "--metrics", metrics],
            env=env,
            timeout=300,
            stdout=subprocess.DEVNULL,
        )
        assert proc.returncode == 0
        with open(ref, "rb") as handle:
            expected = handle.read()
        with open(out, "rb") as handle:
            assert handle.read() == expected  # byte-identical report
        with open(metrics) as handle:
            counters = json.load(handle)["counters"]
        assert counters.get("runner.cells_replayed", 0) == 1
        assert counters.get("runner.cells_executed", 0) == 1
