"""Unit tests for the test-vector ordering algorithms and their registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dpfill import dp_fill
from repro.cubes.bits import X
from repro.cubes.cube import TestSet
from repro.cubes.metrics import conflict_distance
from repro.orderings import (
    DensityOrdering,
    ISAOrdering,
    InterleavedOrdering,
    RandomOrdering,
    ToolOrdering,
    XStatOrdering,
    available_orderings,
    get_ordering,
)
from repro.orderings.base import register_ordering

ALL_ORDERINGS = ["tool", "isa", "xstat", "i-ordering", "density", "random"]


class TestRegistry:
    def test_all_paper_orderings_available(self):
        names = available_orderings()
        for required in ("tool", "isa", "xstat", "i-ordering"):
            assert required in names

    def test_lookup_aliases(self):
        assert isinstance(get_ordering("Tool-Ordering"), ToolOrdering)
        assert isinstance(get_ordering("interleaved"), InterleavedOrdering)
        assert isinstance(get_ordering("girard"), ISAOrdering)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_ordering("no-such-ordering")

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError):
            register_ordering("tool", RandomOrdering)


@pytest.mark.parametrize("name", ALL_ORDERINGS)
class TestOrderingContract:
    """Every ordering returns a valid permutation and never alters cube contents."""

    def test_permutation_is_valid(self, name, medium_synthetic_set):
        result = get_ordering(name).order(medium_synthetic_set)
        assert sorted(result.permutation) == list(range(len(medium_synthetic_set)))
        assert medium_synthetic_set.reordered(result.permutation) == result.ordered

    def test_multiset_of_patterns_preserved(self, name, medium_synthetic_set):
        result = get_ordering(name).order(medium_synthetic_set)
        original = sorted(medium_synthetic_set.to_strings())
        reordered = sorted(result.ordered.to_strings())
        assert original == reordered

    def test_handles_tiny_sets(self, name):
        for strings in (["0X"], ["0X", "1X"]):
            result = get_ordering(name).order(TestSet.from_strings(strings))
            assert sorted(result.permutation) == list(range(len(strings)))


class TestToolOrdering:
    def test_identity(self, medium_synthetic_set):
        result = ToolOrdering().order(medium_synthetic_set)
        assert result.permutation == list(range(len(medium_synthetic_set)))
        assert result.ordered == medium_synthetic_set


class TestDensityOrdering:
    def test_ascending_by_x_count(self, medium_synthetic_set):
        result = DensityOrdering().order(medium_synthetic_set)
        counts = result.ordered.x_counts_per_pattern()
        assert (np.diff(counts) >= 0).all()

    def test_descending_option(self, medium_synthetic_set):
        result = DensityOrdering(ascending=False).order(medium_synthetic_set)
        counts = result.ordered.x_counts_per_pattern()
        assert (np.diff(counts) <= 0).all()


class TestRandomOrdering:
    def test_deterministic_per_seed(self, medium_synthetic_set):
        a = RandomOrdering(seed=1).order(medium_synthetic_set).permutation
        b = RandomOrdering(seed=1).order(medium_synthetic_set).permutation
        c = RandomOrdering(seed=2).order(medium_synthetic_set).permutation
        assert a == b
        assert a != c


class TestGreedyTourOrderings:
    def test_isa_starts_from_most_specified_cube(self, medium_synthetic_set):
        result = ISAOrdering().order(medium_synthetic_set)
        x_counts = medium_synthetic_set.x_counts_per_pattern()
        assert result.permutation[0] == int(np.argmin(x_counts))

    def test_isa_greedy_step_is_locally_minimal(self):
        ts = TestSet.from_strings(["0000", "1111", "0001", "011X"])
        result = ISAOrdering().order(ts)
        first, second = result.permutation[0], result.permutation[1]
        chosen = conflict_distance(ts[first], ts[second])
        for candidate in range(len(ts)):
            if candidate not in (first,):
                assert chosen <= conflict_distance(ts[first], ts[candidate])

    def test_xstat_prefers_x_rich_neighbours(self):
        # From the dense start cube, the statistically closest neighbour is
        # the all-X cube, not the conflicting specified one.
        ts = TestSet.from_strings(["0000", "1111", "XXXX"])
        result = XStatOrdering().order(ts)
        assert result.permutation[:2] == [0, 2]

    def test_greedy_tours_reduce_their_own_objective_vs_random(self):
        """Each tour must beat a random shuffle on the distance it greedily
        minimises: hard conflicts for ISA, expected (statistical) toggles for
        X-Stat.  Their peak behaviour is evaluated in the experiment harness,
        mirroring the paper's Table V where ISA can still lose on peak."""
        from repro.cubes.bits import X
        from repro.cubes.generator import CubeSetSpec, generate_cube_set

        ts = generate_cube_set(CubeSetSpec(n_pins=60, n_patterns=40, x_fraction=0.75, seed=5))

        def tour_conflicts(ordered):
            cubes = list(ordered)
            return sum(conflict_distance(a, b) for a, b in zip(cubes[:-1], cubes[1:]))

        def tour_expected(ordered):
            matrix = ordered.matrix
            a, b = matrix[:-1], matrix[1:]
            both = (a != X) & (b != X)
            hard = int(((a != b) & both).sum())
            soft = int((~both).sum())
            return hard + 0.5 * soft

        random_order = RandomOrdering(seed=9).order(ts).ordered
        assert tour_conflicts(ISAOrdering().order(ts).ordered) < tour_conflicts(random_order)
        assert tour_expected(XStatOrdering().order(ts).ordered) < tour_expected(random_order)


class TestInterleavedOrderingWrapper:
    def test_matches_core_function(self, medium_synthetic_set):
        from repro.core.ordering import interleaved_ordering

        wrapper = InterleavedOrdering().order(medium_synthetic_set)
        core = interleaved_ordering(medium_synthetic_set)
        assert wrapper.peak == core.peak

    def test_max_k_forwarded(self, medium_synthetic_set):
        result = InterleavedOrdering(max_k=1).order(medium_synthetic_set)
        assert all(step.k <= 1 for step in result.trace)

    def test_beats_tool_ordering_with_dpfill(self, medium_synthetic_set):
        tool_peak = dp_fill(medium_synthetic_set).peak_toggles
        iord_peak = InterleavedOrdering().order(medium_synthetic_set).peak
        assert iord_peak <= tool_peak
