"""Unit, integration and property tests for the DP-fill algorithm."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpfill import dp_fill, optimal_peak_for_ordering
from repro.cubes.bits import X
from repro.cubes.cube import TestSet
from repro.cubes.generator import CubeSetSpec, generate_cube_set
from repro.cubes.metrics import peak_toggles, toggle_profile
from repro.filling import get_filler
from tests.helpers import brute_force_min_peak, cube_set_from_rows, random_small_cube_set


class TestDPFillBasics:
    def test_preserves_care_bits_and_removes_x(self, medium_synthetic_set):
        report = dp_fill(medium_synthetic_set)
        filled = report.filled
        assert filled.is_fully_specified()
        original = medium_synthetic_set.matrix
        specified = original != X
        np.testing.assert_array_equal(filled.matrix[specified], original[specified])

    def test_peak_matches_profile(self, medium_synthetic_set):
        report = dp_fill(medium_synthetic_set)
        assert report.peak_toggles == int(report.boundary_profile.max())
        assert report.peak_toggles == peak_toggles(report.filled)

    def test_certified_optimal_flag(self, medium_synthetic_set):
        report = dp_fill(medium_synthetic_set)
        assert report.is_certified_optimal
        assert report.peak_toggles == report.lower_bound

    def test_base_peak_is_a_floor(self, medium_synthetic_set):
        report = dp_fill(medium_synthetic_set)
        assert report.peak_toggles >= report.base_peak

    def test_empty_set(self):
        report = dp_fill(TestSet([]))
        assert report.peak_toggles == 0
        assert len(report.filled) == 0

    def test_single_pattern(self):
        report = dp_fill(TestSet.from_strings(["0XX1"]))
        assert report.peak_toggles == 0
        assert report.filled.is_fully_specified()

    def test_fully_specified_input_is_unchanged(self):
        ts = TestSet.from_strings(["0101", "0011", "1111"])
        report = dp_fill(ts)
        assert report.filled == ts
        assert report.peak_toggles == peak_toggles(ts)

    def test_ordering_changes_result(self):
        ts = cube_set_from_rows(["0XXXXX1", "1XXXXX0", "0X1X0X1"])
        base = dp_fill(ts).peak_toggles
        shuffled = ts.reordered([3, 0, 6, 2, 5, 1, 4])
        assert dp_fill(shuffled).peak_toggles >= 1
        assert base >= 1  # both valid; just exercising that ordering matters


class TestDPFillOptimality:
    def test_paper_motivation_example(self, paper_motivation_set):
        """DP-fill reaches the exhaustive optimum on the Fig.-1-style example."""
        report = dp_fill(paper_motivation_set)
        assert report.peak_toggles == brute_force_min_peak(paper_motivation_set)

    def test_beats_or_matches_every_baseline(self, medium_synthetic_set):
        report = dp_fill(medium_synthetic_set)
        for name in ("0-fill", "1-fill", "MT-fill", "Adj-fill", "B-fill", "R-fill"):
            baseline = get_filler(name).run(medium_synthetic_set)
            assert report.peak_toggles <= baseline.peak_toggles, name

    def test_pinned_small_cases(self):
        cases = [
            ["0X1", "X01", "1X0"],
            ["0XX1", "1XX0", "XXXX", "01X0"],
            ["00X", "X11", "0X0", "1XX"],
        ]
        for strings in cases:
            ts = TestSet.from_strings(strings)
            assert dp_fill(ts).peak_toggles == brute_force_min_peak(ts)

    def test_literal_paper_mode_still_valid_fill(self, medium_synthetic_set):
        """account_base_toggles=False reproduces the paper's formulation; the
        fill is still a valid complete fill, just not necessarily optimal."""
        report = dp_fill(medium_synthetic_set, account_base_toggles=False)
        assert report.filled.is_fully_specified()
        optimal = dp_fill(medium_synthetic_set).peak_toggles
        assert report.peak_toggles >= optimal

    def test_interval_only_bound_matches_when_no_base_toggles(self):
        ts = cube_set_from_rows(["0XXX1", "1XXX0", "0XX1X"])
        literal = dp_fill(ts, account_base_toggles=False)
        exact = dp_fill(ts)
        assert literal.peak_toggles == exact.peak_toggles == brute_force_min_peak(ts)


class TestOptimalPeakEvaluator:
    def test_matches_full_dpfill(self, medium_synthetic_set):
        assert optimal_peak_for_ordering(medium_synthetic_set) == dp_fill(medium_synthetic_set).peak_toggles

    def test_trivial_sets(self):
        assert optimal_peak_for_ordering(TestSet([])) == 0
        assert optimal_peak_for_ordering(TestSet.from_strings(["0X"])) == 0


# -- property-based tests ------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dpfill_matches_brute_force_on_random_small_sets(seed):
    """DP-fill equals exhaustive search over all fills on small instances."""
    rng = np.random.default_rng(seed)
    ts = random_small_cube_set(rng)
    report = dp_fill(ts)
    assert report.peak_toggles == brute_force_min_peak(ts)


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dpfill_fill_is_always_consistent(seed):
    """Care bits preserved, no X left, reported profile equals recomputed profile."""
    rng = np.random.default_rng(seed)
    ts = random_small_cube_set(rng, max_patterns=8, max_pins=8, max_x=20)
    try:
        report = dp_fill(ts)
    except ValueError:
        raise AssertionError("dp_fill raised on a valid cube set")
    assert report.filled.is_fully_specified()
    specified = ts.matrix != X
    np.testing.assert_array_equal(report.filled.matrix[specified], ts.matrix[specified])
    np.testing.assert_array_equal(report.boundary_profile, toggle_profile(report.filled))


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    x_fraction=st.floats(min_value=0.1, max_value=0.9),
)
def test_dpfill_never_loses_to_baselines(seed, x_fraction):
    """On arbitrary synthetic sets DP-fill's peak is <= every baseline's peak."""
    ts = generate_cube_set(
        CubeSetSpec(n_pins=24, n_patterns=12, x_fraction=x_fraction, seed=seed)
    )
    optimal = dp_fill(ts).peak_toggles
    for name in ("0-fill", "1-fill", "MT-fill", "Adj-fill", "B-fill"):
        assert optimal <= get_filler(name).run(ts).peak_toggles
