"""Static analyzer tests (``repro.analysis``).

Covers the rule fixtures (one firing and one quiet module per rule under
``tests/analysis_fixtures/``), inline-suppression and baseline round
trips, the CLI contract (exit codes, JSON format), the acceptance
demonstrations — deleting a ``tail_mask`` application or adding an
undeclared ``REPRO_*`` read must make the pass fail — and the gate the
CI job enforces: ``src/`` analyzes to zero unsuppressed findings.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.core import fingerprint_of, iter_python_files, load_module

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "analysis_fixtures"


def analyze(*paths):
    return run_analysis([Path(p) for p in paths], ROOT)


def rules_in(report, filename):
    return {
        f.rule for f in report.findings if f.path.endswith(filename)
    }


@pytest.fixture(scope="module")
def fixture_report():
    return analyze(FIXTURES)


# -- per-rule fixtures: one positive, one negative each ----------------------
class TestRuleFixtures:
    @pytest.mark.parametrize(
        "bad,good,rule",
        [
            ("r1_unseeded.py", "r1_seeded.py", "R1"),
            ("r2_unmasked.py", "r2_masked.py", "R2"),
            ("r2_fault_tail_unmasked.py", "r2_fault_tail_masked.py", "R2"),
            ("r3_direct_read.py", "r3_registry.py", "R3"),
            ("r4_closure.py", "r4_module_level.py", "R4"),
            ("r5_rogue_counter.py", "r5_declared.py", "R5"),
            ("r6_swallow.py", "r6_visible.py", "R6"),
        ],
    )
    def test_rule_fires_and_stays_quiet(self, fixture_report, bad, good, rule):
        assert rule in rules_in(fixture_report, bad)
        assert rules_in(fixture_report, good) == set()

    def test_r1_catches_every_source_kind(self, fixture_report):
        messages = [
            f.message
            for f in fixture_report.findings
            if f.path.endswith("r1_unseeded.py")
        ]
        text = "\n".join(messages)
        assert "random.shuffle" in text
        assert "np.random.rand" in text
        assert "time.time" in text
        assert "uuid.uuid4" in text
        assert "os.urandom" in text
        assert "iteration over a set" in text

    def test_r2_catches_both_consumption_shapes(self, fixture_report):
        messages = [
            f.message
            for f in fixture_report.findings
            if f.path.endswith("r2_unmasked.py")
        ]
        assert any("without n_patterns" in m for m in messages)
        assert any("WORD_BITS" in m for m in messages)

    def test_r2_catches_fault_word_tail_lanes(self, fixture_report):
        messages = [
            f.message
            for f in fixture_report.findings
            if f.path.endswith("r2_fault_tail_unmasked.py")
        ]
        assert any("FAULT_WORD_LANES" in m for m in messages)
        assert any("fault_lane_mask" in m for m in messages)

    def test_r3_distinguishes_bypass_from_undeclared(self, fixture_report):
        messages = [
            f.message
            for f in fixture_report.findings
            if f.path.endswith("r3_direct_read.py")
        ]
        assert any("bypasses" in m for m in messages)
        assert any("not declared" in m for m in messages)

    def test_r6_documented_swallow_is_suppressed_not_dropped(self, fixture_report):
        suppressed = [
            f
            for f in fixture_report.suppressed
            if f.path.endswith("r6_visible.py") and f.rule == "R6"
        ]
        assert len(suppressed) == 1

    def test_findings_are_structured(self, fixture_report):
        finding = fixture_report.findings[0]
        payload = finding.as_dict()
        assert set(payload) == {"rule", "path", "line", "message", "fingerprint"}
        assert payload["line"] >= 1
        assert len(payload["fingerprint"]) == 16


# -- acceptance demonstrations ----------------------------------------------
class TestAcceptance:
    def test_src_is_clean(self):
        report = analyze(ROOT / "src")
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
        # The deliberate allows (uuid cache key, teardown closes, workload
        # cache) are visible as suppressions, not silently absent.
        assert len(report.suppressed) >= 4

    def test_deleting_tail_mask_fails_the_pass(self, tmp_path):
        """The real word-table consumer minus its tail_mask application."""
        source = (ROOT / "src" / "repro" / "engine" / "fault.py").read_text()
        assert "&= tail_mask(pattern_stop)" in source
        stripped = source.replace("valid[-1] &= tail_mask(pattern_stop)", "pass")
        # tail_mask must be gone from the consumer entirely (the import
        # alone does not mask anything, but it would satisfy a name scan).
        stripped = "\n".join(
            line
            for line in stripped.splitlines()
            if "tail_mask" not in line
        )
        target = tmp_path / "repro" / "engine" / "fault.py"
        target.parent.mkdir(parents=True)
        target.write_text(stripped)
        report = run_analysis([target], tmp_path)
        r2 = [f for f in report.findings if f.rule == "R2"]
        assert r2, "removing tail_mask from fault.py must trip R2"
        assert any("packed_first_detects_words" in f.message for f in r2)

    def test_undeclared_env_read_fails_the_pass(self, tmp_path):
        target = tmp_path / "repro" / "newmod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import os\n\n\ndef knob():\n"
            '    return os.getenv("REPRO_BRAND_NEW_KNOB")\n'
        )
        report = run_analysis([target], tmp_path)
        assert any(
            f.rule == "R3" and "REPRO_BRAND_NEW_KNOB" in f.message
            for f in report.findings
        )

    def test_rogue_counter_fails_the_pass(self, tmp_path):
        target = tmp_path / "repro" / "newmod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "from repro.obs import recorder as obs\n\n\ndef f():\n"
            '    obs.counter("cluster.brand_new_counter")\n'
        )
        report = run_analysis([target], tmp_path)
        assert any(f.rule == "R5" for f in report.findings)


# -- suppression and baseline round trips ------------------------------------
class TestSuppression:
    def _violating_module(self, tmp_path, comment=""):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "import os\n\n\ndef knob():\n"
            f'    return os.getenv("REPRO_NOPE"){comment}\n'
        )
        return target

    def test_inline_allow_suppresses(self, tmp_path):
        target = self._violating_module(
            tmp_path, comment="  # repro: allow[R3] fixture"
        )
        report = run_analysis([target], tmp_path)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["R3"]

    def test_allow_on_line_above(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import os\n\n\ndef knob():\n"
            "    # repro: allow[R3] reading around the registry on purpose\n"
            '    return os.getenv("REPRO_NOPE")\n'
        )
        report = run_analysis([target], tmp_path)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_wildcard_allow(self, tmp_path):
        target = self._violating_module(tmp_path, comment="  # repro: allow[*]")
        report = run_analysis([target], tmp_path)
        assert report.findings == []

    def test_allow_for_other_rule_does_not_suppress(self, tmp_path):
        target = self._violating_module(tmp_path, comment="  # repro: allow[R6]")
        report = run_analysis([target], tmp_path)
        assert [f.rule for f in report.findings] == ["R3"]

    def test_baseline_round_trip(self, tmp_path):
        target = self._violating_module(tmp_path)
        report = run_analysis([target], tmp_path)
        assert len(report.findings) == 1
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, report.findings)
        accepted = load_baseline(baseline)
        assert accepted == {f.fingerprint for f in report.findings}
        # Fingerprints are content-addressed: unrelated line shifts keep
        # them valid, editing the offending line invalidates them.
        fp = report.findings[0].fingerprint
        assert fp == fingerprint_of(
            "R3", report.findings[0].path, 'return os.getenv("REPRO_NOPE")'
        )

    def test_malformed_baseline_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"fingerprints": []}')
        with pytest.raises(ValueError, match="version-1"):
            load_baseline(bad)

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        report = run_analysis([target], tmp_path)
        assert [f.rule for f in report.findings] == ["parse"]


# -- CLI ---------------------------------------------------------------------
class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        code = analysis_main(["--root", str(ROOT), "src"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one_human(self, capsys):
        code = analysis_main(["--root", str(ROOT), "tests/analysis_fixtures"])
        out = capsys.readouterr().out
        assert code == 1
        assert "R1:" in out and "R6:" in out

    def test_json_format(self, capsys):
        code = analysis_main(
            ["--root", str(ROOT), "--format", "json", "tests/analysis_fixtures"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["files_checked"] >= 12
        rules = {f["rule"] for f in payload["findings"]}
        assert {"R1", "R2", "R3", "R4", "R5", "R6"} <= rules
        assert payload["suppressed"]

    def test_missing_path_exits_two(self, capsys):
        assert analysis_main(["--root", str(ROOT), "no/such/dir"]) == 2

    def test_write_baseline_then_accept(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = analysis_main(
            [
                "--root",
                str(ROOT),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "tests/analysis_fixtures",
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = analysis_main(
            [
                "--root",
                str(ROOT),
                "--baseline",
                str(baseline),
                "tests/analysis_fixtures",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "baselined" in out

    def test_missing_baseline_exits_two(self, tmp_path):
        code = analysis_main(
            [
                "--root",
                str(ROOT),
                "--baseline",
                str(tmp_path / "missing.json"),
                "src",
            ]
        )
        assert code == 2


# -- discovery ---------------------------------------------------------------
class TestDiscovery:
    def test_pycache_and_hidden_dirs_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "h.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["real.py"]

    def test_duplicate_paths_deduped(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        files = list(iter_python_files([tmp_path, target]))
        assert len(files) == 1

    def test_load_module_relpath_is_posix(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        target.parent.mkdir()
        target.write_text("x = 1\n")
        module, err = load_module(target, tmp_path)
        assert err is None
        assert module.relpath == "pkg/mod.py"
