"""Unit tests for interval extraction and fill reconstruction (paper §V-C/V-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.intervals import ToggleInterval, apply_assignment, extract_intervals
from repro.cubes.bits import ONE, X, ZERO
from repro.cubes.cube import TestSet
from tests.helpers import cube_set_from_rows


class TestToggleInterval:
    def test_length(self):
        interval = ToggleInterval(2, 5, row=0, left_col=2, right_col=6, left_value=0, right_value=1)
        assert interval.length == 4

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            ToggleInterval(5, 2, row=0, left_col=5, right_col=3, left_value=0, right_value=1)

    def test_equal_values_rejected(self):
        with pytest.raises(ValueError):
            ToggleInterval(0, 1, row=0, left_col=0, right_col=2, left_value=1, right_value=1)


class TestPreprocessing:
    def test_same_value_stretch_is_filled(self):
        ts = cube_set_from_rows(["0XX0"])
        result = extract_intervals(ts)
        assert result.intervals == []
        np.testing.assert_array_equal(result.prefilled[0], [0, 0, 0, 0])

    def test_one_stretch_same_value(self):
        ts = cube_set_from_rows(["1XXX1"])
        result = extract_intervals(ts)
        assert result.intervals == []
        np.testing.assert_array_equal(result.prefilled[0], [1, 1, 1, 1, 1])

    def test_leading_and_trailing_x_runs(self):
        ts = cube_set_from_rows(["XX1X0XX"])
        result = extract_intervals(ts)
        # Leading Xs copy the 1, trailing Xs copy the 0; the 1X0 gap forms one interval.
        assert len(result.intervals) == 1
        assert result.prefilled[0, 0] == 1 and result.prefilled[0, 1] == 1
        assert result.prefilled[0, 5] == 0 and result.prefilled[0, 6] == 0

    def test_all_x_row_filled_with_zero(self):
        ts = cube_set_from_rows(["XXXX"])
        result = extract_intervals(ts)
        assert result.intervals == []
        np.testing.assert_array_equal(result.prefilled[0], [0, 0, 0, 0])

    def test_adjacent_conflict_counts_as_base_toggle(self):
        ts = cube_set_from_rows(["0110"])
        result = extract_intervals(ts)
        np.testing.assert_array_equal(result.base_toggles, [1, 0, 1])
        assert result.base_peak == 1
        assert result.intervals == []


class TestIntervalCreation:
    def test_zero_to_one_stretch(self):
        ts = cube_set_from_rows(["0XXX1"])
        result = extract_intervals(ts)
        assert len(result.intervals) == 1
        interval = result.intervals[0]
        assert (interval.start, interval.end) == (0, 3)
        assert (interval.left_value, interval.right_value) == (ZERO, ONE)

    def test_one_to_zero_stretch(self):
        ts = cube_set_from_rows(["1XX0"])
        result = extract_intervals(ts)
        interval = result.intervals[0]
        assert (interval.start, interval.end) == (0, 2)
        assert (interval.left_value, interval.right_value) == (ONE, ZERO)

    def test_adjacent_transition_without_x_is_base_not_interval(self):
        ts = cube_set_from_rows(["01"])
        result = extract_intervals(ts)
        assert result.intervals == []
        np.testing.assert_array_equal(result.base_toggles, [1])

    def test_multiple_rows_and_intervals(self):
        ts = cube_set_from_rows([
            "0XX1X0",   # intervals (0,2) and (3,4)
            "1XXXX1",   # preprocessing fill, no interval
            "0101XX",   # base toggles at 0,1,2; trailing fill
        ])
        result = extract_intervals(ts)
        spans = sorted((iv.start, iv.end) for iv in result.intervals)
        assert spans == [(0, 2), (3, 4)]
        np.testing.assert_array_equal(result.base_toggles, [1, 1, 1, 0, 0])

    def test_interval_rows_recorded(self):
        ts = cube_set_from_rows(["0000", "0XX1"])
        result = extract_intervals(ts)
        assert result.intervals[0].row == 1

    def test_prefilled_keeps_x_only_inside_intervals(self):
        ts = cube_set_from_rows(["0X1XX0X1"])
        result = extract_intervals(ts)
        x_positions = set(zip(*np.nonzero(result.prefilled == X)))
        for row, col in x_positions:
            assert any(
                iv.row == row and iv.left_col < col < iv.right_col for iv in result.intervals
            )

    def test_empty_and_single_pattern_sets(self):
        empty = TestSet([])
        result = extract_intervals(empty)
        assert result.n_boundaries == 0 and result.intervals == []
        single = TestSet.from_strings(["0X1"])
        result = extract_intervals(single)
        assert result.n_boundaries == 0 and result.intervals == []


class TestApplyAssignment:
    def test_reconstruction_places_single_toggle(self):
        ts = cube_set_from_rows(["0XXX1"])
        result = extract_intervals(ts)
        for color in range(0, 4):
            filled = apply_assignment(result, np.array([color]))
            row = filled[0]
            assert not (row == X).any()
            # Exactly one toggle, at boundary `color`.
            toggles = np.nonzero(row[1:] != row[:-1])[0]
            np.testing.assert_array_equal(toggles, [color])

    def test_out_of_window_colour_rejected(self):
        ts = cube_set_from_rows(["0XXX1"])
        result = extract_intervals(ts)
        with pytest.raises(ValueError):
            apply_assignment(result, np.array([4]))

    def test_wrong_number_of_colours_rejected(self):
        ts = cube_set_from_rows(["0XXX1"])
        result = extract_intervals(ts)
        with pytest.raises(ValueError):
            apply_assignment(result, np.array([], dtype=np.int64))

    def test_care_bits_never_modified(self):
        ts = cube_set_from_rows(["0X1X0", "1XXX0"])
        result = extract_intervals(ts)
        colors = np.array([iv.start for iv in result.intervals])
        filled = apply_assignment(result, colors)
        original = ts.pin_matrix()
        specified = original != X
        np.testing.assert_array_equal(filled[specified], original[specified])
