"""Unit tests for the baseline X-filling algorithms and the filler registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cubes.bits import ONE, X, ZERO
from repro.cubes.cube import TestSet
from repro.cubes.generator import CubeSetSpec, generate_cube_set
from repro.cubes.metrics import peak_toggles
from repro.filling import (
    AdjacentFill,
    DPFill,
    MinimumTransitionFill,
    OneFill,
    RandomFill,
    XStatFill,
    ZeroFill,
    available_fillers,
    get_filler,
)
from repro.filling.base import register_filler
from tests.helpers import cube_set_from_rows

ALL_FILLERS = ["0-fill", "1-fill", "R-fill", "MT-fill", "Adj-fill", "B-fill", "DP-fill"]


class TestRegistry:
    def test_all_paper_fillers_available(self):
        names = available_fillers()
        for required in ("0-fill", "1-fill", "r-fill", "mt-fill", "adj-fill", "b-fill", "dp-fill"):
            assert required in names

    def test_lookup_is_case_and_format_insensitive(self):
        assert isinstance(get_filler("dp_fill"), DPFill)
        assert isinstance(get_filler("B-Fill"), XStatFill)
        assert isinstance(get_filler("xstat"), XStatFill)

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="available"):
            get_filler("no-such-fill")

    def test_kwargs_forwarded(self):
        filler = get_filler("r-fill", seed=42)
        assert isinstance(filler, RandomFill) and filler.seed == 42

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError):
            register_filler("0-fill", OneFill)


@pytest.mark.parametrize("name", ALL_FILLERS)
class TestFillContract:
    """Every filler must produce a complete fill that preserves care bits."""

    def test_contract_on_synthetic_set(self, name, medium_synthetic_set):
        filled = get_filler(name).fill(medium_synthetic_set)
        assert filled.is_fully_specified()
        original = medium_synthetic_set.matrix
        specified = original != X
        np.testing.assert_array_equal(filled.matrix[specified], original[specified])

    def test_contract_on_edge_cases(self, name):
        filler = get_filler(name)
        for strings in (["XXXX"], ["0101"], ["XXXX", "XXXX"], ["X", "X", "X"]):
            filled = filler.fill(TestSet.from_strings(strings))
            assert filled.is_fully_specified()

    def test_run_reports_consistent_metrics(self, name, medium_synthetic_set):
        outcome = get_filler(name).run(medium_synthetic_set)
        assert outcome.peak_toggles == peak_toggles(outcome.filled)
        assert outcome.filler_name == get_filler(name).name


class TestConstantFills:
    def test_zero_fill(self):
        filled = ZeroFill().fill(TestSet.from_strings(["0X1X"]))
        assert filled.to_strings() == ["0010"]

    def test_one_fill(self):
        filled = OneFill().fill(TestSet.from_strings(["0X1X"]))
        assert filled.to_strings() == ["0111"]

    def test_random_fill_deterministic_per_seed(self, medium_synthetic_set):
        a = RandomFill(seed=3).fill(medium_synthetic_set)
        b = RandomFill(seed=3).fill(medium_synthetic_set)
        c = RandomFill(seed=4).fill(medium_synthetic_set)
        assert a == b
        assert a != c


class TestMinimumTransitionFill:
    def test_copies_previous_value_within_pattern(self):
        filled = MinimumTransitionFill().fill(TestSet.from_strings(["0XX1X"]))
        assert filled.to_strings() == ["00011"]

    def test_leading_x_takes_first_care_bit(self):
        filled = MinimumTransitionFill().fill(TestSet.from_strings(["XX1X0"]))
        assert filled.to_strings() == ["11110"]

    def test_all_x_pattern_becomes_zero(self):
        filled = MinimumTransitionFill().fill(TestSet.from_strings(["XXX"]))
        assert filled.to_strings() == ["000"]

    def test_minimises_intra_pattern_transitions(self):
        ts = TestSet.from_strings(["0XXXXX1"])
        filled = MinimumTransitionFill().fill(ts)
        bits = filled.matrix[0]
        transitions = int(np.count_nonzero(bits[1:] != bits[:-1]))
        assert transitions == 1


class TestAdjacentFill:
    def test_copies_previous_pattern(self):
        ts = TestSet.from_strings(["01", "XX", "X0"])
        filled = AdjacentFill().fill(ts)
        assert filled.to_strings() == ["01", "01", "00"]

    def test_first_pattern_fill_value(self):
        ts = TestSet.from_strings(["XX", "1X"])
        assert AdjacentFill(first_pattern_fill=ONE).fill(ts).to_strings() == ["11", "11"]
        assert AdjacentFill(first_pattern_fill=ZERO).fill(ts).to_strings() == ["00", "10"]

    def test_invalid_first_fill_rejected(self):
        with pytest.raises(ValueError):
            AdjacentFill(first_pattern_fill=2)

    def test_no_toggle_when_column_all_x_after_first(self):
        ts = TestSet.from_strings(["1X", "XX", "XX"])
        filled = AdjacentFill().fill(ts)
        column = filled.matrix[:, 0]
        assert (column == column[0]).all()


class TestXStatFill:
    def test_squeeze_modes(self):
        ts = cube_set_from_rows(["0XXXX1"])
        for mode in ("left", "middle", "right"):
            filled = XStatFill(squeeze=mode).fill(ts)
            row = filled.pin_matrix()[0]
            assert int(np.count_nonzero(row[1:] != row[:-1])) == 1

    def test_invalid_squeeze_rejected(self):
        with pytest.raises(ValueError):
            XStatFill(squeeze="top")

    def test_same_value_stretch_has_no_toggle(self):
        filled = XStatFill().fill(cube_set_from_rows(["1XXX1"]))
        row = filled.pin_matrix()[0]
        np.testing.assert_array_equal(row, [1, 1, 1, 1, 1])

    def test_phase2_balances_boundaries(self):
        # Two 0X1 stretches sharing candidate boundaries: the greedy must not
        # stack both toggles on the same boundary.
        ts = cube_set_from_rows(["0X1", "0X1"])
        filled = XStatFill().fill(ts)
        profile = np.count_nonzero(
            filled.matrix[1:] != filled.matrix[:-1], axis=1
        )
        assert int(profile.max()) == 1

    def test_is_weaker_than_dpfill_on_motivating_example(self, paper_motivation_set):
        """The paper's Fig. 1 point: the greedy two-phase fill can be beaten."""
        xstat_peak = XStatFill().run(paper_motivation_set).peak_toggles
        dp_peak = DPFill().run(paper_motivation_set).peak_toggles
        assert dp_peak <= xstat_peak


class TestDPFillWrapper:
    def test_matches_core_dpfill(self, medium_synthetic_set):
        from repro.core.dpfill import dp_fill

        wrapper_peak = DPFill().run(medium_synthetic_set).peak_toggles
        assert wrapper_peak == dp_fill(medium_synthetic_set).peak_toggles

    def test_literal_mode_flag(self, medium_synthetic_set):
        literal = DPFill(account_base_toggles=False).run(medium_synthetic_set)
        exact = DPFill().run(medium_synthetic_set)
        assert exact.peak_toggles <= literal.peak_toggles


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    x_fraction=st.floats(min_value=0.2, max_value=0.9),
)
def test_every_filler_preserves_care_bits(seed, x_fraction):
    """Property: all fillers satisfy the fill contract on random sets."""
    ts = generate_cube_set(CubeSetSpec(n_pins=16, n_patterns=8, x_fraction=x_fraction, seed=seed))
    specified = ts.matrix != X
    for name in ALL_FILLERS:
        filled = get_filler(name).fill(ts)
        assert filled.is_fully_specified()
        np.testing.assert_array_equal(filled.matrix[specified], ts.matrix[specified])
