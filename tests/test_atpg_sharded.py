"""Sharded ATPG determinism: cube generation must be jobs-invariant.

``generate_test_cubes`` may fan the per-fault PODEM runs out across the
shared worker pool; the contract is that the full :class:`ATPGResult` —
cube matrix, cube names/order, fault->cube-index map, untestable/aborted
classification — is *byte-identical* for every ``jobs`` value, under the
sharded backend, and on the inline-fallback path when no pool can be used.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.podem import PodemEngine
from repro.atpg.tpg import _podem_scheduler, generate_test_cubes
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm, c17
from repro.engine.backend import get_backend
from repro.engine.sharded import ShardedPodemScheduler
import repro.engine.sharded as sharded_module


#: The medium circuit's ATPG knobs, shared by baseline and sharded runs (the
#: fault cap keeps the many full-driver runs of this module fast while still
#: spanning several scheduler chunks).
MEDIUM_KWARGS = dict(max_faults=90, backtrack_limit=20, seed=2)


def _medium_circuit():
    return generate_circuit(CircuitSpec("atpg_med", 10, 14, 260, seed=3))


@pytest.fixture(scope="module")
def medium_circuit():
    return _medium_circuit()


@pytest.fixture(scope="module")
def medium_baseline(medium_circuit):
    """One serial reference run every jobs variant is compared against."""
    return generate_test_cubes(medium_circuit, **MEDIUM_KWARGS)


def _assert_same_atpg(a, b, context=""):
    assert np.array_equal(a.cubes.matrix, b.cubes.matrix), context
    assert a.cubes.names == b.cubes.names, context
    assert list(a.detected_faults.items()) == list(b.detected_faults.items()), context
    assert a.untestable_faults == b.untestable_faults, context
    assert a.aborted_faults == b.aborted_faults, context
    assert a.total_faults == b.total_faults, context


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_same_result_for_any_job_count(self, jobs, medium_circuit, medium_baseline):
        result = generate_test_cubes(medium_circuit, jobs=jobs, **MEDIUM_KWARGS)
        _assert_same_atpg(medium_baseline, result, jobs)

    def test_sharded_backend_matches_packed(self, medium_circuit, medium_baseline):
        result = generate_test_cubes(
            medium_circuit, backend="sharded", jobs=2, **MEDIUM_KWARGS
        )
        _assert_same_atpg(medium_baseline, result, "sharded backend")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_max_patterns_cap_is_jobs_invariant(self, jobs, medium_circuit):
        baseline = generate_test_cubes(
            medium_circuit, seed=5, max_faults=90, max_patterns=6
        )
        result = generate_test_cubes(
            medium_circuit, seed=5, max_faults=90, max_patterns=6, jobs=jobs
        )
        _assert_same_atpg(baseline, result, jobs)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_no_dropping_is_jobs_invariant(self, jobs, medium_circuit):
        baseline = generate_test_cubes(
            medium_circuit, seed=1, max_faults=90, drop_with_fault_sim=False
        )
        result = generate_test_cubes(
            medium_circuit, seed=1, max_faults=90, drop_with_fault_sim=False, jobs=jobs
        )
        _assert_same_atpg(baseline, result, jobs)

    def test_dict_mode_ignores_jobs(self):
        """The dict reference has no sharded path; jobs must not change it."""
        circuit = b01_like_fsm()
        baseline = generate_test_cubes(circuit, seed=2, atpg_mode="dict")
        result = generate_test_cubes(circuit, seed=2, atpg_mode="dict", jobs=4)
        _assert_same_atpg(baseline, result, "dict mode")


class TestInlineFallback:
    def test_pool_unavailable_falls_back_inline(
        self, monkeypatch, medium_circuit, medium_baseline
    ):
        """With no pool the scheduler runs the same engine in process."""
        monkeypatch.setattr(sharded_module, "worker_pool", lambda jobs: None)
        result = generate_test_cubes(medium_circuit, jobs=4, **MEDIUM_KWARGS)
        _assert_same_atpg(medium_baseline, result, "inline fallback")

    def test_scheduler_inline_fetch_matches_engine(self, monkeypatch):
        monkeypatch.setattr(sharded_module, "worker_pool", lambda jobs: None)
        circuit = b01_like_fsm()
        program = get_backend("packed").compiled_program(circuit)
        faults = collapse_faults(circuit)
        scheduler = ShardedPodemScheduler(
            program,
            sites=[program.net_index[f.net] for f in faults],
            stuck_values=[f.stuck_value for f in faults],
            backtrack_limit=100,
            jobs=4,
        )
        assert not scheduler.pooled
        assert scheduler.stats["mode"] == "inline"
        engine = PodemEngine(circuit, mode="compiled")
        for index, fault in enumerate(faults):
            expected = engine.generate(fault)
            status, bits, backtracks, decisions = scheduler.fetch(index)
            assert status == expected.status, fault
            assert backtracks == expected.backtracks, fault
            if expected.detected:
                assert list(bits) == list(expected.cube.bits), fault


class TestSchedulerMachinery:
    def test_scheduler_not_built_for_serial_cases(self):
        circuit = c17()
        engine = PodemEngine(circuit, mode="compiled")
        faults = collapse_faults(circuit)
        assert _podem_scheduler(engine, faults, jobs=1) is None
        # Tiny fault lists (c17's 16 faults are below the minimum-work
        # threshold) always generate inline: pooling could not amortise.
        assert _podem_scheduler(engine, faults, jobs=4) is None
        dict_engine = PodemEngine(circuit, mode="dict")
        assert _podem_scheduler(dict_engine, faults, jobs=4) is None

    def test_scheduler_rejects_bad_jobs(self):
        circuit = c17()
        engine = PodemEngine(circuit, mode="compiled")
        faults = collapse_faults(circuit)
        with pytest.raises(ValueError):
            _podem_scheduler(engine, faults, jobs=0)
        with pytest.raises(ValueError):
            _podem_scheduler(engine, faults, jobs="three")

    def test_drop_broadcast_skips_submissions(self, monkeypatch):
        """Dropped faults submitted later are omitted from their chunks."""
        monkeypatch.setattr(sharded_module, "worker_pool", lambda jobs: None)
        circuit = b01_like_fsm()
        program = get_backend("packed").compiled_program(circuit)
        faults = collapse_faults(circuit)
        scheduler = ShardedPodemScheduler(
            program,
            sites=[program.net_index[f.net] for f in faults],
            stuck_values=[f.stuck_value for f in faults],
            backtrack_limit=100,
            jobs=2,
        )
        # Inline mode: drops simply mean the index is never fetched.
        scheduler.drop(1)
        status, _, _, _ = scheduler.fetch(0)
        assert status in ("detected", "untestable", "aborted")
        assert 1 in scheduler._dropped
