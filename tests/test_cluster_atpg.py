"""Cluster ATPG determinism: cube generation over any transport.

``generate_test_cubes`` under the cluster backend fans per-fault PODEM runs
over the resolved transport; the contract is the sharded suite's, extended
across transports: the full :class:`~repro.atpg.tpg.ATPGResult` — cube
matrix, cube names/order, fault->cube-index map, untestable/aborted
classification — is *byte-identical* to a serial run for every transport,
worker count, arrival order and injected failure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.podem import PodemEngine
from repro.atpg.tpg import _podem_scheduler, generate_test_cubes
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm
from repro.cluster import (
    ClusterPodemScheduler,
    LocalTransport,
    QueueTransport,
    set_default_transport,
)
from repro.engine.backend import get_backend

MEDIUM_KWARGS = dict(max_faults=90, backtrack_limit=20, seed=2)


@pytest.fixture(scope="module")
def medium_circuit():
    return generate_circuit(CircuitSpec("cluster_atpg_med", 10, 14, 260, seed=3))


@pytest.fixture(scope="module")
def medium_baseline(medium_circuit):
    """One serial reference run every transport variant is compared against."""
    return generate_test_cubes(medium_circuit, **MEDIUM_KWARGS)


@pytest.fixture
def local_default_transport():
    previous = set_default_transport("local")
    yield
    set_default_transport(previous)


def _assert_same_atpg(a, b, context=""):
    assert np.array_equal(a.cubes.matrix, b.cubes.matrix), context
    assert a.cubes.names == b.cubes.names, context
    assert list(a.detected_faults.items()) == list(b.detected_faults.items()), context
    assert a.untestable_faults == b.untestable_faults, context
    assert a.aborted_faults == b.aborted_faults, context
    assert a.total_faults == b.total_faults, context


class TestTransportInvariance:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_local_transport_matches_serial(
        self, jobs, medium_circuit, medium_baseline, local_default_transport
    ):
        result = generate_test_cubes(
            medium_circuit, backend="cluster", jobs=jobs, **MEDIUM_KWARGS
        )
        _assert_same_atpg(medium_baseline, result, f"local jobs={jobs}")

    def test_mp_transport_matches_serial(self, medium_circuit, medium_baseline):
        result = generate_test_cubes(
            medium_circuit, backend="cluster", jobs=2, **MEDIUM_KWARGS
        )
        _assert_same_atpg(medium_baseline, result, "mp transport")

    def test_queue_transport_matches_serial(self, medium_circuit, medium_baseline):
        transport = QueueTransport(workers=2, jobs=2, lease_timeout=5.0, poll_interval=0.01)
        try:
            program = get_backend("cluster").compiled_program(medium_circuit)
            # Drive the scheduler surface directly so the queue transport
            # instance (with test-friendly timeouts) is the one used.
            engine = PodemEngine(medium_circuit, backtrack_limit=20, mode="compiled")
            faults = collapse_faults(medium_circuit)
            stride = len(faults) / 90
            faults = [faults[int(i * stride)] for i in range(90)]
            scheduler = ClusterPodemScheduler(
                program,
                sites=[program.net_index[f.net] for f in faults],
                stuck_values=[f.stuck_value for f in faults],
                backtrack_limit=20,
                transport=transport,
                jobs=2,
            )
            assert scheduler.pooled
            assert scheduler.stats["transport"] == "queue"
            for index, fault in enumerate(faults):
                expected = engine.generate(fault)
                status, bits, backtracks, decisions = scheduler.fetch(index)
                assert status == expected.status, fault
                assert backtracks == expected.backtracks, fault
                assert decisions == expected.decisions, fault
                if expected.detected:
                    assert list(bits) == list(expected.cube.bits), fault
        finally:
            transport.close()


class TestSchedulerMachinery:
    def test_cluster_backend_engages_scheduler(self, medium_circuit, local_default_transport):
        engine = PodemEngine(medium_circuit, backend="cluster", mode="compiled")
        faults = collapse_faults(medium_circuit)
        scheduler = _podem_scheduler(engine, faults, jobs=2)
        assert isinstance(scheduler, ClusterPodemScheduler)
        assert scheduler.stats["mode"] == "cluster"
        assert scheduler.stats["transport"] == "local"

    def test_drop_broadcast_skips_submissions(self, medium_circuit):
        program = get_backend("cluster").compiled_program(medium_circuit)
        faults = collapse_faults(medium_circuit)
        scheduler = ClusterPodemScheduler(
            program,
            sites=[program.net_index[f.net] for f in faults],
            stuck_values=[f.stuck_value for f in faults],
            backtrack_limit=20,
            transport=LocalTransport(),
            jobs=2,
        )
        assert scheduler.pooled
        # Drop a fault owed by a later chunk, then force every chunk through.
        drop_index = len(faults) - 1
        scheduler.drop(drop_index)
        for index in range(len(faults) - 1):
            scheduler.fetch(index)
        assert scheduler.stats["dropped_submissions"] >= 1

    def test_transport_failure_degrades_inline(self, medium_circuit, medium_baseline):
        class ExplodingTransport(LocalTransport):
            def next_result(self, timeout=30.0):
                raise RuntimeError("transport lost")

        program = get_backend("cluster").compiled_program(medium_circuit)
        faults = collapse_faults(medium_circuit)
        stride = len(faults) / 90
        faults = [faults[int(i * stride)] for i in range(90)]
        scheduler = ClusterPodemScheduler(
            program,
            sites=[program.net_index[f.net] for f in faults],
            stuck_values=[f.stuck_value for f in faults],
            backtrack_limit=20,
            transport=ExplodingTransport(),
            jobs=2,
        )
        assert scheduler.pooled
        engine = PodemEngine(medium_circuit, backtrack_limit=20, mode="compiled")
        for index, fault in enumerate(faults):
            expected = engine.generate(fault)
            status, bits, backtracks, _ = scheduler.fetch(index)
            assert status == expected.status, fault
            assert backtracks == expected.backtracks, fault
        assert scheduler.stats["mode"] == "inline"
        assert not scheduler.pooled

    def test_dict_mode_never_schedules(self):
        circuit = b01_like_fsm()
        engine = PodemEngine(circuit, mode="dict")
        faults = collapse_faults(circuit)
        assert _podem_scheduler(engine, faults, jobs=4) is None
