"""Tests for the compiled bit-packed simulation engine (``repro.engine``).

The contract under test is *bit-for-bit parity*: on any circuit and any
fully specified pattern set, the packed backend must produce exactly the
same net values, fault-detection maps (including first-detecting pattern
indices) and power figures as the naive reference implementation — across
both packed execution strategies and including pattern counts that are not
a multiple of the 64-bit word size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import StuckAtFault, full_fault_list
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm, c17
from repro.circuit.simulator import LogicSimulator
from repro.cubes.cube import TestSet
from repro.engine import (
    DROP_BLOCK_PATTERNS,
    FAULT_MODE_ENV_VAR,
    LANE_MODE_MAX_PATTERNS,
    NaiveFaultSimulator,
    PackedFaultSimulator,
    PackedLogicSimulator,
    ShardedFaultSimulator,
    SimulationBackend,
    available_backends,
    compile_circuit,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_fault_mode,
    set_default_backend,
)
from repro.engine.backend import BACKEND_ENV_VAR, _REGISTRY
from repro.engine.packed import (
    evaluate_words,
    pack_patterns,
    tail_mask,
    unpack_values,
)
from repro.power.estimator import PowerEstimator

def all_gate_types_circuit():
    """A hand-built circuit containing every opcode the engine dispatches.

    The random generator never emits CONST gates and c17 is NAND-only, so
    this is the circuit that catches a divergent opcode among the three
    dispatch sites (``evaluate_lanes``, ``evaluate_words`` and the inline
    cone interpreter in ``PackedFaultSimulator``).
    """
    from repro.circuit.gates import GateType
    from repro.circuit.netlist import Circuit

    circuit = Circuit("all_gates")
    for i in range(4):
        circuit.add_input(f"i{i}")
    circuit.add_gate("c0", GateType.CONST0, [])
    circuit.add_gate("c1", GateType.CONST1, [])
    circuit.add_gate("buf", GateType.BUF, ["i0"])
    circuit.add_gate("inv", GateType.NOT, ["i1"])
    circuit.add_gate("and2", GateType.AND, ["i0", "i1"])
    circuit.add_gate("and3", GateType.AND, ["i0", "i1", "i2"])
    circuit.add_gate("nand2", GateType.NAND, ["and2", "i3"])
    circuit.add_gate("or3", GateType.OR, ["buf", "inv", "c0"])
    circuit.add_gate("nor2", GateType.NOR, ["i2", "i3"])
    circuit.add_gate("xor3", GateType.XOR, ["i0", "i1", "i2"])
    circuit.add_gate("xnor2", GateType.XNOR, ["xor3", "c1"])
    circuit.add_gate("ff", GateType.DFF, ["xnor2"])
    circuit.add_gate("mix", GateType.AND, ["ff", "nor2", "nand2", "and3"])
    circuit.add_output("mix")
    circuit.add_output("or3")
    circuit.validate()
    return circuit


#: Circuits exercising every structural feature: flip-flops, fanout, depth,
#: and (via all_gate_types_circuit) every opcode including constants.
CIRCUITS = [
    pytest.param(all_gate_types_circuit, id="all_gate_types"),
    pytest.param(lambda: c17(), id="c17"),
    pytest.param(lambda: b01_like_fsm(), id="b01_fsm"),
    pytest.param(
        lambda: generate_circuit(CircuitSpec("rand_small", 6, 4, 60, seed=11)),
        id="rand_small",
    ),
    pytest.param(
        lambda: generate_circuit(CircuitSpec("rand_medium", 12, 20, 400, seed=5)),
        id="rand_medium",
    ),
    pytest.param(
        lambda: generate_circuit(CircuitSpec("rand_no_ff", 10, 0, 150, seed=3)),
        id="rand_no_ff",
    ),
]

#: Pattern counts straddling the 64-bit word boundary (the packed engine's
#: natural edge) plus the single-pattern and multi-word cases.
PATTERN_COUNTS = [1, 7, 63, 64, 65, 130]


def _random_patterns(circuit, n_patterns: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n_patterns, circuit.n_test_pins)).astype(np.int8)


class TestCompile:
    def test_row_order_matches_naive_simulator(self):
        circuit = c17()
        program = compile_circuit(circuit)
        naive_order = list(LogicSimulator(circuit).simulate(_random_patterns(circuit, 2)))
        assert program.net_names == naive_order
        assert program.n_inputs == circuit.n_test_pins

    def test_output_rows_follow_combinational_outputs(self):
        circuit = b01_like_fsm()
        program = compile_circuit(circuit)
        names = [program.net_names[row] for row in program.output_rows]
        assert names == circuit.combinational_outputs

    def test_cone_is_topological_and_cached(self):
        circuit = c17()
        program = compile_circuit(circuit)
        row = program.net_index["G11"]
        cone = program.cone(row)
        assert list(cone.positions) == sorted(cone.positions)
        assert program.cone(row) is cone  # cached

    def test_pack_unpack_roundtrip_odd_width(self):
        rng = np.random.default_rng(2)
        matrix = rng.integers(0, 2, size=(130, 9)).astype(bool)
        words = pack_patterns(matrix)
        assert words.dtype == np.uint64 and words.shape == (9, 3)
        assert np.array_equal(unpack_values(words, 130), matrix.T)


class TestLogicParity:
    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    @pytest.mark.parametrize("n_patterns", PATTERN_COUNTS)
    @pytest.mark.parametrize("mode", ["lanes", "words"])
    def test_simulate_matches_naive(self, make_circuit, n_patterns, mode):
        circuit = make_circuit()
        patterns = _random_patterns(circuit, n_patterns, seed=n_patterns)
        naive = LogicSimulator(circuit).simulate(patterns)
        packed = PackedLogicSimulator(circuit, mode=mode).simulate(patterns)
        assert list(naive) == list(packed)  # same nets, same order
        for net in naive:
            assert np.array_equal(naive[net], packed[net]), net

    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    def test_observe_outputs_and_activity_match(self, make_circuit):
        circuit = make_circuit()
        patterns = _random_patterns(circuit, 65, seed=1)
        naive = LogicSimulator(circuit)
        packed = PackedLogicSimulator(circuit)
        assert np.array_equal(
            naive.observe_outputs(patterns), packed.observe_outputs(patterns)
        )
        act_naive = naive.gate_activity(patterns)
        act_packed = packed.gate_activity(patterns)
        assert list(act_naive) == list(act_packed)
        for net in act_naive:
            assert np.array_equal(act_naive[net], act_packed[net]), net

    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    def test_net_value_matrix_parity(self, make_circuit):
        circuit = make_circuit()
        patterns = _random_patterns(circuit, 66, seed=4)
        nets_a, matrix_a = LogicSimulator(circuit).net_value_matrix(patterns)
        nets_b, matrix_b = PackedLogicSimulator(circuit).net_value_matrix(patterns)
        assert nets_a == nets_b
        assert np.array_equal(matrix_a, matrix_b)

    def test_rejects_partially_specified_patterns(self):
        circuit = c17()
        with pytest.raises(ValueError, match="fully specified"):
            PackedLogicSimulator(circuit).simulate(
                np.full((3, circuit.n_test_pins), 2, dtype=np.int8)
            )

    def test_rejects_wrong_width(self):
        circuit = c17()
        with pytest.raises(ValueError, match="shape"):
            PackedLogicSimulator(circuit).simulate(np.zeros((3, 99), dtype=np.int8))

    def test_zero_patterns(self):
        circuit = c17()
        values = PackedLogicSimulator(circuit).simulate(
            np.zeros((0, circuit.n_test_pins), dtype=np.int8)
        )
        assert all(arr.shape == (0,) for arr in values.values())


class TestTailMasking:
    """No word-table consumer may ever read the garbage tail of a last word."""

    def test_tail_mask_values(self):
        assert int(tail_mask(1)) == 1
        assert int(tail_mask(63)) == (1 << 63) - 1
        assert int(tail_mask(64)) == (1 << 64) - 1
        assert int(tail_mask(65)) == 1
        assert int(tail_mask(130)) == 3

    @pytest.mark.parametrize("n_patterns", [1, 63, 65, 130])
    def test_evaluate_words_zeroes_tail_bits(self, n_patterns):
        # all_gate_types_circuit is full of inverting ops, which complement
        # all 64 bits of a word — exactly the producers of tail garbage.
        circuit = all_gate_types_circuit()
        matrix = _random_patterns(circuit, n_patterns, seed=3).astype(bool)
        table = evaluate_words(compile_circuit(circuit), pack_patterns(matrix), n_patterns)
        beyond = ~np.uint64(tail_mask(n_patterns))
        assert not np.any(table[:, -1] & beyond)

    def test_unpack_values_masks_unsanitised_tables(self):
        # Even a table that somehow kept its garbage unpacks clean.
        dirty = np.full((3, 2), np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        values = unpack_values(dirty, 70)
        assert values.shape == (3, 70)
        assert values.all()
        assert np.array_equal(dirty, np.full((3, 2), np.uint64(0xFFFFFFFFFFFFFFFF)))


class TestFaultModes:
    """Lane- and word-mode grading must be bit-identical on every backend.

    Pattern counts cover the word-boundary edges (1, 63, 64, 65) and a
    multi-word count past the auto-mode crossover (4097), where tail-bit
    handling and the words path actually engage.
    """

    #: Small circuits keep the 4097-pattern naive reference affordable.
    MODE_CIRCUITS = [
        pytest.param(lambda: c17(), id="c17"),
        pytest.param(
            lambda: generate_circuit(CircuitSpec("rand_small", 6, 4, 60, seed=11)),
            id="rand_small",
        ),
    ]

    @pytest.mark.parametrize("make_circuit", MODE_CIRCUITS)
    @pytest.mark.parametrize("n_patterns", [1, 63, 64, 65, 4097])
    def test_all_backends_and_modes_bit_identical(self, make_circuit, n_patterns):
        circuit = make_circuit()
        patterns = TestSet.from_matrix(
            _random_patterns(circuit, n_patterns, seed=n_patterns)
        )
        faults = full_fault_list(circuit)
        reference = NaiveFaultSimulator(circuit).run(patterns, faults)
        results = {}
        for mode in ("lanes", "words", "faults"):
            results[f"packed-{mode}"] = PackedFaultSimulator(circuit, mode=mode).run(
                patterns, faults
            )
            results[f"sharded-{mode}"] = ShardedFaultSimulator(
                circuit, jobs=2, min_chunk_faults=2, chunks_per_worker=2, mode=mode
            ).run(patterns, faults)
        for key, result in results.items():
            assert (
                list(result.detected.items()) == list(reference.detected.items())
            ), (key, n_patterns)
            assert result.undetected == reference.undetected, (key, n_patterns)

    def test_auto_mode_switches_at_lane_threshold(self):
        circuit = c17()
        simulator = PackedFaultSimulator(circuit, mode="auto")
        faults = full_fault_list(circuit)
        narrow = TestSet.from_matrix(_random_patterns(circuit, 70, seed=0))
        simulator.run(narrow, faults)
        assert simulator.last_run_stats["fault_mode"] == "lanes"
        wide = TestSet.from_matrix(
            _random_patterns(circuit, LANE_MODE_MAX_PATTERNS + 1, seed=0)
        )
        simulator.run(wide, faults)
        assert simulator.last_run_stats["fault_mode"] == "words"

    def test_words_mode_drops_across_blocks(self):
        # Word-mode dropping must skip cone work, like the lanes path does.
        circuit = generate_circuit(CircuitSpec("word_drop", 8, 6, 120, seed=1))
        patterns = TestSet.from_matrix(_random_patterns(circuit, 300, seed=1))
        faults = full_fault_list(circuit)
        simulator = PackedFaultSimulator(circuit, mode="words", block_patterns=64)
        result = simulator.run(patterns, faults, drop_detected=True)
        stats = dict(simulator.last_run_stats)
        assert stats["blocks"] > 1
        assert stats["dropped_block_evaluations"] > 0
        reference = PackedFaultSimulator(circuit, mode="lanes").run(patterns, faults)
        assert list(result.detected.items()) == list(reference.detected.items())

    def test_env_var_forces_mode(self, monkeypatch):
        monkeypatch.setenv(FAULT_MODE_ENV_VAR, "words")
        simulator = PackedFaultSimulator(c17())
        assert simulator.mode == "words"
        patterns = TestSet.from_matrix(_random_patterns(c17(), 8, seed=0))
        simulator.run(patterns, full_fault_list(c17())[:2])
        assert simulator.last_run_stats["fault_mode"] == "words"

    def test_explicit_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_MODE_ENV_VAR, "words")
        assert PackedFaultSimulator(c17(), mode="lanes").mode == "lanes"

    def test_unknown_mode_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown fault mode"):
            PackedFaultSimulator(c17(), mode="simd")
        with pytest.raises(ValueError, match="unknown fault mode"):
            ShardedFaultSimulator(c17(), mode="simd")
        monkeypatch.setenv(FAULT_MODE_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown fault mode"):
            resolve_fault_mode()


class TestDuplicateFaults:
    """Duplicate faults must collapse to one entry, not skew coverage."""

    @pytest.mark.parametrize("mode", ["lanes", "words", "faults"])
    def test_duplicates_counted_once(self, mode):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 40, seed=5))
        base = full_fault_list(circuit)
        duplicated = base + base[:5] + [base[0]]
        for simulator in (
            NaiveFaultSimulator(circuit),
            PackedFaultSimulator(circuit, mode=mode),
            ShardedFaultSimulator(circuit, jobs=2, min_chunk_faults=2, mode=mode),
        ):
            res_dup = simulator.run(patterns, duplicated)
            res_base = simulator.run(patterns, base)
            assert list(res_dup.detected.items()) == list(res_base.detected.items())
            assert res_dup.undetected == res_base.undetected
            assert res_dup.coverage == res_base.coverage

    def test_undetectable_duplicates_do_not_double_count(self):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 8, seed=0))
        ghost = StuckAtFault("no_such_net", 0)
        detected = full_fault_list(circuit)[0]
        result = PackedFaultSimulator(circuit).run(patterns, [ghost, ghost, detected])
        assert result.undetected == [ghost]
        total = result.detected_count + len(result.undetected)
        assert total == 2 and result.coverage == result.detected_count / 2

    def test_empty_pattern_set_dedupes(self):
        circuit = c17()
        fault = full_fault_list(circuit)[0]
        result = PackedFaultSimulator(circuit).run(TestSet([]), [fault, fault])
        assert result.undetected == [fault]

    def test_duplicates_cost_no_grading_work(self):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 40, seed=5))
        base = full_fault_list(circuit)
        simulator = PackedFaultSimulator(circuit)
        simulator.run(patterns, base)
        base_evaluations = simulator.last_run_stats["cone_evaluations"]
        simulator.run(patterns, base + base)
        assert simulator.last_run_stats["cone_evaluations"] == base_evaluations


class TestFaultParity:
    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    @pytest.mark.parametrize("n_patterns", [1, 63, 65, 130])
    @pytest.mark.parametrize("drop", [True, False])
    def test_detection_map_parity(self, make_circuit, n_patterns, drop):
        circuit = make_circuit()
        patterns = TestSet.from_matrix(_random_patterns(circuit, n_patterns, seed=9))
        faults = full_fault_list(circuit)
        naive = NaiveFaultSimulator(circuit).run(patterns, faults, drop_detected=drop)
        packed = PackedFaultSimulator(circuit).run(patterns, faults, drop_detected=drop)
        # Bit-for-bit: same faults, same first-detecting indices, same order.
        assert list(naive.detected.items()) == list(packed.detected.items())
        assert naive.undetected == packed.undetected
        assert naive.coverage == packed.coverage

    def test_facade_backends_agree_on_collapsed_faults(self):
        circuit = generate_circuit(CircuitSpec("parity", 8, 6, 200, seed=21))
        patterns = TestSet.from_matrix(_random_patterns(circuit, 70, seed=2))
        faults = collapse_faults(circuit)
        res_naive = FaultSimulator(circuit, backend="naive").run(patterns, faults)
        res_packed = FaultSimulator(circuit, backend="packed").run(patterns, faults)
        assert list(res_naive.detected.items()) == list(res_packed.detected.items())
        assert res_naive.undetected == res_packed.undetected

    # block=3 exercises the shift-based good-block slicing, block=8 the
    # byte-window fast path (including a ragged 2-pattern final block).
    @pytest.mark.parametrize("block_patterns", [3, 8])
    def test_blocking_does_not_change_first_index(self, block_patterns):
        circuit = b01_like_fsm()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 50, seed=6))
        faults = full_fault_list(circuit)
        reference = PackedFaultSimulator(circuit, block_patterns=10 ** 9).run(
            patterns, faults
        )
        blocked = PackedFaultSimulator(circuit, block_patterns=block_patterns).run(
            patterns, faults
        )
        assert list(reference.detected.items()) == list(blocked.detected.items())
        assert reference.undetected == blocked.undetected

    def test_empty_pattern_set(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        result = FaultSimulator(circuit).run(TestSet([]), faults)
        assert result.detected_count == 0
        assert result.undetected == list(faults)

    def test_unknown_fault_net_is_undetected(self):
        circuit = c17()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 8, seed=0))
        ghost = StuckAtFault("no_such_net", 0)
        for backend in ("naive", "packed"):
            result = FaultSimulator(circuit, backend=backend).run(patterns, [ghost])
            assert result.undetected == [ghost]


class TestFaultDropping:
    """The historical ``drop_detected`` flag was a no-op; now it must skip work."""

    def _setup(self):
        circuit = generate_circuit(CircuitSpec("dropper", 8, 6, 120, seed=1))
        n_patterns = 3 * DROP_BLOCK_PATTERNS  # several blocks
        patterns = TestSet.from_matrix(_random_patterns(circuit, n_patterns, seed=1))
        return circuit, patterns, full_fault_list(circuit)

    @pytest.mark.parametrize("simulator_cls", [NaiveFaultSimulator, PackedFaultSimulator])
    def test_dropping_skips_cone_evaluations(self, simulator_cls):
        circuit, patterns, faults = self._setup()
        # Pin the block size: the packed words mode defaults to much wider
        # blocks, which would fit this whole pattern set into one.
        simulator = simulator_cls(circuit, block_patterns=DROP_BLOCK_PATTERNS)
        with_drop = simulator.run(patterns, faults, drop_detected=True)
        stats_drop = dict(simulator.last_run_stats)
        without_drop = simulator.run(patterns, faults, drop_detected=False)
        stats_full = dict(simulator.last_run_stats)
        # Identical results...
        assert list(with_drop.detected.items()) == list(without_drop.detected.items())
        assert with_drop.undetected == without_drop.undetected
        # ...while dropping really skips cone re-evaluations: every detected
        # fault is absent from the blocks after its detecting one.
        assert stats_drop["blocks"] > 1
        assert stats_drop["dropped_block_evaluations"] > 0
        evaluable = stats_full["cone_evaluations"]  # one full-width pass
        assert stats_full["blocks"] == 1
        assert stats_full["dropped_block_evaluations"] == 0
        # At equal blocking, a no-drop run would cost blocks * evaluable cone
        # evaluations; the dropping run did strictly fewer.
        assert (
            stats_drop["cone_evaluations"]
            < stats_drop["blocks"] * evaluable
        )
        assert (
            stats_drop["cone_evaluations"] + stats_drop["dropped_block_evaluations"]
            <= stats_drop["blocks"] * evaluable
        )

    def test_all_detected_short_circuits_remaining_blocks(self):
        circuit = c17()  # fully testable: random patterns detect everything
        patterns = TestSet.from_matrix(
            _random_patterns(circuit, 4 * DROP_BLOCK_PATTERNS, seed=0)
        )
        simulator = PackedFaultSimulator(circuit)
        result = simulator.run(patterns, collapse_faults(circuit))
        assert result.coverage == 1.0
        assert simulator.last_run_stats["blocks"] == 1


class TestPowerParity:
    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    def test_power_reports_identical(self, make_circuit):
        circuit = make_circuit()
        patterns = TestSet.from_matrix(_random_patterns(circuit, 65, seed=8))
        naive = PowerEstimator(circuit, backend="naive").estimate(patterns)
        packed = PowerEstimator(circuit, backend="packed").estimate(patterns)
        assert naive.peak_power_uw == packed.peak_power_uw  # exact, not approx
        assert naive.average_power_uw == packed.average_power_uw
        assert naive.peak_boundary == packed.peak_boundary
        assert np.array_equal(
            naive.activity.toggles_per_boundary, packed.activity.toggles_per_boundary
        )
        assert np.array_equal(
            naive.activity.switched_capacitance_ff,
            packed.activity.switched_capacitance_ff,
        )


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"naive", "packed"} <= set(available_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("no_such_backend")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "naive")
        assert default_backend_name() == "naive"
        assert get_backend().name == "naive"

    def test_set_default_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "naive")
        set_default_backend("packed")
        try:
            assert default_backend_name() == "packed"
        finally:
            set_default_backend(None)
        assert default_backend_name() == "naive"

    def test_register_custom_backend(self):
        class DummyBackend(SimulationBackend):
            name = "dummy_for_test"

            def logic_simulator(self, circuit):
                return LogicSimulator(circuit)

            def fault_simulator(self, circuit):
                return NaiveFaultSimulator(circuit)

        backend = DummyBackend()
        register_backend(backend)
        try:
            assert get_backend("dummy_for_test") is backend
            with pytest.raises(ValueError, match="already registered"):
                register_backend(DummyBackend())
            simulator = FaultSimulator(c17(), backend="dummy_for_test")
            assert isinstance(simulator._impl, NaiveFaultSimulator)
        finally:
            _REGISTRY.pop("dummy_for_test", None)

    def test_backend_instance_passthrough(self):
        backend = get_backend("naive")
        assert get_backend(backend) is backend

    def test_packed_backend_compiles_once_per_circuit(self):
        circuit = c17()
        backend = get_backend("packed")
        first = backend.fault_simulator(circuit)
        second = backend.logic_simulator(circuit)
        assert first.program is second.program

    def test_packed_program_cache_invalidated_on_mutation(self):
        from repro.circuit.gates import GateType

        circuit = generate_circuit(CircuitSpec("mutant", 4, 0, 20, seed=0))
        backend = get_backend("packed")
        before = backend.fault_simulator(circuit).program
        circuit.add_gate("late_gate", GateType.NOT, [circuit.primary_inputs[0]])
        circuit.add_output("late_gate")
        after = backend.fault_simulator(circuit).program
        assert after is not before
        assert "late_gate" in after.net_index
        # The recompiled program simulates the mutated netlist correctly.
        patterns = _random_patterns(circuit, 65, seed=0)
        naive = LogicSimulator(circuit).simulate(patterns)
        packed = backend.logic_simulator(circuit).simulate(patterns)
        for net in naive:
            assert np.array_equal(naive[net], packed[net]), net
