"""Unit and property tests for the logic simulators and the circuit generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.generator import CircuitSpec, generate_circuit, scaled_spec
from repro.circuit.library import b01_like_fsm, c17, itc99_like
from repro.circuit.simulator import LogicSimulator, ThreeValuedSimulator
from repro.cubes.bits import ONE, X, ZERO


def _c17_reference(g1, g2, g3, g6, g7):
    """Truth-table reference for the c17 outputs (G22, G23)."""
    g10 = not (g1 and g3)
    g11 = not (g3 and g6)
    g16 = not (g2 and g11)
    g19 = not (g11 and g7)
    g22 = not (g10 and g16)
    g23 = not (g16 and g19)
    return g22, g23


class TestLogicSimulator:
    def test_c17_against_truth_table(self):
        circuit = c17()
        simulator = LogicSimulator(circuit)
        patterns = np.array(
            [[(i >> b) & 1 for b in range(5)] for i in range(32)], dtype=np.int8
        )
        outputs = simulator.observe_outputs(patterns)
        for row, bits in enumerate(patterns):
            expected = _c17_reference(*[bool(v) for v in bits])
            assert tuple(outputs[row]) == expected

    def test_pattern_shape_validation(self):
        simulator = LogicSimulator(c17())
        with pytest.raises(ValueError):
            simulator.simulate(np.zeros((4, 3), dtype=np.int8))

    def test_rejects_x_bits(self):
        simulator = LogicSimulator(c17())
        patterns = np.full((2, 5), X, dtype=np.int8)
        with pytest.raises(ValueError):
            simulator.simulate(patterns)

    def test_gate_activity_lengths(self):
        circuit = b01_like_fsm()
        simulator = LogicSimulator(circuit)
        patterns = np.random.default_rng(0).integers(0, 2, size=(10, circuit.n_test_pins))
        activity = simulator.gate_activity(patterns)
        assert all(arr.shape == (9,) for arr in activity.values())

    def test_constant_patterns_produce_no_activity(self):
        circuit = b01_like_fsm()
        simulator = LogicSimulator(circuit)
        pattern = np.ones((5, circuit.n_test_pins), dtype=np.int8)
        activity = simulator.gate_activity(pattern)
        assert all(not arr.any() for arr in activity.values())


class TestThreeValuedSimulator:
    def test_agrees_with_boolean_simulation_when_fully_specified(self):
        circuit = c17()
        two_valued = LogicSimulator(circuit)
        three_valued = ThreeValuedSimulator(circuit)
        rng = np.random.default_rng(3)
        for _ in range(16):
            bits = rng.integers(0, 2, size=5).astype(np.int8)
            reference = two_valued.simulate(bits.reshape(1, -1))
            values = three_valued.simulate_cube(bits)
            for net, expected in reference.items():
                assert values[net] == int(expected[0])

    def test_x_inputs_propagate(self):
        circuit = c17()
        sim = ThreeValuedSimulator(circuit)
        values = sim.simulate_cube([X] * 5)
        assert values["G22"] == X and values["G23"] == X

    def test_controlling_input_blocks_x(self):
        circuit = c17()
        sim = ThreeValuedSimulator(circuit)
        # G10 = NAND(G1, G3); G1=0 forces G10=1 regardless of the X on G3.
        values = sim.simulate_cube([ZERO, X, X, X, X])
        assert values["G10"] == ONE

    def test_set_pin_validation(self):
        sim = ThreeValuedSimulator(c17())
        with pytest.raises(ValueError):
            sim.set_pin("not_a_pin", ONE)
        with pytest.raises(ValueError):
            sim.set_pin("G1", 7)

    def test_cube_length_validation(self):
        sim = ThreeValuedSimulator(c17())
        with pytest.raises(ValueError):
            sim.simulate_cube([0, 1])


class TestCircuitGenerator:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CircuitSpec(name="x", n_primary_inputs=0, n_flip_flops=1, n_gates=10)
        with pytest.raises(ValueError):
            CircuitSpec(name="x", n_primary_inputs=1, n_flip_flops=1, n_gates=0)
        with pytest.raises(ValueError):
            scaled_spec("x", 10, 10, 100, scale=0.0)

    def test_generated_circuit_matches_spec(self):
        spec = CircuitSpec(name="gen", n_primary_inputs=8, n_flip_flops=12, n_gates=150, seed=5)
        circuit = generate_circuit(spec)
        assert circuit.n_gates == 150
        assert circuit.n_flip_flops == 12
        assert len(circuit.primary_inputs) == 8
        circuit.validate()

    def test_generation_is_deterministic(self):
        spec = CircuitSpec(name="gen", n_primary_inputs=5, n_flip_flops=6, n_gates=80, seed=9)
        a, b = generate_circuit(spec), generate_circuit(spec)
        assert [g.inputs for g in a.gates.values()] == [g.inputs for g in b.gates.values()]

    def test_no_floating_nets(self):
        spec = CircuitSpec(name="gen", n_primary_inputs=6, n_flip_flops=4, n_gates=60, seed=2)
        circuit = generate_circuit(spec)
        counts = circuit.fanout_counts()
        for net in circuit.nets():
            assert counts.get(net, 0) >= 1, f"net {net} is floating"

    def test_depth_is_realistic(self):
        circuit = generate_circuit(
            CircuitSpec(name="gen", n_primary_inputs=10, n_flip_flops=20, n_gates=600, seed=1)
        )
        assert 5 <= circuit.depth() <= 80

    def test_itc99_like_profiles(self):
        circuit = itc99_like("b03")
        assert circuit.n_test_pins == 29
        assert circuit.n_gates == 103
        scaled = itc99_like("b17", scale=0.05)
        assert scaled.n_gates < 2000

    def test_itc99_like_is_deterministic(self):
        a, b = itc99_like("b08"), itc99_like("b08")
        assert [g.inputs for g in a.gates.values()] == [g.inputs for g in b.gates.values()]

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            itc99_like("b99")


@settings(max_examples=20, deadline=None)
@given(
    n_inputs=st.integers(min_value=1, max_value=8),
    n_ffs=st.integers(min_value=0, max_value=10),
    n_gates=st.integers(min_value=1, max_value=120),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_generated_circuits_are_always_valid_and_simulable(n_inputs, n_ffs, n_gates, seed):
    """Property: every generated circuit validates and simulates cleanly."""
    spec = CircuitSpec(
        name="prop", n_primary_inputs=n_inputs, n_flip_flops=n_ffs, n_gates=n_gates, seed=seed
    )
    circuit = generate_circuit(spec)
    circuit.validate()
    simulator = LogicSimulator(circuit)
    patterns = np.random.default_rng(seed).integers(0, 2, size=(4, circuit.n_test_pins))
    outputs = simulator.observe_outputs(patterns)
    assert outputs.shape == (4, len(circuit.combinational_outputs))
