"""Unit tests for the I-Ordering search (Algorithm 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.dpfill import dp_fill, optimal_peak_for_ordering
from repro.core.ordering import interleave_permutation, interleaved_ordering
from repro.cubes.cube import TestSet
from repro.cubes.generator import CubeSetSpec, generate_cube_set
from repro.cubes.metrics import stretch_histogram


class TestInterleavePermutation:
    def test_k1_alternates_front_and_back(self):
        assert interleave_permutation([0, 1, 2, 3, 4, 5], 1) == [0, 5, 1, 4, 2, 3]

    def test_k2_takes_two_from_back(self):
        assert interleave_permutation([0, 1, 2, 3, 4, 5, 6], 2) == [0, 6, 5, 1, 4, 3, 2]

    def test_is_always_a_permutation(self):
        for n in range(1, 12):
            for k in range(1, n + 1):
                perm = interleave_permutation(list(range(n)), k)
                assert sorted(perm) == list(range(n)), (n, k)

    def test_large_k_degenerates_to_front_back_sweep(self):
        perm = interleave_permutation([0, 1, 2, 3], 10)
        assert sorted(perm) == [0, 1, 2, 3]
        assert perm[0] == 0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            interleave_permutation([0, 1, 2], 0)


class TestInterleavedOrdering:
    def test_never_worse_than_tool_order(self, medium_synthetic_set):
        tool_peak = dp_fill(medium_synthetic_set).peak_toggles
        result = interleaved_ordering(medium_synthetic_set)
        assert result.peak is not None and result.peak <= tool_peak

    def test_permutation_reproduces_ordered_set(self, medium_synthetic_set):
        result = interleaved_ordering(medium_synthetic_set)
        assert medium_synthetic_set.reordered(result.permutation) == result.ordered

    def test_peak_matches_reevaluation(self, medium_synthetic_set):
        result = interleaved_ordering(medium_synthetic_set)
        assert result.peak == optimal_peak_for_ordering(result.ordered)

    def test_trace_is_monotone_until_stop(self, medium_synthetic_set):
        result = interleaved_ordering(medium_synthetic_set)
        peaks = [step.peak for step in result.trace]
        # Every step but possibly the last strictly improves; the last one is
        # the non-improving step that triggers the stop (or a cap).
        for before, after in zip(peaks[:-2], peaks[1:-1]):
            assert after < before
        assert result.iterations == len(result.trace)

    def test_best_k_matches_trace(self, medium_synthetic_set):
        result = interleaved_ordering(medium_synthetic_set)
        improved = [step for step in result.trace if step.improved]
        assert result.best_k == improved[-1].k

    def test_iteration_count_is_small(self):
        """The paper observes O(log n) iterations; allow a generous constant."""
        ts = generate_cube_set(CubeSetSpec(n_pins=64, n_patterns=128, x_fraction=0.8, seed=3))
        result = interleaved_ordering(ts)
        assert result.iterations <= 6 * max(math.log2(len(ts)), 1)

    def test_max_k_cap_respected(self, medium_synthetic_set):
        result = interleaved_ordering(medium_synthetic_set, max_k=2)
        assert all(step.k <= 2 for step in result.trace)

    def test_small_sets_passthrough(self):
        tiny = TestSet.from_strings(["0X", "1X"])
        result = interleaved_ordering(tiny)
        assert result.permutation == [0, 1]
        empty = interleaved_ordering(TestSet([]))
        assert empty.permutation == []

    def test_custom_evaluator_is_used(self, medium_synthetic_set):
        calls = []

        def evaluator(candidate):
            calls.append(len(candidate))
            return optimal_peak_for_ordering(candidate)

        interleaved_ordering(medium_synthetic_set, evaluator=evaluator)
        assert calls and all(count == len(medium_synthetic_set) for count in calls)

    def test_reordering_preserves_x_mass(self):
        """Orderings move X bits around but never create or destroy them."""
        ts = generate_cube_set(CubeSetSpec(n_pins=80, n_patterns=60, x_fraction=0.85, seed=21))
        result = interleaved_ordering(ts)
        assert stretch_histogram(result.ordered).total_x_bits == stretch_histogram(ts).total_x_bits
        assert result.ordered.x_count == ts.x_count

    def test_bimodal_set_benefits_from_interleaving(self):
        """On a set with a few dense cubes and many X-rich cubes (the ATPG
        regime the paper targets) I-Ordering beats both the tool order and a
        plain density sort."""
        dense = generate_cube_set(CubeSetSpec(n_pins=60, n_patterns=6, x_fraction=0.1, seed=1))
        sparse = generate_cube_set(CubeSetSpec(n_pins=60, n_patterns=42, x_fraction=0.93, seed=2))
        data = np.vstack([dense.matrix, sparse.matrix])
        rng = np.random.default_rng(0)
        ts = TestSet.from_matrix(data[rng.permutation(data.shape[0])])

        tool_peak = dp_fill(ts).peak_toggles
        density_order = np.argsort(ts.x_counts_per_pattern(), kind="stable")
        density_peak = dp_fill(ts.reordered([int(i) for i in density_order])).peak_toggles
        result = interleaved_ordering(ts)
        assert result.peak <= tool_peak
        assert result.peak <= density_peak


class TestExtractionReuse:
    """The search's fast evaluation path must equal the literal one exactly."""

    def _sets(self):
        for seed in range(4):
            yield generate_cube_set(
                CubeSetSpec(n_pins=40, n_patterns=30, x_fraction=0.75, seed=seed)
            )

    def test_plan_interval_arrays_match_extract_intervals(self):
        from repro.core.intervals import ExtractionPlan, extract_intervals

        rng = np.random.default_rng(3)
        for ts in self._sets():
            plan = ExtractionPlan.from_test_set(ts)
            permutations = [list(range(len(ts)))] + [
                [int(i) for i in rng.permutation(len(ts))] for _ in range(3)
            ]
            for perm in permutations:
                reference = extract_intervals(ts.reordered(perm))
                starts, ends, base = plan.interval_arrays(perm)
                assert starts.tolist() == [iv.start for iv in reference.intervals]
                assert ends.tolist() == [iv.end for iv in reference.intervals]
                assert np.array_equal(base, reference.base_toggles)

    def test_fast_evaluator_equals_weighted_solver_peak(self):
        from repro.core.bcp import solve_weighted_bcp
        from repro.core.dpfill import optimal_peak_for_permutation
        from repro.core.intervals import ExtractionPlan, extract_intervals

        rng = np.random.default_rng(4)
        for ts in self._sets():
            plan = ExtractionPlan.from_test_set(ts)
            for _ in range(3):
                perm = [int(i) for i in rng.permutation(len(ts))]
                reference = extract_intervals(ts.reordered(perm))
                solved = solve_weighted_bcp(reference.intervals, reference.base_toggles)
                assert optimal_peak_for_permutation(plan, perm) == solved.peak

    def test_search_identical_with_and_without_reuse(self):
        for ts in self._sets():
            fast = interleaved_ordering(ts)
            literal = interleaved_ordering(ts, evaluator=optimal_peak_for_ordering)
            assert fast.permutation == literal.permutation
            assert fast.peak == literal.peak
            assert [(s.k, s.peak, s.improved) for s in fast.trace] == [
                (s.k, s.peak, s.improved) for s in literal.trace
            ]

    def test_result_extraction_feeds_dp_fill(self):
        for ts in self._sets():
            result = interleaved_ordering(ts)
            assert result.extraction is not None
            reused = dp_fill(result.ordered, extraction=result.extraction)
            scratch = dp_fill(result.ordered)
            assert reused.peak_toggles == scratch.peak_toggles == result.peak
            assert np.array_equal(reused.filled.matrix, scratch.filled.matrix)
            assert reused.is_certified_optimal
