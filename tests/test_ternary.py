"""Parity suite: compiled ternary PODEM vs the dict-walking reference.

The contract mirrors the simulation engines': the compiled implication
engine must be *bit-identical* to the dict reference — same good/faulty
machine states, same D-frontier, same generated cubes, same
detected/untestable/aborted classification and even the same
decision/backtrack counters — on every benchmark profile, every gate type
and every backtrack-limit edge case.  On top of parity, every generated
cube must still detect its target fault under pessimistic X-fill.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import StuckAtFault, full_fault_list
from repro.atpg.podem import DictPodemEngine, PodemEngine
from repro.circuit.gates import GateType
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm, c17, ripple_counter
from repro.circuit.netlist import Circuit
from repro.cubes.bits import ONE, X, ZERO
from repro.engine.backend import get_backend
from repro.engine.ternary import (
    ATPG_MODE_ENV_VAR,
    CompiledTernaryPodem,
    T_ONE,
    T_X,
    T_ZERO,
    bit_of_code,
    code_of_bit,
    resolve_atpg_mode,
)
from repro.experiments.workloads import build_workload, default_workload_names


def _all_gates_circuit() -> Circuit:
    """One gate of every evaluable type, with reconvergence and a DFF."""
    circuit = Circuit("allgates")
    for name in ("a", "b", "c"):
        circuit.add_input(name)
    circuit.add_gate("n_and", GateType.AND, ["a", "b"])
    circuit.add_gate("n_nand", GateType.NAND, ["b", "c"])
    circuit.add_gate("n_or", GateType.OR, ["n_and", "c"])
    circuit.add_gate("n_nor", GateType.NOR, ["n_and", "n_nand"])
    circuit.add_gate("n_xor", GateType.XOR, ["n_or", "n_nor"])
    circuit.add_gate("n_xnor", GateType.XNOR, ["n_xor", "a"])
    circuit.add_gate("n_not", GateType.NOT, ["n_xnor"])
    circuit.add_gate("n_buf", GateType.BUF, ["n_not"])
    circuit.add_gate("k0", GateType.CONST0, [])
    circuit.add_gate("k1", GateType.CONST1, [])
    circuit.add_gate("n_mix", GateType.AND, ["n_buf", "k1", "n_xor"])
    circuit.add_gate("n_mix2", GateType.OR, ["n_mix", "k0"])
    circuit.add_gate("ff", GateType.DFF, ["n_mix2"])
    circuit.add_gate("n_obs", GateType.XOR, ["ff", "n_nor"])
    circuit.add_output("n_obs")
    circuit.add_output("n_mix2")
    circuit.validate()
    return circuit


CIRCUITS = [
    pytest.param(lambda: c17(), id="c17"),
    pytest.param(lambda: b01_like_fsm(), id="b01_fsm"),
    pytest.param(lambda: ripple_counter(3), id="counter3"),
    pytest.param(_all_gates_circuit, id="allgates"),
    pytest.param(
        lambda: generate_circuit(CircuitSpec("rand_small", 8, 10, 150, seed=11)),
        id="rand_small",
    ),
]


def _sample_faults(circuit: Circuit, cap: int):
    faults = collapse_faults(circuit)
    if len(faults) <= cap:
        return faults
    stride = len(faults) / cap
    return [faults[int(i * stride)] for i in range(cap)]


def _assert_same_result(a, b, context):
    assert a.status == b.status, context
    assert a.backtracks == b.backtracks, context
    assert a.decisions == b.decisions, context
    if a.detected:
        assert np.array_equal(np.asarray(a.cube.bits), np.asarray(b.cube.bits)), context
    else:
        assert b.cube is None, context


class TestTernaryCodes:
    def test_code_round_trip(self):
        for bit, code in ((ZERO, T_ZERO), (ONE, T_ONE), (X, T_X)):
            assert code_of_bit(bit) == code
            assert bit_of_code(code) == bit


class TestImplicationParity:
    """The compiled machine states must equal the dict reference's, net by net."""

    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    def test_machines_match_dict_imply(self, make_circuit, rng):
        circuit = make_circuit()
        reference = DictPodemEngine(circuit)
        program = get_backend("packed").compiled_program(circuit)
        engine = CompiledTernaryPodem(program)
        pins = circuit.combinational_inputs
        for fault in _sample_faults(circuit, 10):
            site_row = program.net_index[fault.net]
            engine.reset(site_row, fault.stuck_value)
            # A growing random assignment, applied pin by pin (incremental
            # implication) and once more with retractions mixed in.
            assigned = {}
            for pin in rng.permutation(pins)[: max(1, len(pins) // 2)]:
                value = int(rng.integers(0, 2))
                assigned[str(pin)] = value
                engine.assign(program.net_index[str(pin)], value)
            retract = [pin for pin in assigned][::3]
            for pin in retract:
                assigned.pop(pin)
                engine.assign(program.net_index[pin], None)
            good_ref, faulty_ref = reference._imply(assigned, fault)
            good, faulty = engine.machine_codes()
            for net, row in program.net_index.items():
                assert bit_of_code(good[row]) == good_ref[net], (fault, net)
                assert bit_of_code(faulty[row]) == faulty_ref[net], (fault, net)
            assert engine.detected == reference._detected(good_ref, faulty_ref), fault

    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    def test_d_frontier_and_objective_match(self, make_circuit, rng):
        circuit = make_circuit()
        reference = DictPodemEngine(circuit)
        program = get_backend("packed").compiled_program(circuit)
        engine = CompiledTernaryPodem(program)
        node_prog = program.node_prog
        pins = circuit.combinational_inputs
        for fault in _sample_faults(circuit, 10):
            engine.reset(program.net_index[fault.net], fault.stuck_value)
            assigned = {}
            for pin in rng.permutation(pins)[: max(1, len(pins) // 3)]:
                value = int(rng.integers(0, 2))
                assigned[str(pin)] = value
                engine.assign(program.net_index[str(pin)], value)
            good_ref, faulty_ref = reference._imply(assigned, fault)
            frontier_ref = reference._d_frontier(good_ref, faulty_ref)
            frontier = [
                program.net_names[node_prog[pos][1]] for pos in engine.d_frontier()
            ]
            assert frontier == frontier_ref, fault
            reach = engine._x_path_reach()
            for name in frontier_ref:
                assert (program.net_index[name] in reach) == reference._x_path_exists(
                    name, good_ref, faulty_ref
                ), (fault, name)


class TestPodemParity:
    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    def test_full_fault_list_small_circuits(self, make_circuit):
        circuit = make_circuit()
        dict_engine = PodemEngine(circuit, mode="dict")
        compiled = PodemEngine(circuit, mode="compiled")
        faults = full_fault_list(circuit)
        if len(faults) > 64:  # keep the dict reference's share of the runtime sane
            stride = len(faults) / 64
            faults = [faults[int(i * stride)] for i in range(64)]
        for fault in faults:
            _assert_same_result(
                dict_engine.generate(fault), compiled.generate(fault), fault
            )

    @pytest.mark.parametrize("name", default_workload_names())
    def test_benchmark_profile_parity(self, name):
        """Identical classification and cubes on every benchmark profile."""
        workload = build_workload(name)
        circuit = workload.circuit
        cap = 16 if circuit.n_gates <= 650 else 8
        faults = _sample_faults(circuit, cap)
        dict_engine = PodemEngine(circuit, backtrack_limit=15, mode="dict")
        compiled = PodemEngine(circuit, backtrack_limit=15, mode="compiled")
        simulator = FaultSimulator(circuit)
        statuses = set()
        for fault in faults:
            reference = dict_engine.generate(fault)
            result = compiled.generate(fault)
            _assert_same_result(reference, result, (name, fault))
            statuses.add(result.status)
            if result.detected:
                # The cube, with X bits filled pessimistically both ways,
                # must still detect its target fault.
                for fill in (ZERO, ONE):
                    bits = result.cube.filled_with(fill).bits
                    assert simulator.detects(bits, fault), (name, fault, fill)
        assert "detected" in statuses, name


class TestBacktrackLimits:
    def _redundant_circuit(self) -> Circuit:
        # y = OR(a, NOT(a)) is constant 1: y/sa1 is undetectable.
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("na", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.OR, ["a", "na"])
        circuit.add_output("y")
        return circuit

    @pytest.mark.parametrize("limit", [0, 1, 2])
    def test_redundant_fault_at_tiny_limits(self, limit):
        circuit = self._redundant_circuit()
        fault = StuckAtFault("y", ONE)
        reference = PodemEngine(circuit, backtrack_limit=limit, mode="dict").generate(fault)
        result = PodemEngine(circuit, backtrack_limit=limit, mode="compiled").generate(fault)
        _assert_same_result(reference, result, limit)
        # Proving redundancy needs one backtrack: limit 0 aborts, limits >= 1
        # exhaust the (single-pin) search space.
        assert result.status == ("aborted" if limit == 0 else "untestable")

    def test_exact_limit_boundary(self):
        """A run that used B backtracks must survive limit B and abort at B-1."""
        circuit = b01_like_fsm()
        unlimited = PodemEngine(circuit, backtrack_limit=10_000, mode="compiled")
        fault = next(
            (
                f
                for f in collapse_faults(circuit)
                if unlimited.generate(f).backtracks > 0
            ),
            None,
        )
        assert fault is not None, "expected at least one backtracking fault"
        backtracks = unlimited.generate(fault).backtracks
        for limit, mode in ((backtracks, "exact"), (backtracks - 1, "below")):
            reference = PodemEngine(circuit, backtrack_limit=limit, mode="dict").generate(fault)
            result = PodemEngine(circuit, backtrack_limit=limit, mode="compiled").generate(fault)
            _assert_same_result(reference, result, (fault, mode))
            if mode == "below":
                assert result.status == "aborted"
            else:
                assert result.status != "aborted"

    @pytest.mark.parametrize("limit", [0, 1])
    def test_tiny_limits_across_fault_list(self, limit):
        circuit = b01_like_fsm()
        dict_engine = PodemEngine(circuit, backtrack_limit=limit, mode="dict")
        compiled = PodemEngine(circuit, backtrack_limit=limit, mode="compiled")
        for fault in collapse_faults(circuit):
            _assert_same_result(
                dict_engine.generate(fault), compiled.generate(fault), (limit, fault)
            )


class TestModeResolution:
    def test_backend_preferences(self, monkeypatch):
        monkeypatch.delenv(ATPG_MODE_ENV_VAR, raising=False)
        circuit = c17()
        assert PodemEngine(circuit, backend="naive").implementation == "dict"
        assert PodemEngine(circuit, backend="packed").implementation == "compiled"
        assert PodemEngine(circuit, backend="sharded").implementation == "compiled"

    def test_explicit_mode_beats_backend(self):
        circuit = c17()
        assert PodemEngine(circuit, backend="naive", mode="compiled").implementation == "compiled"
        assert PodemEngine(circuit, backend="packed", mode="dict").implementation == "dict"

    def test_env_var_forces_mode(self, monkeypatch):
        circuit = c17()
        monkeypatch.setenv(ATPG_MODE_ENV_VAR, "dict")
        assert PodemEngine(circuit, backend="packed").implementation == "dict"
        monkeypatch.setenv(ATPG_MODE_ENV_VAR, "compiled")
        assert PodemEngine(circuit, backend="naive").implementation == "compiled"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_atpg_mode("vectorised")
        with pytest.raises(ValueError):
            PodemEngine(c17(), mode="nope")

    def test_compiled_engine_shares_backend_program(self):
        circuit = c17()
        backend = get_backend("packed")
        engine = PodemEngine(circuit, backend=backend)
        assert engine.program is backend.compiled_program(circuit)

    def test_unknown_fault_net_raises(self):
        engine = PodemEngine(c17(), mode="compiled")
        with pytest.raises(KeyError):
            engine.generate(StuckAtFault("no_such_net", ZERO))
