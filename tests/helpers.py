"""Shared test utilities: brute-force reference solvers and cube builders.

The brute-force solvers are deliberately tiny and obviously correct; they
exist so the optimised implementations can be checked against exhaustive
search on small instances (unit tests pin specific cases, hypothesis tests
sweep random ones).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.intervals import ToggleInterval
from repro.cubes.bits import ONE, X, ZERO
from repro.cubes.cube import TestSet


def brute_force_min_peak(patterns: TestSet) -> int:
    """Exhaustively search every X-fill and return the minimum peak toggles.

    Exponential in the number of X bits; callers must keep instances small
    (the tests cap the X count at ~16).
    """
    data = patterns.matrix.copy()
    x_positions = np.argwhere(data == X)
    n_x = x_positions.shape[0]
    if n_x > 20:
        raise ValueError(f"brute force limited to 20 X bits, got {n_x}")
    best = None
    for assignment in itertools.product((ZERO, ONE), repeat=n_x):
        candidate = data.copy()
        for (row, col), value in zip(x_positions, assignment):
            candidate[row, col] = value
        if candidate.shape[0] < 2:
            peak = 0
        else:
            peak = int(np.count_nonzero(candidate[1:] != candidate[:-1], axis=1).max())
        if best is None or peak < best:
            best = peak
    return best if best is not None else 0


def brute_force_bcp(intervals: Sequence[ToggleInterval], base: Sequence[int] = ()) -> int:
    """Exhaustively search every colouring and return the minimum bottleneck.

    ``base`` optionally supplies per-colour base loads (the weighted variant).
    """
    if not intervals and not len(base):
        return 0
    n_colors = max(
        [iv.end + 1 for iv in intervals] + [len(base)] if (intervals or len(base)) else [0]
    )
    base_arr = np.zeros(n_colors, dtype=np.int64)
    base_arr[: len(base)] = np.asarray(base, dtype=np.int64)
    if not intervals:
        return int(base_arr.max()) if base_arr.size else 0
    choices = [range(iv.start, iv.end + 1) for iv in intervals]
    best = None
    for combo in itertools.product(*choices):
        loads = base_arr.copy()
        for color in combo:
            loads[color] += 1
        peak = int(loads.max())
        if best is None or peak < best:
            best = peak
    return best


def make_interval(start: int, end: int, row: int = 0) -> ToggleInterval:
    """Build a ToggleInterval with plausible column metadata for BCP tests."""
    return ToggleInterval(
        start=start,
        end=end,
        row=row,
        left_col=start,
        right_col=end + 1,
        left_value=ZERO,
        right_value=ONE,
    )


def cube_set_from_rows(rows: Iterable[str]) -> TestSet:
    """Build a TestSet from *pin-major* row strings (one string per pin).

    This matches how the paper draws its examples (each line is one input pin
    across the pattern sequence), which keeps figure transcriptions readable.
    """
    row_list: List[str] = [r.replace(" ", "") for r in rows]
    lengths = {len(r) for r in row_list}
    if len(lengths) != 1:
        raise ValueError("all pin rows must have the same number of patterns")
    pin_matrix = np.array(
        [[{"0": 0, "1": 1, "X": 2, "x": 2}[c] for c in row] for row in row_list],
        dtype=np.int8,
    )
    return TestSet.from_pin_matrix(pin_matrix)


def random_small_cube_set(
    rng: np.random.Generator,
    max_patterns: int = 6,
    max_pins: int = 6,
    max_x: int = 10,
) -> TestSet:
    """Random small cube set with a bounded number of X bits (for brute force)."""
    n_patterns = int(rng.integers(2, max_patterns + 1))
    n_pins = int(rng.integers(1, max_pins + 1))
    data = rng.integers(0, 2, size=(n_patterns, n_pins)).astype(np.int8)
    n_x = int(rng.integers(0, max_x + 1))
    positions = [(int(r), int(c)) for r in range(n_patterns) for c in range(n_pins)]
    rng.shuffle(positions)
    for row, col in positions[: min(n_x, len(positions))]:
        data[row, col] = X
    return TestSet.from_matrix(data)
