"""Tests for the queue-backed distributed executor (``repro.cluster``).

The contract mirrors the sharded backend's: *bit-for-bit parity* with the
packed/naive reference — same detection maps, same first-detecting pattern
indices, same fault order — regardless of transport (``local`` / ``mp`` /
``queue``), worker count, task arrival order, duplicate deliveries or
injected worker failures.  On top of parity, the suite checks the cluster
machinery itself: the shared protocol (chunk planning, adaptive sizing,
idempotent min-merge), the spool-queue lease/retry mechanics, the worker
entrypoint, backend registration and the runner's ``--transport`` flag.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.atpg.collapse import collapse_faults
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import StuckAtFault, full_fault_list
from repro.circuit.generator import CircuitSpec, generate_circuit
from repro.circuit.library import b01_like_fsm, c17
from repro.cluster import (
    CHUNK_PLAN_ENV_VAR,
    QUEUE_DIR_ENV_VAR,
    TRANSPORT_ENV_VAR,
    AdaptiveChunker,
    ClusterBackend,
    ClusterFaultSimulator,
    LocalTransport,
    QueueTransport,
    TransportError,
    TransportTaskError,
    default_transport_name,
    parse_transport_spec,
    plan_chunks,
    resolve_chunk_plan,
    resolve_transport,
    set_default_transport,
)
from repro.cluster.protocol import worker_context
from repro.cluster.transport import claim_task, write_result
from repro.engine import NaiveFaultSimulator, PackedFaultSimulator, available_backends, get_backend


def _random_patterns(circuit, n_patterns: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n_patterns, circuit.n_test_pins)).astype(np.int8)


def _medium_circuit():
    return generate_circuit(CircuitSpec("cluster_med", 10, 12, 300, seed=4))


def _patterns(circuit, n=160, seed=1):
    from repro.cubes.cube import TestSet

    return TestSet.from_matrix(_random_patterns(circuit, n, seed=seed))


def _packed_reference(circuit, patterns, faults, drop=True):
    return PackedFaultSimulator(circuit).run(patterns, faults, drop_detected=drop)


def _assert_same(reference, result, context=""):
    assert list(reference.detected.items()) == list(result.detected.items()), context
    assert reference.undetected == result.undetected, context
    assert reference.coverage == result.coverage, context


def _forced_simulator(circuit, **kwargs) -> ClusterFaultSimulator:
    """A cluster simulator with knobs forcing multi-chunk dispatch."""
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("min_chunk_faults", 2)
    kwargs.setdefault("chunks_per_worker", 2)
    return ClusterFaultSimulator(circuit, **kwargs)


# -- protocol ----------------------------------------------------------------
class TestProtocol:
    def test_plan_chunks_fault_axis(self):
        mode, chunks = plan_chunks(2, 100, 64, 128, chunks_per_worker=2, min_chunk_faults=8)
        assert mode == "fault-chunks"
        assert chunks[0][0] == 0 and chunks[-1][1] == 100
        covered = [i for lo, hi in chunks for i in range(lo, hi)]
        assert covered == list(range(100))

    def test_plan_chunks_pattern_axis(self):
        mode, shards = plan_chunks(2, 2, 1024, 128, min_chunk_faults=8)
        assert mode == "pattern-shards"
        assert shards[0][0] == 0 and shards[-1][1] == 1024
        assert all(start % 128 == 0 for start, _ in shards)

    def test_plan_chunks_inline_for_tiny_work(self):
        assert plan_chunks(4, 3, 16, 128) is None

    def test_resolve_chunk_plan(self, monkeypatch):
        assert resolve_chunk_plan() == "adaptive"
        assert resolve_chunk_plan("static") == "static"
        monkeypatch.setenv(CHUNK_PLAN_ENV_VAR, "static")
        assert resolve_chunk_plan() == "static"
        with pytest.raises(ValueError, match="chunk plan"):
            resolve_chunk_plan("bogus")


class TestAdaptiveChunker:
    def test_covers_all_faults_disjointly(self):
        chunker = AdaptiveChunker(97, initial_chunk=10, min_chunk=4)
        seen = []
        while True:
            bounds = chunker.next_bounds()
            if bounds is None:
                break
            lo, hi = bounds
            chunker.record(hi - lo, (hi - lo) * 50)
            seen.extend(range(lo, hi))
        assert seen == list(range(97))

    def test_cheap_feedback_grows_chunks(self):
        chunker = AdaptiveChunker(1000, initial_chunk=10, min_chunk=2)
        lo, hi = chunker.next_bounds()
        assert hi - lo == 10
        chunker.record(10, 1000)  # anchor: 100 evals/fault
        for _ in range(5):
            chunker.record(10, 100)  # cones turn out 10x cheaper
        lo, hi = chunker.next_bounds()
        assert hi - lo > 10  # cheaper faults -> bigger chunks

    def test_expensive_feedback_shrinks_chunks(self):
        chunker = AdaptiveChunker(1000, initial_chunk=20, min_chunk=2)
        chunker.next_bounds()
        chunker.record(20, 2000)  # anchor: 100 evals/fault
        for _ in range(5):
            chunker.record(20, 40000)  # cones turn out 20x heavier
        lo, hi = chunker.next_bounds()
        assert hi - lo < 20  # heavier faults -> finer chunks
        assert hi - lo >= 2

    def test_size_clamped_to_max(self):
        chunker = AdaptiveChunker(10_000, initial_chunk=10, min_chunk=2)
        chunker.next_bounds()
        chunker.record(10, 1000)
        for _ in range(20):
            chunker.record(10, 1)  # absurdly cheap
        lo, hi = chunker.next_bounds()
        assert hi - lo <= chunker.max_chunk == 40


# -- transport resolution ----------------------------------------------------
class TestTransportResolution:
    def test_parse_specs(self):
        assert parse_transport_spec("local") == ("local", None)
        assert parse_transport_spec("mp") == ("mp", None)
        assert parse_transport_spec("queue:/var/spool/x") == ("queue", "/var/spool/x")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            parse_transport_spec("bogus")
        with pytest.raises(ValueError, match="spool dir"):
            parse_transport_spec("local:/tmp/x")
        with pytest.raises(ValueError, match="unknown transport"):
            set_default_transport("bogus")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "local")
        assert default_transport_name() == "local"
        assert isinstance(resolve_transport(jobs=2), LocalTransport)

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV_VAR, "queue")
        previous = set_default_transport("local")
        try:
            assert default_transport_name() == "local"
        finally:
            set_default_transport(previous)
        assert default_transport_name() == "queue"

    def test_queue_dir_env_feeds_spec(self, monkeypatch, tmp_path):
        monkeypatch.setenv(QUEUE_DIR_ENV_VAR, str(tmp_path / "spool"))
        assert parse_transport_spec("queue") == ("queue", str(tmp_path / "spool"))


# -- parity ------------------------------------------------------------------
CIRCUITS = [
    pytest.param(lambda: c17(), id="c17"),
    pytest.param(lambda: b01_like_fsm(), id="b01_fsm"),
    pytest.param(lambda: _medium_circuit(), id="rand_medium"),
]


class TestLocalTransportParity:
    @pytest.mark.parametrize("make_circuit", CIRCUITS)
    @pytest.mark.parametrize("drop", [True, False])
    @pytest.mark.parametrize("fault_mode", ["lanes", "words", "faults"])
    def test_detection_map_parity(self, make_circuit, drop, fault_mode):
        circuit = make_circuit()
        patterns = _patterns(circuit, 130, seed=9)
        faults = full_fault_list(circuit)
        naive = NaiveFaultSimulator(circuit).run(patterns, faults, drop_detected=drop)
        simulator = _forced_simulator(circuit, transport="local", mode=fault_mode)
        result = simulator.run(patterns, faults, drop_detected=drop)
        assert simulator.last_run_stats["transport"] == "local"
        _assert_same(naive, result)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_parity_for_any_worker_count(self, jobs):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = _packed_reference(circuit, patterns, faults)
        simulator = ClusterFaultSimulator(
            circuit, transport="local", jobs=jobs, min_chunk_faults=2, chunks_per_worker=2
        )
        _assert_same(reference, simulator.run(patterns, faults), jobs)
        if jobs == 1:
            assert simulator.last_run_stats["mode"] == "inline"

    def test_out_of_order_results_merge_identically(self):
        """LIFO collection proves the merges are arrival-order independent."""
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = _packed_reference(circuit, patterns, faults)
        simulator = _forced_simulator(circuit, transport=LocalTransport(order="lifo"))
        _assert_same(reference, simulator.run(patterns, faults), "lifo")

    def test_pattern_shards_broadcast_over_transport(self):
        from repro.circuit.gates import GateType
        from repro.circuit.netlist import Circuit

        circuit = Circuit("and2")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("out", GateType.AND, ["a", "b"])
        circuit.add_output("out")
        circuit.validate()
        matrix = _random_patterns(circuit, 256, seed=3)
        matrix[0] = [1, 1]  # pattern 0 detects out/s-a-0
        from repro.cubes.cube import TestSet

        patterns = TestSet.from_matrix(matrix)
        faults = [StuckAtFault("out", 0)]
        simulator = ClusterFaultSimulator(
            circuit, transport="local", jobs=2, block_patterns=8, chunks_per_worker=8
        )
        result = simulator.run(patterns, faults)
        stats = simulator.last_run_stats
        assert stats["mode"] == "pattern-shards"
        assert stats["shard_dropped_evaluations"] > 0
        assert result.detected[faults[0]] == 0

    @pytest.mark.parametrize("chunk_plan", ["adaptive", "static"])
    def test_chunk_plan_parity(self, chunk_plan):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = _packed_reference(circuit, patterns, faults)
        simulator = _forced_simulator(circuit, transport="local", chunk_plan=chunk_plan)
        _assert_same(reference, simulator.run(patterns, faults), chunk_plan)
        assert simulator.last_run_stats["chunks"] > 1

    def test_duplicate_deliveries_are_idempotent(self):
        class DuplicatingTransport(LocalTransport):
            """Delivers every result twice (queue-retry double execution)."""

            def __init__(self):
                super().__init__()
                self._replay = None

            def next_result(self, timeout=30.0):
                if self._replay is not None:
                    out, self._replay = self._replay, None
                    return out
                out = super().next_result(timeout)
                self._replay = out
                return out

        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        reference = _packed_reference(circuit, patterns, faults)
        simulator = _forced_simulator(circuit, transport=DuplicatingTransport())
        _assert_same(reference, simulator.run(patterns, faults), "duplicates")

    def test_in_worker_context_forces_inline(self):
        circuit = c17()
        patterns = _patterns(circuit, 64)
        faults = full_fault_list(circuit)
        simulator = _forced_simulator(circuit, transport="local")
        with worker_context():
            result = simulator.run(patterns, faults)
        assert simulator.last_run_stats["mode"] == "inline"
        _assert_same(_packed_reference(circuit, patterns, faults), result)


class TestMpTransportParity:
    def test_parity_over_shared_pool(self):
        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        simulator = _forced_simulator(circuit, transport="mp")
        result = simulator.run(patterns, faults)
        if simulator.last_run_stats["mode"] == "inline":
            pytest.skip("worker pool unavailable in this environment")
        assert simulator.last_run_stats["transport"] == "mp"
        _assert_same(_packed_reference(circuit, patterns, faults), result)

    def test_backend_facade_parity(self):
        circuit = _medium_circuit()
        patterns = _patterns(circuit, 70, seed=2)
        faults = collapse_faults(circuit)
        res_cluster = FaultSimulator(circuit, backend="cluster").run(patterns, faults)
        res_packed = FaultSimulator(circuit, backend="packed").run(patterns, faults)
        _assert_same(res_packed, res_cluster)


def _queue_transport(tmp_path=None, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("lease_timeout", 5.0)
    kwargs.setdefault("poll_interval", 0.01)
    return QueueTransport(**kwargs)


class TestQueueTransportParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parity_with_spawned_workers(self, workers):
        circuit = b01_like_fsm()
        patterns = _patterns(circuit, 120, seed=5)
        faults = collapse_faults(circuit)
        reference = _packed_reference(circuit, patterns, faults)
        transport = _queue_transport(workers=workers)
        try:
            simulator = _forced_simulator(circuit, transport=transport, jobs=max(2, workers))
            result = simulator.run(patterns, faults)
            assert simulator.last_run_stats["transport"] == "queue"
            _assert_same(reference, result, workers)
        finally:
            transport.close()

    def test_zero_workers_self_drains(self):
        circuit = c17()
        patterns = _patterns(circuit, 100, seed=3)
        faults = full_fault_list(circuit)
        reference = _packed_reference(circuit, patterns, faults)
        transport = _queue_transport(workers=0, self_drain_after=0.05)
        try:
            simulator = _forced_simulator(circuit, transport=transport)
            result = simulator.run(patterns, faults)
            _assert_same(reference, result, "self-drain")
            assert transport.drained > 0
        finally:
            transport.close()


class TestQueueChannels:
    def test_concurrent_channels_do_not_steal_results(self, tmp_path):
        """Two consumers multiplexed over one spool (the ATPG shape: PODEM
        scheduler + dropping fault sim) must each get exactly their own
        results, regardless of which consumer's polling drained the tasks."""
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=0,
            jobs=2,
            lease_timeout=2.0,
            poll_interval=0.01,
            self_drain_after=0.01,
        )
        try:
            ch1 = transport.channel()
            ch2 = transport.channel()
            id1 = ch1.submit({"kind": "echo", "payload": "one"})
            id2 = ch2.submit({"kind": "echo", "payload": "two"})
            # ch1 polls first; its drain may well execute ch2's task too,
            # but it must only ever *consume* its own result.
            assert ch1.next_result(timeout=10.0) == (id1, "one")
            assert ch2.next_result(timeout=10.0) == (id2, "two")
        finally:
            transport.close()

    def test_resolved_transports_are_channels_over_one_spool(self, monkeypatch, tmp_path):
        monkeypatch.setenv(QUEUE_DIR_ENV_VAR, str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_QUEUE_WORKERS", "0")
        first = resolve_transport("queue", jobs=2)
        second = resolve_transport("queue", jobs=2)
        try:
            assert first is not second  # private bookkeeping per consumer
            assert first.parent is second.parent  # one spool, one worker set
        finally:
            from repro.cluster.transport import discard_transport

            discard_transport(first)

    def test_atpg_with_dropping_over_queue_matches_serial(self, monkeypatch, tmp_path):
        """The end-to-end shape of the multiplexing bug: cube generation
        under the cluster backend with fault-sim dropping, over one shared
        queue spool, must be byte-identical to the serial run."""
        from repro.atpg.tpg import generate_test_cubes

        monkeypatch.setenv(QUEUE_DIR_ENV_VAR, str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_QUEUE_WORKERS", "2")
        circuit = generate_circuit(CircuitSpec("queue_atpg", 10, 14, 260, seed=3))
        kwargs = dict(max_faults=64, backtrack_limit=20, seed=2)
        baseline = generate_test_cubes(circuit, **kwargs)
        previous = set_default_transport("queue")
        try:
            result = generate_test_cubes(circuit, backend="cluster", jobs=2, **kwargs)
        finally:
            set_default_transport(previous)
            from repro.cluster.transport import shutdown_shared_transports

            shutdown_shared_transports()
        assert np.array_equal(baseline.cubes.matrix, result.cubes.matrix)
        assert list(baseline.detected_faults.items()) == list(
            result.detected_faults.items()
        )
        assert baseline.untestable_faults == result.untestable_faults
        assert baseline.aborted_faults == result.aborted_faults


class TestExternalSpoolLifecycle:
    def test_close_leaves_external_spool_usable(self, tmp_path):
        """Closing a parent attached to an external spool must not write a
        stop file — other parents and future runs still use that spool."""
        spool = str(tmp_path / "spool")
        first = QueueTransport(spool=spool, workers=0, jobs=2, self_drain_after=0.01)
        first.close()
        assert not os.path.exists(os.path.join(spool, "stop"))
        second = QueueTransport(
            spool=spool, workers=0, jobs=2, poll_interval=0.01, self_drain_after=0.01
        )
        try:
            task_id = second.submit({"kind": "echo", "payload": 5})
            assert second.next_result(timeout=10.0) == (task_id, 5)
        finally:
            second.close()

    def test_stale_stop_file_cleared_on_attach(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "stop").write_text("stop\n")
        transport = QueueTransport(spool=str(spool), workers=0, jobs=2)
        try:
            assert not (spool / "stop").exists()
        finally:
            transport.close()

    def test_bad_queue_workers_env_rejected_clearly(self, monkeypatch, tmp_path):
        monkeypatch.setenv(QUEUE_DIR_ENV_VAR, str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_QUEUE_WORKERS", "two")
        with pytest.raises(ValueError, match="REPRO_QUEUE_WORKERS must be"):
            resolve_transport("queue", jobs=2)


class TestQueueFailureInjection:
    def test_stale_claim_is_reenqueued(self, tmp_path):
        """A claim whose lease never beats (claimant died) is retried."""
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=0,
            jobs=2,
            lease_timeout=0.3,
            poll_interval=0.01,
            self_drain_after=0.05,
        )
        try:
            task_id = transport.submit({"kind": "echo", "payload": 42})
            # Simulate a worker that claimed the task and died on the spot:
            # the task file moves to claimed/ and no lease is ever written.
            claimed = claim_task(transport.spool)
            assert claimed is not None and claimed[0] == task_id
            got_id, value = transport.next_result(timeout=20.0)
            assert (got_id, value) == (task_id, 42)
            assert transport.retries == 1
        finally:
            transport.close()

    def test_worker_killed_mid_task_is_recovered(self, tmp_path):
        """SIGKILL a worker while it executes; the lease expires, the task
        is re-enqueued and the run still completes with the right answer."""
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=1,
            jobs=1,
            lease_timeout=1.0,
            poll_interval=0.02,
        )
        try:
            task_id = transport.submit({"kind": "echo", "payload": 7, "sleep": 0.6})
            claimed_dir = os.path.join(transport.spool, "claimed")
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if any(n.endswith(".task") for n in os.listdir(claimed_dir)):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("worker never claimed the task")
            transport._procs[0].kill()
            got_id, value = transport.next_result(timeout=30.0)
            assert (got_id, value) == (task_id, 7)
            assert transport.retries >= 1
        finally:
            transport.close()

    def test_duplicate_result_files_consumed_once(self, tmp_path):
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=0,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.01,
            self_drain_after=0.01,
        )
        try:
            task_id = transport.submit({"kind": "echo", "payload": "x"})
            # A retried task's two executions both publish: write one result
            # up front, let the self-drain write the other.
            write_result(transport.spool, task_id, ("ok", "x"))
            got_id, value = transport.next_result(timeout=10.0)
            assert (got_id, value) == (task_id, "x")
            with pytest.raises((TransportError,)):
                transport.next_result(timeout=0.1)  # nothing outstanding
        finally:
            transport.close()

    def test_poisoned_task_raises_task_error(self, tmp_path):
        transport = QueueTransport(
            spool=str(tmp_path / "spool"),
            workers=0,
            jobs=2,
            lease_timeout=1.0,
            poll_interval=0.01,
            self_drain_after=0.01,
        )
        try:
            task_id = transport.submit({"kind": "no-such-kind"})
            with pytest.raises(TransportTaskError) as excinfo:
                transport.next_result(timeout=10.0)
            assert excinfo.value.task_id == task_id
        finally:
            transport.close()

    def test_failed_transport_falls_back_inline(self):
        class ExplodingTransport(LocalTransport):
            def next_result(self, timeout=30.0):
                raise RuntimeError("transport lost")

        circuit = _medium_circuit()
        patterns = _patterns(circuit)
        faults = collapse_faults(circuit)
        simulator = _forced_simulator(circuit, transport=ExplodingTransport())
        result = simulator.run(patterns, faults)
        assert simulator.last_run_stats["mode"] == "inline"
        _assert_same(_packed_reference(circuit, patterns, faults), result)


class TestWorkerEntrypoint:
    def test_external_worker_serves_spool(self, tmp_path):
        spool = str(tmp_path / "spool")
        transport = QueueTransport(
            spool=spool,
            workers=0,
            jobs=2,
            lease_timeout=5.0,
            poll_interval=0.02,
            self_drain_after=10.0,
        )
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        if src_dir not in parts:
            env["PYTHONPATH"] = os.pathsep.join([src_dir] + parts)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cluster.worker",
                "--spool",
                spool,
                "--max-tasks",
                "2",
                "--poll",
                "0.02",
                "--heartbeat",
                "0.2",
                "--idle-exit",
                "30",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for the worker's liveness heartbeat: until it lands the
            # parent (rightly) assumes no workers exist and would drain the
            # queue itself.
            workers_dir = os.path.join(spool, "workers")
            deadline = time.time() + 30.0
            while time.time() < deadline and not os.listdir(workers_dir):
                time.sleep(0.02)
            assert os.listdir(workers_dir), "worker never heartbeated"
            ids = [transport.submit({"kind": "echo", "payload": i}) for i in range(2)]
            got = {}
            for _ in ids:
                task_id, value = transport.next_result(timeout=60.0)
                got[task_id] = value
            assert got == {ids[0]: 0, ids[1]: 1}
            assert transport.drained == 0  # the external worker did the work
            assert proc.wait(timeout=30) == 0  # --max-tasks 2 exits cleanly
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            transport.close()


class TestBackendRegistration:
    def test_cluster_backend_registered(self):
        assert "cluster" in available_backends()
        assert isinstance(get_backend("cluster"), ClusterBackend)

    def test_fault_simulator_shares_compiled_program(self):
        circuit = c17()
        backend = get_backend("cluster")
        first = backend.fault_simulator(circuit)
        second = backend.logic_simulator(circuit)
        assert isinstance(first, ClusterFaultSimulator)
        assert first.program is second.program

    def test_env_var_resolves_cluster(self, monkeypatch):
        from repro.engine.backend import BACKEND_ENV_VAR, default_backend_name

        monkeypatch.setenv(BACKEND_ENV_VAR, "cluster")
        assert default_backend_name() == "cluster"
        assert get_backend() is get_backend("cluster")

    def test_empty_pattern_set(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        from repro.cubes.cube import TestSet

        result = _forced_simulator(circuit, transport="local").run(TestSet([]), faults)
        assert result.detected_count == 0
        assert result.undetected == list(faults)


class TestRunnerTransport:
    def test_transport_flag_parsed(self):
        from repro.experiments.runner import build_parser

        args = build_parser().parse_args(["--transport", "local"])
        assert args.transport == "local"
        assert build_parser().parse_args([]).transport is None

    def test_bad_transport_flag_rejected_at_cli(self, capsys):
        from repro.experiments.runner import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--transport", "bogus"])
        assert "unknown transport" in capsys.readouterr().err

    def test_cluster_report_matches_serial(self, tmp_path):
        from repro.experiments.runner import main

        serial_out = tmp_path / "serial.txt"
        cluster_out = tmp_path / "cluster.txt"
        base = ["--artifacts", "1", "--benchmarks", "b01,b03", "--backend", "cluster"]
        assert main(base + ["--out", str(serial_out)]) == 0
        assert (
            main(base + ["--jobs", "2", "--transport", "local", "--out", str(cluster_out)])
            == 0
        )
        assert serial_out.read_bytes() == cluster_out.read_bytes()
