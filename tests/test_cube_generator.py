"""Unit tests for the synthetic cube-set generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cubes.bits import X
from repro.cubes.generator import (
    CubeSetSpec,
    generate_cube_set,
    generate_cube_set_like,
    random_fully_specified_set,
)
from repro.cubes.metrics import stretch_histogram


class TestSpecValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            CubeSetSpec(n_pins=0, n_patterns=10, x_fraction=0.5)
        with pytest.raises(ValueError):
            CubeSetSpec(n_pins=10, n_patterns=0, x_fraction=0.5)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            CubeSetSpec(n_pins=10, n_patterns=10, x_fraction=1.0)
        with pytest.raises(ValueError):
            CubeSetSpec(n_pins=10, n_patterns=10, x_fraction=0.5, cluster_fraction=2.0)
        with pytest.raises(ValueError):
            CubeSetSpec(n_pins=10, n_patterns=10, x_fraction=0.5, hot_pin_fraction=-0.1)


class TestGeneration:
    def test_shape_matches_spec(self):
        ts = generate_cube_set(CubeSetSpec(n_pins=50, n_patterns=20, x_fraction=0.6, seed=1))
        assert len(ts) == 20
        assert ts.n_pins == 50

    def test_determinism_per_seed(self):
        spec = CubeSetSpec(n_pins=40, n_patterns=15, x_fraction=0.7, seed=3)
        assert generate_cube_set(spec) == generate_cube_set(spec)

    def test_different_seeds_differ(self):
        a = generate_cube_set(CubeSetSpec(n_pins=40, n_patterns=15, x_fraction=0.7, seed=3))
        b = generate_cube_set(CubeSetSpec(n_pins=40, n_patterns=15, x_fraction=0.7, seed=4))
        assert a != b

    @pytest.mark.parametrize("target", [0.3, 0.6, 0.85])
    def test_x_density_close_to_target(self, target):
        ts = generate_cube_set(
            CubeSetSpec(n_pins=200, n_patterns=80, x_fraction=target, seed=11)
        )
        assert ts.x_fraction == pytest.approx(target, abs=0.08)

    def test_every_pattern_has_at_least_one_care_bit(self):
        ts = generate_cube_set(CubeSetSpec(n_pins=30, n_patterns=50, x_fraction=0.9, seed=5))
        assert (ts.x_counts_per_pattern() < ts.n_pins).all()

    def test_percent_wrapper(self):
        ts = generate_cube_set_like(100, 40, 75.0, seed=2)
        assert ts.x_fraction == pytest.approx(0.75, abs=0.1)

    def test_clustering_produces_long_stretches(self):
        clustered = generate_cube_set(
            CubeSetSpec(n_pins=120, n_patterns=60, x_fraction=0.8, cluster_fraction=0.9, seed=9)
        )
        stats = stretch_histogram(clustered)
        # With 80 % X density there must be stretches spanning several patterns.
        assert stats.max_length >= 3


class TestFullySpecifiedGenerator:
    def test_no_x_bits(self):
        ts = random_fully_specified_set(20, 10, seed=0)
        assert ts.is_fully_specified()
        assert len(ts) == 10 and ts.n_pins == 20

    def test_deterministic(self):
        assert random_fully_specified_set(8, 4, seed=1) == random_fully_specified_set(8, 4, seed=1)

    def test_values_are_binary(self):
        ts = random_fully_specified_set(16, 6, seed=2)
        assert not (ts.matrix == X).any()
        assert set(np.unique(ts.matrix)).issubset({0, 1})
