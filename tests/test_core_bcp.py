"""Unit and property tests for the Bottleneck Coloring Problem solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bcp import (
    InfeasibleColoringError,
    bcp_lower_bound,
    greedy_coloring,
    solve_bcp,
    solve_weighted_bcp,
    weighted_lower_bound,
)
from tests.helpers import brute_force_bcp, make_interval


class TestLowerBound:
    def test_empty_instance(self):
        assert bcp_lower_bound([]) == 0

    def test_single_interval(self):
        assert bcp_lower_bound([make_interval(0, 3)]) == 1

    def test_disjoint_intervals(self):
        intervals = [make_interval(0, 1), make_interval(2, 3), make_interval(4, 5)]
        assert bcp_lower_bound(intervals) == 1

    def test_stacked_point_intervals(self):
        intervals = [make_interval(2, 2) for _ in range(4)]
        assert bcp_lower_bound(intervals) == 4

    def test_window_argument(self):
        # Five intervals confined to two colours -> at least ceil(5/2) = 3.
        intervals = [make_interval(0, 1) for _ in range(5)]
        assert bcp_lower_bound(intervals) == 3

    def test_paper_fig1_style_instance(self):
        # Three long overlapping stretches plus one short one: LB is 1 while a
        # greedy left-squeeze would stack toggles at the same boundary.
        intervals = [
            make_interval(0, 6),
            make_interval(0, 6),
            make_interval(3, 6),
            make_interval(0, 5),
        ]
        assert bcp_lower_bound(intervals) == 1


class TestGreedyColoring:
    def test_colours_within_windows(self):
        intervals = [make_interval(0, 2), make_interval(1, 3), make_interval(2, 2)]
        colors = greedy_coloring(intervals, capacity=1)
        for interval, color in zip(intervals, colors):
            assert interval.start <= color <= interval.end

    def test_capacity_respected(self):
        intervals = [make_interval(0, 3) for _ in range(4)]
        colors = greedy_coloring(intervals, capacity=1)
        assert len(set(colors.tolist())) == 4

    def test_infeasible_capacity_raises(self):
        intervals = [make_interval(1, 1), make_interval(1, 1)]
        with pytest.raises(InfeasibleColoringError):
            greedy_coloring(intervals, capacity=1)

    def test_per_colour_capacity_array(self):
        intervals = [make_interval(0, 1), make_interval(0, 1)]
        colors = greedy_coloring(intervals, capacity=np.array([1, 1]))
        assert sorted(colors.tolist()) == [0, 1]

    def test_empty_instance(self):
        assert greedy_coloring([], capacity=1).size == 0

    def test_capacity_array_too_short_rejected(self):
        intervals = [make_interval(0, 3)]
        with pytest.raises(ValueError):
            greedy_coloring(intervals, capacity=np.array([1, 1]))

    def test_earliest_deadline_first_prefers_tight_intervals(self):
        tight = make_interval(0, 0)
        loose = make_interval(0, 5)
        colors = greedy_coloring([loose, tight], capacity=1)
        assert colors[1] == 0  # the tight interval must get colour 0
        assert colors[0] != 0


class TestSolveBCP:
    def test_meets_lower_bound(self):
        intervals = [
            make_interval(0, 2),
            make_interval(0, 2),
            make_interval(1, 4),
            make_interval(3, 4),
            make_interval(2, 2),
        ]
        solution = solve_bcp(intervals)
        assert solution.peak == solution.lower_bound == bcp_lower_bound(intervals)
        assert solution.is_optimal
        assert int(solution.histogram.sum()) == len(intervals)

    def test_matches_brute_force_on_pinned_cases(self):
        cases = [
            [make_interval(0, 0), make_interval(0, 1), make_interval(1, 1)],
            [make_interval(0, 3), make_interval(1, 2), make_interval(2, 3), make_interval(0, 1)],
            [make_interval(2, 4) for _ in range(5)],
        ]
        for intervals in cases:
            assert solve_bcp(intervals).peak == brute_force_bcp(intervals)

    def test_empty(self):
        solution = solve_bcp([])
        assert solution.peak == 0 and solution.colors.size == 0


class TestWeightedBCP:
    def test_base_only(self):
        solution = solve_weighted_bcp([], np.array([0, 3, 1]))
        assert solution.peak == 3

    def test_intervals_avoid_loaded_boundaries(self):
        base = np.array([0, 5, 0])
        intervals = [make_interval(0, 2) for _ in range(4)]
        solution = solve_weighted_bcp(intervals, base)
        assert solution.peak == 5  # the toggles hide under the existing load
        assert solution.peak == brute_force_bcp(intervals, base.tolist())

    def test_weighted_beats_unweighted_when_base_skewed(self):
        base = np.array([3, 0])
        intervals = [make_interval(0, 1) for _ in range(2)]
        weighted = solve_weighted_bcp(intervals, base)
        assert weighted.peak == brute_force_bcp(intervals, base.tolist()) == 3

    def test_lower_bound_includes_base_windows(self):
        base = np.array([2, 2, 2])
        intervals = [make_interval(0, 2) for _ in range(3)]
        assert weighted_lower_bound(intervals, base) == brute_force_bcp(intervals, base.tolist())

    def test_base_shorter_than_interval_range_rejected(self):
        with pytest.raises(ValueError):
            weighted_lower_bound([make_interval(0, 5)], np.array([0, 0]))


# -- property-based tests -----------------------------------------------------

interval_strategy = st.builds(
    lambda start, length: make_interval(start, start + length),
    start=st.integers(min_value=0, max_value=5),
    length=st.integers(min_value=0, max_value=4),
)


@settings(max_examples=150, deadline=None)
@given(st.lists(interval_strategy, min_size=0, max_size=7))
def test_solve_bcp_matches_brute_force(intervals):
    """The paper's Algorithm 1 + 2 pipeline is optimal on every small instance."""
    assert solve_bcp(intervals).peak == brute_force_bcp(intervals)


@settings(max_examples=150, deadline=None)
@given(
    st.lists(interval_strategy, min_size=0, max_size=6),
    st.lists(st.integers(min_value=0, max_value=4), min_size=10, max_size=10),
)
def test_weighted_bcp_matches_brute_force(intervals, base):
    """The base-load-aware solver is optimal on every small instance."""
    base_arr = np.array(base, dtype=np.int64)
    solution = solve_weighted_bcp(intervals, base_arr)
    assert solution.peak == brute_force_bcp(intervals, base)
    # Every colour must lie inside its interval's window.
    for interval, color in zip(intervals, solution.colors):
        assert interval.start <= color <= interval.end


@settings(max_examples=100, deadline=None)
@given(st.lists(interval_strategy, min_size=1, max_size=8))
def test_lower_bound_never_exceeds_feasible_peak(intervals):
    """Algorithm 1 is a true lower bound: the greedy solution never beats it."""
    lower = bcp_lower_bound(intervals)
    solution = solve_bcp(intervals)
    assert lower <= solution.peak
    assert solution.peak == lower  # and Algorithm 2 achieves it exactly
