"""Unit tests for the pattern-file reader/writer."""

from __future__ import annotations

import pytest

from repro.cubes.cube import TestCube, TestSet
from repro.cubes.generator import generate_cube_set_like
from repro.cubes.io import (
    PatternFileError,
    dumps_patterns,
    loads_patterns,
    read_pattern_file,
    write_pattern_file,
)


class TestRoundTrip:
    def test_text_round_trip_preserves_bits_and_names(self):
        patterns = TestSet(
            [TestCube.from_string("0X1X", name="G1/sa0"), TestCube.from_string("11X0", name=None)]
        )
        restored = loads_patterns(dumps_patterns(patterns))
        assert restored == patterns
        assert restored.names == ["G1/sa0", None]

    def test_file_round_trip(self, tmp_path):
        patterns = generate_cube_set_like(40, 12, 70.0, seed=4)
        path = tmp_path / "patterns.txt"
        write_pattern_file(patterns, path, title="unit test patterns")
        restored = read_pattern_file(path)
        assert restored == patterns
        assert "unit test patterns" in path.read_text()

    def test_empty_set_round_trip(self):
        assert len(loads_patterns(dumps_patterns(TestSet([])))) == 0


class TestParsing:
    def test_blank_lines_and_comments_ignored(self):
        text = """
        # a file
        0X1

        # another comment
        1X0  # fault_a
        """
        patterns = loads_patterns(text)
        assert patterns.to_strings() == ["0X1", "1X0"]
        assert patterns.names[1] == "fault_a"

    def test_invalid_characters_rejected_with_line_number(self):
        with pytest.raises(PatternFileError, match="line 2"):
            loads_patterns("0X1\n0Z1\n")

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(PatternFileError, match="lengths"):
            loads_patterns("0X1\n01\n")

    def test_pin_header_mismatch_rejected(self):
        with pytest.raises(PatternFileError, match="pins"):
            loads_patterns("# pins: 5\n0X1\n")

    def test_bad_pin_header_rejected(self):
        with pytest.raises(PatternFileError, match="pins header"):
            loads_patterns("# pins: five\n0X1\n")

    def test_header_matching_data_accepted(self):
        patterns = loads_patterns("# pins: 3\n0X1\nX10\n")
        assert len(patterns) == 2 and patterns.n_pins == 3
