"""Unit and integration tests for the ATPG substrate (faults, PODEM, fault sim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atpg.collapse import collapse_faults, collapse_ratio
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import StuckAtFault, full_fault_list
from repro.atpg.podem import PodemEngine
from repro.atpg.tpg import generate_test_cubes
from repro.circuit.gates import GateType
from repro.circuit.library import b01_like_fsm, c17, ripple_counter
from repro.circuit.netlist import Circuit
from repro.cubes.bits import ONE, ZERO
from repro.cubes.cube import TestSet


class TestFaultModel:
    def test_fault_naming_and_activation(self):
        fault = StuckAtFault("G10", 0)
        assert fault.name == "G10/sa0"
        assert fault.activation_value == 1

    def test_invalid_stuck_value(self):
        with pytest.raises(ValueError):
            StuckAtFault("G10", 2)

    def test_full_fault_list_size(self):
        circuit = c17()
        faults = full_fault_list(circuit)
        # 5 PIs + 6 gate outputs, two faults each.
        assert len(faults) == 22

    def test_full_fault_list_covers_ff_outputs(self):
        circuit = ripple_counter(2)
        nets = {fault.net for fault in full_fault_list(circuit)}
        assert "q0" in nets and "q1" in nets


class TestCollapsing:
    def test_collapsing_reduces_fault_count(self):
        circuit = c17()
        assert len(collapse_faults(circuit)) < len(full_fault_list(circuit))
        assert 0.0 < collapse_ratio(circuit) < 1.0

    def test_collapsing_is_deterministic(self):
        circuit = b01_like_fsm()
        assert collapse_faults(circuit) == collapse_faults(circuit)

    def test_fanout_stems_not_collapsed(self):
        # G11 in c17 fans out to two gates; its faults must survive as their
        # own representatives rather than being merged through one branch.
        circuit = c17()
        collapsed_nets = {(f.net, f.stuck_value) for f in collapse_faults(circuit)}
        assert ("G11", ZERO) in collapsed_nets or ("G11", ONE) in collapsed_nets

    def test_not_gate_equivalence(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("y", GateType.NOT, ["a"])
        circuit.add_output("y")
        collapsed = collapse_faults(circuit)
        # a/sa0 == y/sa1 and a/sa1 == y/sa0: only two classes remain.
        assert len(collapsed) == 2


class TestFaultSimulator:
    def test_detects_obvious_fault(self):
        circuit = c17()
        simulator = FaultSimulator(circuit)
        # Pattern 10100 sets G1=1, G3=1 so G10=0; G10/sa1 flips G10 and is
        # observable at G22 given the rest of the pattern.
        pattern = np.array([1, 0, 1, 0, 0], dtype=np.int8)
        good = simulator.run(TestSet.from_matrix(pattern.reshape(1, -1)), full_fault_list(circuit))
        assert good.detected_count > 0

    def test_undetectable_without_patterns(self):
        circuit = c17()
        simulator = FaultSimulator(circuit)
        result = simulator.run(TestSet([]), full_fault_list(circuit))
        assert result.detected_count == 0
        assert result.coverage == 0.0

    def test_rejects_partially_specified_patterns(self):
        circuit = c17()
        simulator = FaultSimulator(circuit)
        with pytest.raises(ValueError):
            simulator.run(TestSet.from_strings(["0XXXX"]), full_fault_list(circuit))

    def test_random_patterns_reach_high_coverage_on_c17(self):
        circuit = c17()
        simulator = FaultSimulator(circuit)
        patterns = TestSet.from_matrix(
            np.random.default_rng(0).integers(0, 2, size=(32, 5)).astype(np.int8)
        )
        result = simulator.run(patterns, collapse_faults(circuit))
        assert result.coverage == 1.0  # c17 is fully testable and tiny

    def test_detection_records_first_pattern(self):
        circuit = c17()
        simulator = FaultSimulator(circuit)
        patterns = TestSet.from_matrix(
            np.vstack([np.zeros(5, dtype=np.int8), np.ones(5, dtype=np.int8)])
        )
        result = simulator.run(patterns, full_fault_list(circuit))
        assert all(0 <= index <= 1 for index in result.detected.values())


class TestPodem:
    def test_generates_valid_cube_for_every_c17_fault(self):
        circuit = c17()
        engine = PodemEngine(circuit)
        simulator = FaultSimulator(circuit)
        for fault in collapse_faults(circuit):
            result = engine.generate(fault)
            assert result.detected, f"{fault} should be testable on c17"
            # The cube, with X bits filled pessimistically both ways, must
            # still detect the fault (X positions are genuinely free).
            for fill in (ZERO, ONE):
                bits = result.cube.filled_with(fill).bits
                assert simulator.detects(bits, fault), (fault, fill)

    def test_cubes_contain_dont_cares(self):
        circuit = b01_like_fsm()
        engine = PodemEngine(circuit)
        x_counts = []
        for fault in collapse_faults(circuit)[:10]:
            result = engine.generate(fault)
            if result.detected:
                x_counts.append(result.cube.x_count)
        assert x_counts and max(x_counts) > 0

    def test_untestable_fault_reported(self):
        # y = OR(a, NOT(a)) is constant 1: y/sa1 is undetectable.
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("na", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.OR, ["a", "na"])
        circuit.add_output("y")
        engine = PodemEngine(circuit)
        result = engine.generate(StuckAtFault("y", ONE))
        assert result.status == "untestable"

    def test_detectable_fault_on_redundant_circuit_still_found(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("na", GateType.NOT, ["a"])
        circuit.add_gate("y", GateType.OR, ["a", "na"])
        circuit.add_output("y")
        engine = PodemEngine(circuit)
        result = engine.generate(StuckAtFault("y", ZERO))
        assert result.detected


class TestGenerateTestCubes:
    def test_full_flow_on_c17(self):
        result = generate_test_cubes(c17())
        assert result.fault_coverage == 1.0
        assert len(result.cubes) >= 1
        assert result.cubes.n_pins == 5

    def test_flow_on_sequential_circuit(self):
        circuit = b01_like_fsm()
        result = generate_test_cubes(circuit, seed=1)
        assert result.fault_coverage > 0.9
        assert result.cubes.n_pins == circuit.n_test_pins
        assert 0.0 < result.x_percent < 100.0

    def test_max_patterns_cap(self):
        result = generate_test_cubes(b01_like_fsm(), max_patterns=3)
        assert len(result.cubes) <= 3

    def test_max_faults_cap(self):
        result = generate_test_cubes(b01_like_fsm(), max_faults=6)
        assert result.total_faults == 6

    def test_dropping_reduces_pattern_count(self):
        circuit = b01_like_fsm()
        with_drop = generate_test_cubes(circuit, drop_with_fault_sim=True)
        without_drop = generate_test_cubes(circuit, drop_with_fault_sim=False)
        assert len(with_drop.cubes) <= len(without_drop.cubes)

    def test_filled_cubes_preserve_target_fault_coverage(self):
        """X-filling only assigns don't-cares, so every fault a cube was
        generated for is still detected after DP-fill (coverage of faults that
        were only caught opportunistically by the random fill used during
        dropping may legitimately shift)."""
        from repro.core.dpfill import dp_fill

        circuit = b01_like_fsm()
        atpg = generate_test_cubes(circuit, seed=3)
        simulator = FaultSimulator(circuit)
        target_names = {name for name in atpg.cubes.names if name}
        target_faults = [f for f in collapse_faults(circuit) if f.name in target_names]
        assert target_faults

        filled = dp_fill(atpg.cubes).filled
        result = simulator.run(filled, target_faults)
        assert result.coverage == 1.0
