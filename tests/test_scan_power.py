"""Unit tests for the scan/DFT substrate and the power model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.library import b01_like_fsm, c17, itc99_like, ripple_counter
from repro.cubes.cube import TestSet
from repro.cubes.generator import generate_cube_set_like, random_fully_specified_set
from repro.filling import get_filler
from repro.power.capacitance import TechnologyParameters, extract_capacitances
from repro.power.estimator import PowerEstimator
from repro.power.switching import weighted_switching_activity
from repro.scan.application import ScanTestApplication
from repro.scan.chain import build_scan_chains


class TestScanChains:
    def test_single_chain_covers_all_cells(self):
        circuit = b01_like_fsm()
        config = build_scan_chains(circuit)
        assert config.n_cells == circuit.n_flip_flops
        assert config.max_chain_length == circuit.n_flip_flops

    def test_balanced_multi_chain_partition(self):
        circuit = ripple_counter(6)
        config = build_scan_chains(circuit, n_chains=3)
        assert config.n_cells == 6
        assert len(config.chains) == 3
        lengths = [len(chain) for chain in config.chains]
        assert max(lengths) - min(lengths) <= 1
        # Every cell appears in exactly one chain.
        all_cells = [cell for chain in config.chains for cell in chain.cells]
        assert sorted(all_cells) == sorted(ff.output for ff in circuit.flip_flops)

    def test_random_order_is_seeded(self):
        circuit = ripple_counter(6)
        a = build_scan_chains(circuit, order="random", seed=1)
        b = build_scan_chains(circuit, order="random", seed=1)
        c = build_scan_chains(circuit, order="random", seed=2)
        assert [ch.cells for ch in a.chains] == [ch.cells for ch in b.chains]
        assert [ch.cells for ch in a.chains] != [ch.cells for ch in c.chains]

    def test_invalid_parameters(self):
        circuit = ripple_counter(3)
        with pytest.raises(ValueError):
            build_scan_chains(circuit, n_chains=0)
        with pytest.raises(ValueError):
            build_scan_chains(circuit, order="alphabetical")

    def test_shift_transitions_count(self):
        circuit = ripple_counter(4)
        config = build_scan_chains(circuit)
        chain = config.chains[0]
        constant = {cell: 1 for cell in chain.cells}
        assert chain.shift_transitions(constant) == 0
        alternating = {cell: i % 2 for i, cell in enumerate(chain.cells)}
        assert chain.shift_transitions(alternating) == len(chain.cells) - 1


class TestScanApplication:
    def test_capture_profile_matches_toggle_profile(self):
        circuit = b01_like_fsm()
        patterns = random_fully_specified_set(circuit.n_test_pins, 8, seed=1)
        app = ScanTestApplication(circuit)
        trace = app.apply(patterns)
        from repro.cubes.metrics import peak_toggles

        assert trace.peak_capture_input_toggles == peak_toggles(patterns)
        assert len(trace.capture_cycles) == len(patterns) - 1

    def test_circuit_simulation_option(self):
        circuit = b01_like_fsm()
        patterns = random_fully_specified_set(circuit.n_test_pins, 6, seed=2)
        trace = ScanTestApplication(circuit).apply(patterns, simulate_circuit=True)
        assert trace.peak_capture_circuit_toggles > 0

    def test_requires_filled_patterns(self):
        circuit = b01_like_fsm()
        app = ScanTestApplication(circuit)
        with pytest.raises(ValueError):
            app.apply(TestSet.from_strings(["0X" + "0" * (circuit.n_test_pins - 2)]))

    def test_wrong_width_rejected(self):
        circuit = b01_like_fsm()
        app = ScanTestApplication(circuit)
        with pytest.raises(ValueError):
            app.apply(random_fully_specified_set(3, 4))

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            ScanTestApplication(b01_like_fsm(), scheme="LOQ")

    def test_non_preserving_dft_is_pessimistic(self):
        circuit = b01_like_fsm()
        patterns = random_fully_specified_set(circuit.n_test_pins, 8, seed=3)
        preserving = ScanTestApplication(circuit, state_preserving_dft=True).apply(patterns)
        conventional = ScanTestApplication(circuit, state_preserving_dft=False).apply(patterns)
        assert conventional.peak_capture_input_toggles >= preserving.peak_capture_input_toggles

    def test_cycle_accounting(self):
        circuit = ripple_counter(5)
        patterns = random_fully_specified_set(circuit.n_test_pins, 4, seed=0)
        trace = ScanTestApplication(circuit).apply(patterns)
        assert trace.shift_cycles_per_pattern == 5
        assert trace.test_cycles == 4 * (5 + 1)


class TestCapacitanceModel:
    def test_every_net_has_positive_capacitance(self):
        circuit = c17()
        model = extract_capacitances(circuit)
        assert set(model.net_capacitance_ff) == set(circuit.nets())
        assert all(value > 0 for value in model.net_capacitance_ff.values())

    def test_extraction_is_deterministic(self):
        circuit = c17()
        a = extract_capacitances(circuit, seed=4)
        b = extract_capacitances(circuit, seed=4)
        assert a.net_capacitance_ff == b.net_capacitance_ff

    def test_fanout_correlation(self):
        circuit = c17()
        model = extract_capacitances(circuit)
        counts = circuit.fanout_counts()
        high = [model.capacitance_of(n) for n, c in counts.items() if c >= 2]
        low = [model.capacitance_of(n) for n, c in counts.items() if c == 1]
        assert np.mean(high) > np.mean(low)

    def test_invalid_technology_parameters(self):
        with pytest.raises(ValueError):
            TechnologyParameters(gate_input_cap_ff=0.0)
        with pytest.raises(ValueError):
            TechnologyParameters(wire_variation=1.5)
        with pytest.raises(ValueError):
            TechnologyParameters(supply_voltage=-1.0)


class TestSwitchingAndPower:
    def test_identical_patterns_switch_nothing(self):
        circuit = b01_like_fsm()
        pattern = np.ones((4, circuit.n_test_pins), dtype=np.int8)
        activity = weighted_switching_activity(circuit, TestSet.from_matrix(pattern))
        assert activity.peak_toggles == 0
        assert activity.peak_switched_capacitance_ff == 0.0

    def test_requires_filled_patterns(self):
        circuit = b01_like_fsm()
        cubes = TestSet.from_strings(["0X" + "0" * (circuit.n_test_pins - 2)] * 2)
        with pytest.raises(ValueError):
            weighted_switching_activity(circuit, cubes)

    def test_power_report_fields(self):
        circuit = b01_like_fsm()
        patterns = random_fully_specified_set(circuit.n_test_pins, 10, seed=5)
        report = PowerEstimator(circuit).estimate(patterns)
        assert report.peak_power_uw >= report.average_power_uw >= 0.0
        assert 0 <= report.peak_boundary < len(patterns) - 1
        assert report.peak_input_toggles > 0

    def test_single_pattern_has_zero_power(self):
        circuit = b01_like_fsm()
        report = PowerEstimator(circuit).estimate(
            random_fully_specified_set(circuit.n_test_pins, 1, seed=0)
        )
        assert report.peak_power_uw == 0.0 and report.peak_boundary == -1

    def test_dpfill_reduces_peak_power_vs_zero_fill_on_x_rich_set(self):
        """Integration: on an X-dominated cube set the DP-filled patterns burn
        less peak capture power than 0-fill under the same extraction."""
        circuit = itc99_like("b10")
        cubes = generate_cube_set_like(circuit.n_test_pins, 32, 70.0, seed=10)
        estimator = PowerEstimator(circuit)
        zero = estimator.estimate(get_filler("0-fill").fill(cubes))
        optimal = estimator.estimate(get_filler("DP-fill").fill(cubes))
        assert optimal.peak_power_uw <= zero.peak_power_uw
