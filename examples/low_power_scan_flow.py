#!/usr/bin/env python
"""Full low-power scan-test flow on a circuit, from ATPG to capture power.

This is the paper's complete pipeline in miniature:

1. build a circuit (an ITC'99-profile stand-in, b08-sized),
2. run the PODEM ATPG to get don't-care-rich test cubes and measure coverage,
3. apply three techniques — the tool baseline, X-Stat, and the proposed
   I-Ordering + DP-fill — to the same cube set,
4. verify that X-filling did not lose any fault coverage,
5. shift the patterns through the scan chains (LOS scheme) and estimate peak
   capture power with the capacitance-weighted switching model.

Run with ``python examples/low_power_scan_flow.py``.
"""

from __future__ import annotations

from repro.atpg import FaultSimulator, collapse_faults, generate_test_cubes
from repro.circuit import itc99_like
from repro.experiments.techniques import TECHNIQUES, apply_all_techniques
from repro.power import PowerEstimator
from repro.scan import ScanTestApplication, build_scan_chains


def main() -> None:
    # 1. Circuit: a b08-profile stand-in (about 200 gates, 30 test pins).
    circuit = itc99_like("b08")
    stats = circuit.stats()
    print(f"circuit {circuit.name}: {stats['gates']} gates, {stats['flip_flops']} flip-flops, "
          f"{stats['test_pins']} test pins, depth {stats['depth']}")

    # 2. ATPG: PODEM + fault dropping over the collapsed stuck-at fault list.
    atpg = generate_test_cubes(circuit, max_faults=150, backtrack_limit=20)
    cubes = atpg.cubes
    print(f"ATPG: {len(cubes)} cubes, fault coverage {100 * atpg.fault_coverage:.1f}%, "
          f"X density {atpg.x_percent:.1f}%")

    # 3. Low-power techniques on the same cube set.
    outcomes = apply_all_techniques(cubes)
    print("\npeak input toggles per technique:")
    for name in TECHNIQUES:
        print(f"  {name:>9}: {outcomes[name].peak_input_toggles}")

    # 4. X-filling must never lose coverage: every filled set still detects the
    #    faults the cubes were generated for (filling only constrains X bits).
    simulator = FaultSimulator(circuit)
    faults = collapse_faults(circuit)
    baseline_coverage = simulator.run(outcomes["Tool"].filled, faults).coverage
    proposed_coverage = simulator.run(outcomes["Proposed"].filled, faults).coverage
    print(f"\nstuck-at coverage of the filled sets: tool {100 * baseline_coverage:.1f}%, "
          f"proposed {100 * proposed_coverage:.1f}%")

    # 5. Scan application (LOS, state-preserving DFT) and capture power.
    scan = build_scan_chains(circuit, n_chains=2)
    application = ScanTestApplication(circuit, scan_config=scan, scheme="LOS")
    estimator = PowerEstimator(circuit)
    print("\nLOS application and peak capture power:")
    for name in ("Tool", "XStat", "Proposed"):
        filled = outcomes[name].filled
        trace = application.apply(filled, simulate_circuit=True)
        power = estimator.estimate(filled)
        print(f"  {name:>9}: peak capture input toggles {trace.peak_capture_input_toggles:3d}, "
              f"peak circuit toggles {trace.peak_capture_circuit_toggles:4d}, "
              f"peak power {power.peak_power_uw:7.1f} uW, "
              f"shift transitions {trace.total_shift_transitions}")

    correlation = estimator.estimate(outcomes["Proposed"].filled).activity.input_circuit_correlation()
    print(f"\ninput-toggle vs circuit-toggle correlation (proposed): {correlation:.2f}")


if __name__ == "__main__":
    main()
