#!/usr/bin/env python
"""Quickstart: optimally fill a small test-cube set with DP-fill.

This example walks the paper's core idea end to end on a hand-sized instance:

1. build a partially specified cube set (the kind an ATPG tool emits),
2. compare the classic fills (0/1/random/MT/adjacent/X-Stat) on peak toggles,
3. run DP-fill and show that it meets its proved lower bound,
4. run the I-Ordering search and show the extra head-room an ordering buys.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import TestSet, dp_fill, interleaved_ordering, toggle_profile
from repro.filling import available_fillers, get_filler


def main() -> None:
    # A cube set with 10 patterns over 12 pins; X marks the don't-cares the
    # ATPG left unconstrained.  Ordering matters: these are applied in order.
    cubes = TestSet.from_strings(
        [
            "0XX1XXXX10XX",
            "1XXXXX0X1XXX",
            "XX01XXXX1XX0",
            "0XXXX11XXXX1",
            "XX1XXXX0XXX1",
            "1X0XXXXXXX0X",
            "XXX0X1XXXX11",
            "0XXXXXX10XXX",
            "X1XXX0XXXX0X",
            "XX1X0XXXXXX0",
        ]
    )
    print(f"cube set: {len(cubes)} patterns x {cubes.n_pins} pins, "
          f"{100 * cubes.x_fraction:.0f}% don't-cares\n")

    print("peak input toggles by X-filling method (generation order):")
    for name in ("0-fill", "1-fill", "R-fill", "MT-fill", "Adj-fill", "B-fill"):
        outcome = get_filler(name).run(cubes)
        print(f"  {name:>8}: peak={outcome.peak_toggles:2d}  total={outcome.total_toggles}")

    report = dp_fill(cubes)
    print(f"  {'DP-fill':>8}: peak={report.peak_toggles:2d}  total={sum(report.boundary_profile)}")
    print(f"\nDP-fill certificate: achieved peak {report.peak_toggles} == proved lower bound "
          f"{report.lower_bound} (optimal for this ordering)")
    print(f"unavoidable toggles at the worst boundary (base peak): {report.base_peak}")
    print("filled patterns:")
    for row in report.filled.to_strings():
        print(f"  {row}")

    ordering = interleaved_ordering(cubes)
    reordered = dp_fill(ordering.ordered)
    print(f"\nI-Ordering: tried k = {[step.k for step in ordering.trace]}, "
          f"best interleave k = {ordering.best_k}")
    print(f"I-Ordering + DP-fill peak: {reordered.peak_toggles} "
          f"(vs {report.peak_toggles} with the original order)")
    profile = [int(v) for v in toggle_profile(reordered.filled)]
    print(f"boundary profile after ordering + fill: {profile}")

    print(f"\nregistered fillers: {', '.join(available_fillers())}")


if __name__ == "__main__":
    main()
