#!/usr/bin/env python
"""Bring your own netlist: parse a .bench file, run ATPG, fill, and verify.

This example shows the library on a user-supplied circuit instead of the
built-in benchmark profiles:

1. parse an ISCAS-style ``.bench`` netlist (embedded below — a small
   sequential design with three flip-flops),
2. collapse the stuck-at fault list and generate cubes with PODEM,
3. fill the cubes with DP-fill,
4. prove with the fault simulator that the filled, reordered patterns detect
   every fault the original cubes targeted,
5. write the circuit back out as ``.bench`` text (round-trip check).

Run with ``python examples/custom_circuit_atpg.py``.
"""

from __future__ import annotations

from repro.atpg import FaultSimulator, collapse_faults, full_fault_list, generate_test_cubes
from repro.circuit import parse_bench, write_bench
from repro.core.dpfill import dp_fill
from repro.core.ordering import interleaved_ordering

BENCH_TEXT = """
# tiny_ctrl: a small controller with 3 state bits
INPUT(start)
INPUT(mode)
INPUT(din)
OUTPUT(done)
OUTPUT(busy)

n_idle = NOR(start, s1)
step   = AND(s0, mode)
n_s0   = OR(start, step)
feed   = XOR(din, s2)
n_s1   = AND(n_s0, feed)
n_s2   = NAND(s1, feed)
done   = AND(s1, s2)
busy   = OR(s0, n_idle)

s0 = DFF(n_s0)
s1 = DFF(n_s1)
s2 = DFF(n_s2)
"""


def main() -> None:
    # 1. Parse and inspect the netlist.
    circuit = parse_bench(BENCH_TEXT, name="tiny_ctrl")
    stats = circuit.stats()
    print(f"parsed {circuit.name}: {stats['gates']} gates, {stats['flip_flops']} flip-flops, "
          f"{stats['primary_inputs']} PIs, depth {stats['depth']}")
    print(f"test pins (PIs + scan cells): {circuit.combinational_inputs}")

    # 2. Fault universe and ATPG.
    universe = full_fault_list(circuit)
    collapsed = collapse_faults(circuit)
    print(f"\nfault universe: {len(universe)} stuck-at faults, {len(collapsed)} after collapsing")
    atpg = generate_test_cubes(circuit)
    print(f"PODEM generated {len(atpg.cubes)} cubes, fault coverage "
          f"{100 * atpg.fault_coverage:.1f}%, X density {atpg.x_percent:.1f}%")
    for cube, name in zip(atpg.cubes.to_strings(), atpg.cubes.names):
        print(f"  {cube}   # targets {name}")

    # 3. Order + fill.
    ordered = interleaved_ordering(atpg.cubes).ordered
    report = dp_fill(ordered)
    print(f"\nI-Ordering + DP-fill: peak input toggles {report.peak_toggles} "
          f"(lower bound {report.lower_bound})")

    # 4. Coverage is preserved by construction (filling only assigns X bits);
    #    demonstrate it explicitly with the fault simulator.
    simulator = FaultSimulator(circuit)
    before = simulator.run(report.filled, collapsed)
    print(f"filled pattern set still detects {before.detected_count}/{len(collapsed)} "
          f"collapsed faults ({100 * before.coverage:.1f}% coverage)")

    # 5. Round-trip the netlist.
    regenerated = parse_bench(write_bench(circuit), name=circuit.name)
    assert regenerated.n_gates == circuit.n_gates
    assert regenerated.combinational_inputs == circuit.combinational_inputs
    print("\n.bench round-trip: OK")


if __name__ == "__main__":
    main()
