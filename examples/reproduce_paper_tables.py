#!/usr/bin/env python
"""Regenerate the paper's headline tables from the public API.

Equivalent to running the ``dpfill-experiments`` command, but shown as a
script so the experiment harness can be driven programmatically (e.g. from a
notebook or a sweep over seeds).  By default it reproduces Tables II, IV and
V on a handful of benchmarks; pass benchmark names as arguments to change the
set, e.g. ``python examples/reproduce_paper_tables.py b03 b08 b12``.
"""

from __future__ import annotations

import sys

from repro.experiments import table2, table4, table5
from repro.experiments.report import render_table


def main() -> None:
    names = sys.argv[1:] or ["b01", "b03", "b08", "b04", "b12"]
    print(f"reproducing Tables II, IV and V on: {', '.join(names)}\n")
    for module in (table2, table4, table5):
        result = module.run(names)
        print(render_table(result))
        print()

    table5_rows = table5.run(names).rows
    improvements = [row["%impr XStat"] for row in table5_rows if row["%impr XStat"] is not None]
    if improvements:
        print(f"mean improvement of I-Ordering + DP-fill over X-Stat: "
              f"{sum(improvements) / len(improvements):.1f}%")


if __name__ == "__main__":
    main()
