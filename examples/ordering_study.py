#!/usr/bin/env python
"""Ordering study: how much of the peak-power saving comes from the ordering?

DP-fill is optimal *given* an ordering, so the remaining freedom is the order
in which patterns are applied.  This example sweeps every registered ordering
on one X-dominated cube set, grades each with DP-fill (so the comparison
isolates the ordering's contribution), and prints the I-Ordering search trace
that Fig. 2(a) of the paper plots.

Run with ``python examples/ordering_study.py``.
"""

from __future__ import annotations

from repro.core.dpfill import dp_fill
from repro.core.ordering import interleaved_ordering
from repro.cubes.generator import CubeSetSpec, generate_cube_set
from repro.cubes.metrics import stretch_histogram
from repro.orderings import available_orderings, get_ordering


def main() -> None:
    # An X-dominated cube set in the regime the paper targets (80 % don't-cares).
    cubes = generate_cube_set(CubeSetSpec(n_pins=150, n_patterns=90, x_fraction=0.8, seed=42))
    print(f"cube set: {len(cubes)} patterns x {cubes.n_pins} pins, "
          f"{100 * cubes.x_fraction:.0f}% don't-cares\n")

    print("optimal (DP-fill) peak input toggles per ordering:")
    results = {}
    for name in available_orderings():
        ordering = get_ordering(name)
        ordered = ordering.order(cubes).ordered
        report = dp_fill(ordered)
        stats = stretch_histogram(ordered)
        results[name] = report.peak_toggles
        print(f"  {name:>15}: peak={report.peak_toggles:3d}   "
              f"mean X-stretch={stats.mean_length:5.2f}   max stretch={stats.max_length}")

    best = min(results, key=results.get)
    print(f"\nbest ordering under DP-fill: {best} (peak {results[best]})")

    trace = interleaved_ordering(cubes)
    print("\nI-Ordering search trace (Fig. 2(a) style):")
    for step in trace.trace:
        marker = "improved" if step.improved else "stop"
        print(f"  k={step.k:2d}  optimal peak={step.peak:3d}  [{marker}]")
    print(f"chosen interleave size: {trace.best_k}, iterations: {trace.iterations}")


if __name__ == "__main__":
    main()
