"""repro — a reproduction of "DP-fill: A Dynamic Programming approach to
X-filling for minimizing peak test power in scan tests" (DATE 2015).

The package implements the paper's optimal X-filling algorithm (DP-fill), the
interleaved test-vector ordering (I-Ordering), every baseline fill/ordering
the paper compares against, and the full substrate needed to regenerate the
evaluation: a gate-level netlist library with an ISCAS ``.bench`` front end,
a PODEM ATPG, fault simulation, scan-chain/LOS test application and a
capacitance-weighted switching-power model.

Quickstart
----------

>>> from repro import TestSet, dp_fill, interleaved_ordering
>>> cubes = TestSet.from_strings(["0XX1", "1X0X", "XX11", "0X0X"])
>>> ordered = interleaved_ordering(cubes).ordered
>>> report = dp_fill(ordered)
>>> report.peak_toggles == report.lower_bound
True

See ``examples/`` for complete flows and ``repro.experiments`` for the
table/figure reproductions.
"""

from repro.core import (
    DPFillReport,
    OrderingResult,
    bcp_lower_bound,
    dp_fill,
    extract_intervals,
    greedy_coloring,
    interleaved_ordering,
    solve_bcp,
    solve_weighted_bcp,
)
from repro.cubes import (
    ONE,
    X,
    ZERO,
    TestCube,
    TestSet,
    hamming_distance,
    peak_toggles,
    stretch_histogram,
    toggle_profile,
    total_toggles,
    x_density,
)
from repro.engine import (
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.filling import Filler, available_fillers, get_filler
from repro.orderings import Ordering, available_orderings, get_ordering

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # cubes
    "ZERO",
    "ONE",
    "X",
    "TestCube",
    "TestSet",
    "hamming_distance",
    "peak_toggles",
    "toggle_profile",
    "total_toggles",
    "x_density",
    "stretch_histogram",
    # core
    "dp_fill",
    "DPFillReport",
    "extract_intervals",
    "bcp_lower_bound",
    "greedy_coloring",
    "solve_bcp",
    "solve_weighted_bcp",
    "interleaved_ordering",
    "OrderingResult",
    # registries
    "Filler",
    "get_filler",
    "available_fillers",
    "Ordering",
    "get_ordering",
    "available_orderings",
    # simulation backends
    "get_backend",
    "register_backend",
    "set_default_backend",
    "available_backends",
]
