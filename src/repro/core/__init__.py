"""The paper's primary contribution: DP-fill and I-Ordering.

The package is organised exactly along the paper's sections:

``intervals``
    Section V-C — preprocessing of the pin matrix and extraction of the
    toggle intervals that form the Bottleneck Coloring Problem instance.
``bcp``
    Section VI-A/B — the dynamic-programming lower bound (Algorithm 1), the
    heap-based greedy colouring (Algorithm 2), and a base-load-aware exact
    solver for the true peak-input-toggle objective.
``dpfill``
    Section V-D — constructing the optimally filled pattern set from the
    BCP solution.
``ordering``
    Section VI-D — the interleaved test-vector ordering (Algorithm 3).
"""

from repro.core.bcp import (
    BCPSolution,
    bcp_lower_bound,
    greedy_coloring,
    solve_bcp,
    solve_weighted_bcp,
    weighted_lower_bound,
    weighted_peak_bound,
)
from repro.core.dpfill import (
    DPFillReport,
    dp_fill,
    optimal_peak_for_ordering,
    optimal_peak_for_permutation,
)
from repro.core.intervals import (
    ExtractionPlan,
    ExtractionResult,
    ToggleInterval,
    extract_intervals,
)
from repro.core.ordering import InterleaveStep, OrderingResult, interleaved_ordering

__all__ = [
    "ToggleInterval",
    "ExtractionPlan",
    "ExtractionResult",
    "extract_intervals",
    "BCPSolution",
    "bcp_lower_bound",
    "weighted_lower_bound",
    "weighted_peak_bound",
    "greedy_coloring",
    "solve_bcp",
    "solve_weighted_bcp",
    "DPFillReport",
    "dp_fill",
    "optimal_peak_for_ordering",
    "optimal_peak_for_permutation",
    "OrderingResult",
    "InterleaveStep",
    "interleaved_ordering",
]
