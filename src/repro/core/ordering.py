"""Interleaved test-vector ordering — I-Ordering (paper Algorithm 3, §VI-D).

DP-fill is optimal *for a given ordering*; the remaining lever is the
ordering itself.  Long don't-care stretches in the pin matrix give the BCP
wide intervals, which lets toggles be spread thin.  I-Ordering creates such
stretches by sorting the cubes by don't-care count and interleaving: one
densely specified cube followed by ``k`` X-rich cubes, for increasing
interleave sizes ``k``, keeping the ``k`` whose DP-fill bottleneck is best.
The search stops as soon as increasing ``k`` stops helping; the paper
observes (Fig. 2(b)) that the number of iterations grows like ``log n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.dpfill import optimal_peak_for_permutation
from repro.core.intervals import ExtractionPlan, ExtractionResult, extract_intervals
from repro.cubes.cube import TestSet

Evaluator = Callable[[TestSet], int]


@dataclass(frozen=True)
class InterleaveStep:
    """One iteration of the I-Ordering search.

    Attributes:
        k: interleave size tried (number of X-rich cubes per dense cube).
        peak: optimal DP-fill bottleneck of the candidate ordering.
        improved: whether this step improved on the best value so far.
    """

    k: int
    peak: int
    improved: bool


@dataclass
class OrderingResult:
    """Outcome of an ordering algorithm.

    Attributes:
        ordered: the reordered pattern set.
        permutation: indices into the *input* set, such that
            ``input.reordered(permutation) == ordered``.
        peak: optimal peak-toggle value of the chosen ordering (DP-fill
            evaluation), when the algorithm evaluates it; ``None`` for
            orderings that do not evaluate (e.g. the tool ordering).
        trace: per-iteration search trace (I-Ordering only; used for
            Fig. 2(a) and 2(b)).
        iterations: number of candidate orderings evaluated.
    """

    ordered: TestSet
    permutation: List[int]
    peak: Optional[int] = None
    trace: List[InterleaveStep] = field(default_factory=list)
    iterations: int = 0
    _extraction: Optional[ExtractionResult] = field(default=None, repr=False)

    @property
    def extraction(self) -> ExtractionResult:
        """The BCP extraction of ``ordered`` (computed lazily, then cached).

        Pass it to :func:`repro.core.dpfill.dp_fill` to skip the
        re-extraction in the order-then-fill flow; callers that only want
        the ordering (e.g. the Fig. 2 traces) never pay for it.
        """
        if self._extraction is None:
            self._extraction = extract_intervals(self.ordered)
        return self._extraction

    @property
    def best_k(self) -> Optional[int]:
        """Interleave size of the best step in the trace, if any."""
        improved = [step for step in self.trace if step.improved]
        return improved[-1].k if improved else None


def interleave_permutation(sorted_indices: List[int], k: int) -> List[int]:
    """Build the interleaved order for a given interleave size ``k``.

    ``sorted_indices`` lists pattern indices from fewest to most don't-cares.
    The result alternates one dense cube (taken from the front) with ``k``
    X-rich cubes (taken from the back), exactly the schedule of Algorithm 3's
    inner loop, with the leftover handling made explicit.
    """
    if k < 1:
        raise ValueError("interleave size k must be at least 1")
    order: List[int] = []
    front, back = 0, len(sorted_indices) - 1
    while front <= back:
        order.append(sorted_indices[front])
        front += 1
        for __ in range(k):
            if back < front:
                break
            order.append(sorted_indices[back])
            back -= 1
    return order


def interleaved_ordering(
    patterns: TestSet,
    evaluator: Optional[Evaluator] = None,
    max_k: Optional[int] = None,
) -> OrderingResult:
    """Compute the I-Ordering of a cube set (Algorithm 3).

    Args:
        patterns: the cube set in its original (tool) order.
        evaluator: function mapping a candidate ordering to its optimal
            peak-toggle value.  Defaults to the DP-fill weighted-BCP
            evaluation, which is what the paper uses.
        max_k: optional hard cap on the interleave size, mainly for tests;
            the natural stop is the first non-improving ``k``.

    Returns:
        An :class:`OrderingResult` whose ``ordered`` set achieved the best
        bottleneck over all interleave sizes tried.  The search trace lists
        every ``(k, peak)`` pair for the figure-2 reproductions.

    Note:
        One engineering strengthening over the literal Algorithm 3: the input
        ordering itself is kept as a fallback candidate, so the returned
        ordering is never worse (under DP-fill) than the order the patterns
        arrived in.  The paper's algorithm only searches interleavings of the
        density-sorted list; on cube sets where that whole family happens to
        be worse than the generation order, the fallback preserves the
        "I-Ordering never hurts" property the evaluation relies on.

    Performance:
        With the default evaluator, the search builds one
        :class:`~repro.core.intervals.ExtractionPlan` and evaluates every
        candidate ``k`` through
        :func:`~repro.core.dpfill.optimal_peak_for_permutation` — the
        specified-bit structure is permuted instead of re-extracted from
        scratch, and no candidate :class:`TestSet` is ever materialised.
        A custom ``evaluator`` gets the literal (materialise-and-evaluate)
        behaviour.  Either way the returned values are identical.
    """
    n = len(patterns)
    plan: Optional[ExtractionPlan] = None
    if evaluator is None:
        plan = ExtractionPlan.from_test_set(patterns)

        def evaluate_permutation(permutation: Optional[List[int]]) -> int:
            return optimal_peak_for_permutation(plan, permutation)

    else:

        def evaluate_permutation(permutation: Optional[List[int]]) -> int:
            if permutation is None:
                return evaluator(patterns)
            return evaluator(patterns.reordered(permutation))

    if n <= 2:
        permutation = list(range(n))
        peak = evaluate_permutation(None) if n else 0
        return OrderingResult(
            ordered=patterns.copy(),
            permutation=permutation,
            peak=peak,
            trace=[],
            iterations=0,
        )

    x_counts = patterns.x_counts_per_pattern()
    sorted_indices = [int(i) for i in np.argsort(x_counts, kind="stable")]
    identity_peak = evaluate_permutation(None)

    best_peak: Optional[int] = None
    best_permutation: List[int] = list(range(n))
    trace: List[InterleaveStep] = []
    k = 0
    upper_k = max_k if max_k is not None else n - 1
    while True:
        k += 1
        if k > upper_k:
            break
        permutation = interleave_permutation(sorted_indices, k)
        peak = evaluate_permutation(permutation)
        improved = best_peak is None or peak < best_peak
        trace.append(InterleaveStep(k=k, peak=peak, improved=improved))
        if improved:
            best_peak = peak
            best_permutation = permutation
        else:
            break

    if best_peak is None or identity_peak < best_peak:
        best_peak = identity_peak
        best_permutation = list(range(n))

    ordered = patterns.reordered(best_permutation)
    return OrderingResult(
        ordered=ordered,
        permutation=best_permutation,
        peak=best_peak,
        trace=trace,
        iterations=len(trace),
    )
