"""Bottleneck Coloring Problem solvers (paper §V-B and §VI).

The BCP instance consists of intervals over *boundaries* (colours): interval
``i`` must be assigned one colour ``c`` with ``start_i <= c <= end_i`` and we
minimise the maximum number of intervals sharing a colour.

Three solvers are provided:

* :func:`bcp_lower_bound` — the paper's Algorithm 1.  For every window
  ``[i, j]`` of colours, every interval contained in the window must be
  coloured inside it, so the bottleneck is at least
  ``ceil(T(i, j) / (j - i + 1))`` where ``T(i, j)`` counts the contained
  intervals.
* :func:`greedy_coloring` — the paper's Algorithm 2.  Sweep the colours left
  to right keeping a min-heap of released intervals ordered by deadline
  (end) and colour up to ``capacity`` of them per colour.  With
  ``capacity = lower bound`` this meets the bound, which proves optimality.
* :func:`solve_weighted_bcp` — a base-load-aware generalisation.  Real cube
  sets also contain *unavoidable* toggles (adjacent specified bits that
  differ); the true peak equals ``max_c (base_c + h_c)``.  Because every
  interval's admissible colour set is a contiguous window, Hall's condition
  reduces to contiguous windows and the optimum is
  ``max(max_c base_c, max_{i<=j} ceil((T(i,j) + sum(base_i..j)) / (j-i+1)))``;
  the same earliest-deadline-first sweep with per-colour capacities
  ``B - base_c`` then constructs a witness assignment.

The paper's DP-fill uses the unweighted solver; :func:`repro.core.dpfill.dp_fill`
defaults to the weighted solver so that its output is optimal for the true
peak-input-toggle objective, and can be switched back for a literal
reproduction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.intervals import ToggleInterval

IntervalLike = ToggleInterval


class InfeasibleColoringError(RuntimeError):
    """Raised when the greedy sweep cannot colour every interval within capacity."""


@dataclass
class BCPSolution:
    """A colouring of a BCP instance.

    Attributes:
        colors: assigned colour (boundary index) per interval, aligned with
            the input interval order.
        histogram: per-colour interval counts, length ``n_colors``.
        peak: the bottleneck value actually achieved; for the weighted solver
            this includes the base loads.
        lower_bound: the proved lower bound the solution meets.
    """

    colors: np.ndarray
    histogram: np.ndarray
    peak: int
    lower_bound: int

    @property
    def is_optimal(self) -> bool:
        """``True`` when the achieved peak equals the proved lower bound."""
        return self.peak == self.lower_bound


def _interval_arrays(intervals: Sequence[IntervalLike]) -> tuple:
    starts = np.array([iv.start for iv in intervals], dtype=np.int64)
    ends = np.array([iv.end for iv in intervals], dtype=np.int64)
    if starts.size and (starts > ends).any():
        raise ValueError("every interval must satisfy start <= end")
    if starts.size and (starts < 0).any():
        raise ValueError("interval starts must be non-negative")
    return starts, ends


def _window_table(starts: np.ndarray, ends: np.ndarray) -> tuple:
    """Compressed-coordinate table ``T[a, b]`` of intervals inside window
    ``[unique_starts[a], unique_ends[b]]``.

    Only windows whose left edge is some interval's start and whose right
    edge is some interval's end can maximise the bound, so the compression is
    lossless while keeping the table ``O(k^2)`` as in the paper.
    """
    unique_starts = np.unique(starts)
    unique_ends = np.unique(ends)
    start_idx = np.searchsorted(unique_starts, starts)
    end_idx = np.searchsorted(unique_ends, ends)
    count = np.zeros((unique_starts.size, unique_ends.size), dtype=np.int64)
    np.add.at(count, (start_idx, end_idx), 1)
    # T[a, b] = number of intervals with start >= unique_starts[a] and
    # end <= unique_ends[b]: suffix-sum along starts, prefix-sum along ends.
    table = np.cumsum(count[::-1, :], axis=0)[::-1, :]
    table = np.cumsum(table, axis=1)
    return unique_starts, unique_ends, table


def bcp_lower_bound(intervals: Sequence[IntervalLike]) -> int:
    """Algorithm 1: lower bound on the bottleneck of any valid colouring.

    Returns 0 for an empty instance.
    """
    if not intervals:
        return 0
    starts, ends = _interval_arrays(intervals)
    unique_starts, unique_ends, table = _window_table(starts, ends)
    widths = unique_ends[None, :] - unique_starts[:, None] + 1
    valid = widths >= 1
    ratios = np.zeros_like(table, dtype=np.float64)
    ratios[valid] = table[valid] / widths[valid]
    return int(np.ceil(ratios.max() - 1e-12)) if ratios.size else 0


def weighted_lower_bound(
    intervals: Sequence[IntervalLike],
    base_loads: np.ndarray,
) -> int:
    """Lower bound (in fact the exact optimum) of the base-load-aware BCP.

    Args:
        intervals: the toggle intervals.
        base_loads: per-colour unavoidable load, length at least
            ``max(end) + 1``.

    Returns:
        ``max(max base load, max over windows of
        ceil((contained intervals + window base load) / window width))``.
    """
    starts, ends = _interval_arrays(intervals)
    return weighted_peak_bound(starts, ends, base_loads)


def weighted_peak_bound(
    starts: np.ndarray, ends: np.ndarray, base_loads: np.ndarray
) -> int:
    """:func:`weighted_lower_bound` on raw start/end arrays.

    This is the evaluation primitive of the I-Ordering search: because the
    bound is *exact* (Hall's condition reduces to contiguous windows, see
    :func:`solve_weighted_bcp`), the optimal peak of a candidate ordering can
    be computed from interval arrays alone — no
    :class:`~repro.core.intervals.ToggleInterval` objects, no colouring.
    """
    base = np.asarray(base_loads, dtype=np.int64)
    base_peak = int(base.max()) if base.size else 0
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    if starts.size == 0:
        return base_peak
    if (starts > ends).any():
        raise ValueError("every interval must satisfy start <= end")
    if (starts < 0).any():
        raise ValueError("interval starts must be non-negative")
    if base.size <= int(ends.max()):
        raise ValueError("base_loads shorter than the largest interval end")
    unique_starts, unique_ends, table = _window_table(starts, ends)
    prefix = np.concatenate(([0], np.cumsum(base)))
    window_base = prefix[unique_ends + 1][None, :] - prefix[unique_starts][:, None]
    widths = unique_ends[None, :] - unique_starts[:, None] + 1
    valid = widths >= 1
    ratios = np.zeros_like(table, dtype=np.float64)
    ratios[valid] = (table[valid] + window_base[valid]) / widths[valid]
    window_bound = int(np.ceil(ratios.max() - 1e-12)) if ratios.size else 0
    return max(base_peak, window_bound)


def greedy_coloring(
    intervals: Sequence[IntervalLike],
    capacity: Union[int, np.ndarray],
    n_colors: Optional[int] = None,
) -> np.ndarray:
    """Algorithm 2: earliest-deadline-first sweep colouring.

    Args:
        intervals: the intervals to colour.
        capacity: maximum number of intervals that may receive each colour —
            either a scalar (the paper's ``LB``) or a per-colour array
            (``B - base`` for the weighted solver).
        n_colors: number of colours available; defaults to ``max(end) + 1``.

    Returns:
        One colour per interval, aligned with the input order.

    Raises:
        InfeasibleColoringError: if some interval cannot be coloured within
            its window under the given capacities.  With ``capacity`` equal
            to the corresponding lower bound this never happens.
    """
    k = len(intervals)
    colors = np.full(k, -1, dtype=np.int64)
    if k == 0:
        return colors
    starts, ends = _interval_arrays(intervals)
    max_end = int(ends.max())
    if n_colors is None:
        n_colors = max_end + 1
    if n_colors <= max_end:
        raise ValueError("n_colors must exceed the largest interval end")
    if np.isscalar(capacity):
        capacities = np.full(n_colors, int(capacity), dtype=np.int64)
    else:
        capacities = np.asarray(capacity, dtype=np.int64)
        if capacities.shape[0] < n_colors:
            raise ValueError("capacity array shorter than the number of colours")
    if (capacities < 0).any():
        capacities = np.clip(capacities, 0, None)

    order = np.argsort(starts, kind="stable")
    heap: list = []
    cursor = 0
    for color in range(max_end + 1):
        while cursor < k and starts[order[cursor]] == color:
            idx = int(order[cursor])
            heapq.heappush(heap, (int(ends[idx]), idx))
            cursor += 1
        budget = int(capacities[color])
        taken = 0
        while heap and taken < budget:
            __, idx = heapq.heappop(heap)
            colors[idx] = color
            taken += 1
        if heap and heap[0][0] <= color:
            raise InfeasibleColoringError(
                f"interval ending at boundary {heap[0][0]} missed its deadline at colour {color}"
            )
    if heap or cursor < k:
        raise InfeasibleColoringError("some intervals were never released or coloured")
    return colors


def _histogram(colors: np.ndarray, n_colors: int) -> np.ndarray:
    histogram = np.zeros(n_colors, dtype=np.int64)
    if colors.size:
        np.add.at(histogram, colors, 1)
    return histogram


def solve_bcp(intervals: Sequence[IntervalLike], n_colors: Optional[int] = None) -> BCPSolution:
    """Solve the pure (paper) BCP optimally.

    The achieved peak always equals :func:`bcp_lower_bound`, which is the
    paper's optimality argument.
    """
    starts, ends = _interval_arrays(intervals)
    if n_colors is None:
        n_colors = int(ends.max()) + 1 if ends.size else 0
    lower = bcp_lower_bound(intervals)
    if not intervals:
        return BCPSolution(
            colors=np.zeros(0, dtype=np.int64),
            histogram=np.zeros(n_colors, dtype=np.int64),
            peak=0,
            lower_bound=0,
        )
    colors = greedy_coloring(intervals, lower, n_colors=n_colors)
    histogram = _histogram(colors, n_colors)
    peak = int(histogram.max()) if histogram.size else 0
    return BCPSolution(colors=colors, histogram=histogram, peak=peak, lower_bound=lower)


def solve_weighted_bcp(
    intervals: Sequence[IntervalLike],
    base_loads: np.ndarray,
) -> BCPSolution:
    """Solve the base-load-aware BCP optimally.

    The reported ``peak`` is ``max_c (base_c + h_c)`` — the true peak input
    toggle count of the filled pattern set for the given ordering.
    """
    base = np.asarray(base_loads, dtype=np.int64)
    n_colors = base.shape[0]
    if not intervals:
        peak = int(base.max()) if base.size else 0
        return BCPSolution(
            colors=np.zeros(0, dtype=np.int64),
            histogram=np.zeros(n_colors, dtype=np.int64),
            peak=peak,
            lower_bound=peak,
        )
    bound = weighted_lower_bound(intervals, base)
    colors: Optional[np.ndarray] = None
    # The bound is exact (Hall's condition over contiguous windows), so the
    # first iteration succeeds; the loop is purely defensive.
    for candidate in range(bound, bound + len(intervals) + 1):
        try:
            colors = greedy_coloring(intervals, candidate - base, n_colors=n_colors)
            break
        except InfeasibleColoringError:
            continue
    if colors is None:  # pragma: no cover - unreachable by construction
        raise InfeasibleColoringError("weighted BCP could not be coloured")
    histogram = _histogram(colors, n_colors)
    peak = int((histogram + base).max()) if n_colors else 0
    return BCPSolution(colors=colors, histogram=histogram, peak=peak, lower_bound=bound)
