"""Mapping test cubes to Bottleneck Coloring Problem intervals (paper §V-C).

Terminology
-----------
The ordered cube set is viewed as the paper's pin-major matrix ``A`` with one
row per input pin and one column per pattern.  A *boundary* ``j`` is the gap
between pattern ``j`` and pattern ``j + 1`` (0-based, so a set of ``n``
patterns has ``n - 1`` boundaries).  The peak-toggle objective is the maximum,
over boundaries, of the number of rows whose value changes across that
boundary.

Per row, the specified bits split the pattern axis into stretches:

* ``0 X..X 0`` and ``1 X..X 1`` stretches are filled with the surrounding
  value during preprocessing — the paper proves an optimal solution exists
  that does this, because it contributes zero toggles.
* Leading/trailing X stretches (and all-X rows) are likewise filled with the
  nearest specified value (or 0 for an all-X row); they can always be made
  toggle-free.
* ``0 X..X 1`` and ``1 X..X 0`` stretches must toggle exactly once somewhere
  inside the stretch.  Each becomes a :class:`ToggleInterval` spanning the
  boundaries at which that single toggle may be placed.
* Two adjacent specified bits that differ produce an unavoidable toggle at
  that boundary; these accumulate into the *base toggle* vector.  The paper's
  BCP ignores base toggles; the base-load-aware solver in :mod:`repro.core.bcp`
  uses them to optimise the true objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cubes.bits import BIT_DTYPE, X, ZERO
from repro.cubes.cube import TestSet


@dataclass(frozen=True)
class ToggleInterval:
    """One mandatory toggle whose boundary position is still free.

    Attributes:
        start: first boundary index (inclusive) at which the toggle may occur.
        end: last boundary index (inclusive).  ``start <= end`` always holds.
        row: pin-row index the stretch belongs to.
        left_col: column of the specified bit on the left of the stretch.
        right_col: column of the specified bit on the right of the stretch.
        left_value: value (0/1) of the left specified bit.
        right_value: value of the right specified bit (always ``1 - left_value``).
    """

    start: int
    end: int
    row: int
    left_col: int
    right_col: int
    left_value: int
    right_value: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise ValueError(f"interval start {self.start} exceeds end {self.end}")
        if self.left_value == self.right_value:
            raise ValueError("a toggle interval must join two differing values")

    @property
    def length(self) -> int:
        """Number of candidate boundaries (colours) for this toggle."""
        return self.end - self.start + 1


@dataclass
class ExtractionResult:
    """Output of :func:`extract_intervals`.

    Attributes:
        intervals: the toggle intervals, in row-major discovery order.
        base_toggles: per-boundary count of unavoidable toggles coming from
            adjacent specified bits that differ (length ``n_patterns - 1``).
        prefilled: pin-major matrix with every preprocessing fill applied.
            The only remaining X bits lie strictly inside toggle intervals.
        n_patterns: number of patterns (columns of ``prefilled``).
        n_pins: number of pin rows.
    """

    intervals: List[ToggleInterval]
    base_toggles: np.ndarray
    prefilled: np.ndarray
    n_patterns: int
    n_pins: int

    @property
    def n_boundaries(self) -> int:
        """Number of pattern boundaries (colours available to the BCP)."""
        return max(self.n_patterns - 1, 0)

    @property
    def base_peak(self) -> int:
        """Largest per-boundary unavoidable toggle count."""
        return int(self.base_toggles.max()) if self.base_toggles.size else 0


@dataclass(frozen=True)
class ExtractionPlan:
    """Permutation-reusable skeleton of a cube set's BCP extraction.

    The *set* of specified bits per pin row never changes when patterns are
    reordered — only their column positions do.  This plan captures that
    invariant structure once (row id, original column and value of every
    specified bit, in row-major order) so the interval arrays of **any**
    permutation of the same cube set can be derived with a handful of
    vectorised NumPy passes instead of re-running the python preprocessing
    loop of :func:`extract_intervals` from scratch.

    This is what lets the I-Ordering search evaluate each candidate
    interleave size ``k`` without re-extracting; together with
    :func:`repro.core.bcp.weighted_peak_bound` it forms the fast evaluation
    path of :func:`repro.core.ordering.interleaved_ordering` (see the
    ``bench_core.py`` micro-benchmark for the measured win).

    Attributes:
        n_pins / n_patterns: cube-set shape.
        spec_rows: pin-row index of every specified bit (row-major order).
        spec_cols: original pattern index of every specified bit.
        spec_vals: value (0/1) of every specified bit.
    """

    n_pins: int
    n_patterns: int
    spec_rows: np.ndarray
    spec_cols: np.ndarray
    spec_vals: np.ndarray

    @classmethod
    def from_test_set(cls, patterns: TestSet) -> "ExtractionPlan":
        """Build the plan for ``patterns`` (one pass over the pin matrix)."""
        pin = patterns.pin_matrix()
        rows, cols = np.nonzero(pin != X)
        return cls(
            n_pins=int(pin.shape[0]),
            n_patterns=int(pin.shape[1]),
            spec_rows=rows.astype(np.int64),
            spec_cols=cols.astype(np.int64),
            spec_vals=pin[rows, cols].astype(np.int64),
        )

    def interval_arrays(
        self, permutation: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, ends, base_toggles)`` of the (permuted) cube set.

        The arrays are exactly what :func:`extract_intervals` would produce
        for ``patterns.reordered(permutation)`` — same intervals in the same
        row-major discovery order, same base-toggle vector — minus the
        prefilled matrix (which only the final reconstruction needs).

        Args:
            permutation: original pattern indices in their new order (the
                convention of :meth:`TestSet.reordered`); ``None`` evaluates
                the plan's own order.
        """
        n_boundaries = max(self.n_patterns - 1, 0)
        base = np.zeros(n_boundaries, dtype=np.int64)
        empty = np.zeros(0, dtype=np.int64)
        if self.spec_rows.size < 2:
            return empty, empty, base

        if permutation is None:
            rows, cols, vals = self.spec_rows, self.spec_cols, self.spec_vals
        else:
            perm = np.asarray(permutation, dtype=np.int64)
            if perm.shape[0] != self.n_patterns:
                raise ValueError(
                    f"permutation length {perm.shape[0]} != {self.n_patterns} patterns"
                )
            position = np.empty(self.n_patterns, dtype=np.int64)
            position[perm] = np.arange(self.n_patterns, dtype=np.int64)
            cols = position[self.spec_cols]
            # Stable (row, new column) order reproduces extract_intervals'
            # row-major, left-to-right interval discovery order exactly.
            order = np.lexsort((cols, self.spec_rows))
            rows, cols, vals = self.spec_rows[order], cols[order], self.spec_vals[order]

        toggles = (rows[1:] == rows[:-1]) & (vals[1:] != vals[:-1])
        adjacent = cols[1:] == cols[:-1] + 1
        np.add.at(base, cols[:-1][toggles & adjacent], 1)
        free = toggles & ~adjacent
        return cols[:-1][free], cols[1:][free] - 1, base


def extract_intervals(patterns: TestSet) -> ExtractionResult:
    """Preprocess a cube set and extract its BCP instance.

    The function implements the preprocessing loop and the interval-creation
    loop of §V-C verbatim, plus the (implicit in the paper) handling of
    leading/trailing X runs and all-X rows, which never need to toggle.

    Args:
        patterns: the *ordered* cube set.  Ordering matters; run an ordering
            algorithm first if desired.

    Returns:
        An :class:`ExtractionResult` whose ``prefilled`` matrix contains X
        bits only inside the returned intervals.
    """
    pin = patterns.pin_matrix().astype(BIT_DTYPE)
    n_pins, n_patterns = pin.shape
    n_boundaries = max(n_patterns - 1, 0)
    base = np.zeros(n_boundaries, dtype=np.int64)
    intervals: List[ToggleInterval] = []

    for row in range(n_pins):
        bits = pin[row]
        specified = np.flatnonzero(bits != X)
        if specified.size == 0:
            # An all-X row can be held constant; zero is as good as one.
            bits[:] = ZERO
            continue
        first, last = int(specified[0]), int(specified[-1])
        # Leading and trailing X runs never need to toggle.
        if first > 0:
            bits[:first] = bits[first]
        if last < n_patterns - 1:
            bits[last + 1 :] = bits[last]
        for left, right in zip(specified[:-1], specified[1:]):
            left, right = int(left), int(right)
            left_value, right_value = int(bits[left]), int(bits[right])
            if right == left + 1:
                if left_value != right_value:
                    base[left] += 1
                continue
            if left_value == right_value:
                # 0X..X0 / 1X..X1: fill with the common value (zero toggles).
                bits[left + 1 : right] = left_value
            else:
                # 0X..X1 / 1X..X0: exactly one toggle, position free in
                # boundaries [left, right - 1].
                intervals.append(
                    ToggleInterval(
                        start=left,
                        end=right - 1,
                        row=row,
                        left_col=left,
                        right_col=right,
                        left_value=left_value,
                        right_value=right_value,
                    )
                )

    return ExtractionResult(
        intervals=intervals,
        base_toggles=base,
        prefilled=pin,
        n_patterns=n_patterns,
        n_pins=n_pins,
    )


def apply_assignment(extraction: ExtractionResult, colors: np.ndarray) -> np.ndarray:
    """Materialise a BCP colour assignment into a fully specified pin matrix.

    For an interval coloured ``j`` the paper's reconstruction (§V-D) keeps the
    left value up to and including column ``j`` and the right value from
    column ``j + 1`` onwards.

    Args:
        extraction: result of :func:`extract_intervals`.
        colors: one boundary index per interval, in the same order as
            ``extraction.intervals``.

    Returns:
        A fully specified pin-major matrix.

    Raises:
        ValueError: if an assigned colour falls outside its interval, or if
            any X bit remains after reconstruction.
    """
    if len(colors) != len(extraction.intervals):
        raise ValueError("one colour per interval is required")
    filled = extraction.prefilled.copy()
    for interval, color in zip(extraction.intervals, colors):
        color = int(color)
        if not interval.start <= color <= interval.end:
            raise ValueError(
                f"colour {color} outside interval [{interval.start}, {interval.end}]"
            )
        filled[interval.row, interval.left_col : color + 1] = interval.left_value
        filled[interval.row, color + 1 : interval.right_col] = interval.right_value
    if (filled == X).any():
        raise ValueError("reconstruction left unspecified bits behind")
    return filled
