"""DP-fill: optimal X-filling of an ordered cube set (paper §V-D, §VI).

:func:`dp_fill` is the headline algorithm of the reproduction.  Given an
ordered :class:`~repro.cubes.cube.TestSet` it

1. preprocesses the pin matrix and extracts the toggle intervals
   (:mod:`repro.core.intervals`),
2. solves the resulting Bottleneck Coloring Problem optimally
   (:mod:`repro.core.bcp`), and
3. reconstructs a fully specified pattern set whose peak adjacent Hamming
   distance equals the proved optimum.

Two solver modes are available:

* ``account_base_toggles=True`` (default) — the base-load-aware exact solver.
  The returned peak is optimal for the *true* objective
  ``max_j hd(T_j, T_{j+1})``, including toggles already fixed by adjacent
  specified bits.
* ``account_base_toggles=False`` — the paper's literal formulation, which
  colours intervals ignoring the fixed toggles.  The reconstruction is still
  valid; the achieved peak can exceed the interval-only bottleneck when fixed
  toggles dominate some boundary.  This mode exists for a faithful
  reproduction and for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.bcp import BCPSolution, solve_bcp, solve_weighted_bcp, weighted_peak_bound
from repro.core.intervals import (
    ExtractionPlan,
    ExtractionResult,
    apply_assignment,
    extract_intervals,
)
from repro.cubes.cube import TestSet
from repro.cubes.metrics import peak_toggles, toggle_profile


@dataclass
class DPFillReport:
    """Result of a DP-fill run.

    Attributes:
        filled: the fully specified pattern set (same ordering as the input).
        peak_toggles: achieved peak adjacent Hamming distance.
        lower_bound: proved lower bound for the mode that was run; equal to
            ``peak_toggles`` in the default (base-load-aware) mode.
        base_peak: largest per-boundary count of unavoidable toggles — no
            X-filling under this ordering can beat this value.
        interval_count: number of toggle intervals extracted.
        boundary_profile: per-boundary toggle counts of the filled set.
        solution: the underlying BCP solution (colour assignment).
        account_base_toggles: which solver mode produced the result.
    """

    filled: TestSet
    peak_toggles: int
    lower_bound: int
    base_peak: int
    interval_count: int
    boundary_profile: np.ndarray
    solution: BCPSolution
    account_base_toggles: bool

    @property
    def is_certified_optimal(self) -> bool:
        """``True`` when the achieved peak is proved optimal for the ordering."""
        return self.account_base_toggles and self.peak_toggles == self.lower_bound


def dp_fill(
    patterns: TestSet,
    account_base_toggles: bool = True,
    extraction: Optional[ExtractionResult] = None,
) -> DPFillReport:
    """Optimally fill the X bits of an ordered cube set.

    Args:
        patterns: ordered, possibly partially specified pattern set.
        account_base_toggles: use the base-load-aware exact solver (default)
            or the paper's literal interval-only formulation.
        extraction: optionally reuse a precomputed extraction for exactly
            this ordering of ``patterns``, skipping the extraction pass.
            The I-Ordering search produces one as a by-product
            (:attr:`repro.core.ordering.OrderingResult.extraction`), so the
            order-then-fill flow extracts once instead of twice.

    Returns:
        A :class:`DPFillReport`; ``report.filled`` preserves every specified
        bit of the input and contains no X.
    """
    if len(patterns) == 0:
        empty = TestSet.from_matrix(patterns.matrix.copy())
        return DPFillReport(
            filled=empty,
            peak_toggles=0,
            lower_bound=0,
            base_peak=0,
            interval_count=0,
            boundary_profile=np.zeros(0, dtype=np.int64),
            solution=BCPSolution(
                colors=np.zeros(0, dtype=np.int64),
                histogram=np.zeros(0, dtype=np.int64),
                peak=0,
                lower_bound=0,
            ),
            account_base_toggles=account_base_toggles,
        )

    if extraction is None:
        extraction = extract_intervals(patterns)

    if account_base_toggles:
        solution = solve_weighted_bcp(extraction.intervals, extraction.base_toggles)
    else:
        solution = solve_bcp(extraction.intervals, n_colors=extraction.n_boundaries)

    pin_filled = apply_assignment(extraction, solution.colors)
    filled = patterns.filled(pin_filled.T)

    profile = toggle_profile(filled)
    achieved = int(profile.max()) if profile.size else 0
    if account_base_toggles and achieved != solution.peak:
        raise AssertionError(
            "internal inconsistency: reconstructed peak "
            f"{achieved} differs from solver peak {solution.peak}"
        )

    return DPFillReport(
        filled=filled,
        peak_toggles=achieved,
        lower_bound=solution.lower_bound,
        base_peak=extraction.base_peak,
        interval_count=len(extraction.intervals),
        boundary_profile=profile,
        solution=solution,
        account_base_toggles=account_base_toggles,
    )


def optimal_peak_for_ordering(patterns: TestSet) -> int:
    """Return the optimal peak-toggle value of ``patterns`` without materialising the fill.

    This is the evaluation primitive of the I-Ordering search (Algorithm 3
    line 13): it extracts intervals and evaluates the exact weighted-BCP
    bound, skipping the colouring, reconstruction and verification passes,
    which dominate runtime for large sets.  (The bound *is* the optimum —
    see :func:`repro.core.bcp.weighted_peak_bound`.)
    """
    if len(patterns) < 2:
        return 0
    return optimal_peak_for_permutation(ExtractionPlan.from_test_set(patterns))


def optimal_peak_for_permutation(
    plan: ExtractionPlan, permutation: Optional[list] = None
) -> int:
    """Optimal peak-toggle value of one permutation of a pre-planned cube set.

    The I-Ordering search builds one :class:`~repro.core.intervals.ExtractionPlan`
    for the cube set and calls this per candidate interleave size — the
    per-candidate cost is a few vectorised passes over the specified bits
    instead of a full re-extraction (see the ``bench_core.py``
    micro-benchmark).
    """
    starts, ends, base = plan.interval_arrays(permutation)
    return weighted_peak_bound(starts, ends, base)
