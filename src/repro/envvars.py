"""Single declaration point for every ``REPRO_*`` environment variable.

Every knob the package reads from the environment is declared here as an
:class:`EnvVar` carrying its name, strict parser, documented default and a
one-line doc string.  Modules read through the declaration
(``envvars.JOBS.read()``) instead of touching ``os.environ`` directly —
rule R3 of the static analyzer (:mod:`repro.analysis`) enforces that no
``REPRO_*`` name is read anywhere else, so a new variable cannot ship
without a declaration, a parser and a docs-table entry.

Parsing is strict in the style of :func:`parse_jobs`: a garbage value
(``REPRO_JOBS=-4``, ``REPRO_TRACE=maybe``) raises a :class:`ValueError`
naming the variable and the offending value at configuration time, never an
opaque failure deep inside a run.  Unset (or empty) variables resolve to the
declared default without touching the parser.

The README's environment-variable table is generated from this registry
(:func:`render_table`); the analyzer fails when the two drift.

This module is a leaf: it imports nothing from the rest of the package, so
every layer (engine, cluster, obs, experiments, benchmarks) can depend on
it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "EnvVar",
    "REGISTRY",
    "declare",
    "env_snapshot",
    "render_table",
    "parse_jobs",
    "parse_lease_timeout",
    "parse_task_retries",
    "parse_nonneg_int",
    "parse_flag",
    "parse_choice",
    "FAULT_MODES",
    "ATPG_MODES",
    "CHUNK_PLANS",
]


# -- strict parsers ----------------------------------------------------------
def parse_jobs(value: object, source: str = "jobs") -> int:
    """Parse a worker count, rejecting anything but an integer >= 1.

    Worker counts reach the pool from several surfaces (``--jobs``,
    ``REPRO_JOBS``, python callers); validating here gives every one of them
    the same clear error instead of an opaque traceback deep inside pool
    construction (or a silent clamp hiding a typo like ``--jobs -4``).

    Args:
        value: the raw value (string or number).
        source: label naming the offending surface in the error message.

    Raises:
        ValueError: for non-integer or non-positive values.
    """
    try:
        jobs = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {value!r}"
        ) from None
    if jobs < 1:
        raise ValueError(f"{source} must be a positive integer, got {value!r}")
    return jobs


def parse_nonneg_int(value: object, source: str = "value") -> int:
    """Parse an integer >= 0 with the same strictness as :func:`parse_jobs`.

    Raises:
        ValueError: for non-integer or negative values.
    """
    try:
        parsed = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative integer, got {value!r}"
        ) from None
    if parsed < 0:
        raise ValueError(f"{source} must be a non-negative integer, got {value!r}")
    return parsed


def parse_task_retries(value: object, source: str = "task retries") -> int:
    """Parse a retry budget, rejecting anything but an integer >= 0.

    Every surface the budget can arrive from (env var, transport argument,
    python callers) gets the same clear error instead of an opaque failure
    deep in the retry path.

    Raises:
        ValueError: for non-integer or negative values.
    """
    return parse_nonneg_int(value, source=source)


def parse_lease_timeout(value: object, source: str = "lease timeout") -> float:
    """Parse a lease timeout, rejecting anything but a positive number.

    A mistyped timeout must fail loudly at configuration time, not as a
    mysterious hang or instant-retry storm mid-run.

    Raises:
        ValueError: for non-numeric or non-positive values.
    """
    try:
        timeout = float(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive number of seconds, got {value!r}"
        ) from None
    if not timeout > 0:
        raise ValueError(
            f"{source} must be a positive number of seconds, got {value!r}"
        )
    return timeout


_TRUE_TOKENS = frozenset({"1", "true", "yes", "on"})
_FALSE_TOKENS = frozenset({"0", "false", "no", "off", ""})


def parse_flag(value: object, source: str = "flag") -> bool:
    """Parse an on/off flag; anything outside the known tokens is an error.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` case-insensitively.
    The old lenient readers treated any unknown token as *on* (or silently
    as *off*, depending on the module); a typo like ``REPRO_TRACE=ture``
    now fails loudly instead of silently picking a side.

    Raises:
        ValueError: for unrecognised tokens.
    """
    token = str(value).strip().lower()
    if token in _TRUE_TOKENS:
        return True
    if token in _FALSE_TOKENS:
        return False
    raise ValueError(
        f"{source} must be a boolean flag (1/0/true/false/yes/no/on/off), "
        f"got {value!r}"
    )


def parse_choice(
    choices: Tuple[str, ...], label: str
) -> Callable[[object, str], str]:
    """Build a parser accepting exactly the given choice tokens.

    Args:
        choices: the valid values.
        label: noun used in the error message (``"fault mode"``).
    """

    def parser(value: object, source: str = label) -> str:
        token = str(value).strip()
        if token not in choices:
            raise ValueError(
                f"unknown {label} {token!r}; choose from {choices}"
            )
        return token

    parser.__name__ = f"parse_{label.replace(' ', '_')}"
    parser.choices = choices  # type: ignore[attr-defined]
    return parser


def parse_string(value: object, source: str = "value") -> str:
    """Identity parser for free-form string variables."""
    return str(value)


#: Canonical choice sets (single source; domain modules re-export these).
FAULT_MODES = ("auto", "lanes", "words", "faults")
ATPG_MODES = ("auto", "dict", "compiled")
CHUNK_PLANS = ("adaptive", "static")


# -- the registry ------------------------------------------------------------
@dataclass(frozen=True)
class EnvVar:
    """One declared environment variable.

    Attributes:
        name: the ``REPRO_*`` environment name.
        parser: strict ``(value, source) -> parsed`` callable; raises
            :class:`ValueError` on garbage, naming ``source`` in the error.
        default: parsed value returned when the variable is unset or empty.
        default_doc: human-readable default for the docs table (falls back
            to ``repr(default)``).
        doc: one-line description for the docs table.
        keep_empty: pass an empty-but-set value to the parser instead of
            resolving to the default (for variables where ``""`` means
            something, like disabling a cache directory).
    """

    name: str
    parser: Callable[..., object]
    doc: str
    default: object = None
    default_doc: Optional[str] = None
    keep_empty: bool = False

    def raw(self) -> Optional[str]:
        """The raw (stripped) environment value, or ``None`` when unset."""
        value = os.environ.get(self.name)
        if value is None:
            return None
        value = value.strip()
        if not value and not self.keep_empty:
            return None
        return value

    def is_set(self) -> bool:
        """Whether the variable is set to a non-empty value."""
        return self.raw() is not None

    def read(self) -> object:
        """The parsed value, or the declared default when unset/empty.

        Raises:
            ValueError: when the environment holds a value the strict
                parser rejects; the message names the variable.
        """
        value = self.raw()
        if value is None:
            return self.default
        return self.parser(value, self.name)

    @property
    def default_text(self) -> str:
        """The default as rendered in the docs table."""
        if self.default_doc is not None:
            return self.default_doc
        return repr(self.default)


#: Declaration order is documentation order (the README table follows it).
REGISTRY: Dict[str, EnvVar] = {}


def declare(
    name: str,
    parser: Callable[..., object],
    doc: str,
    default: object = None,
    default_doc: Optional[str] = None,
    keep_empty: bool = False,
) -> EnvVar:
    """Register one environment variable (names must be unique ``REPRO_*``)."""
    if not name.startswith("REPRO_"):
        raise ValueError(f"environment variable {name!r} must start with REPRO_")
    if name in REGISTRY:
        raise ValueError(f"environment variable {name!r} is already declared")
    var = EnvVar(
        name=name,
        parser=parser,
        doc=doc,
        default=default,
        default_doc=default_doc,
        keep_empty=keep_empty,
    )
    REGISTRY[name] = var
    return var


def is_declared(name: str) -> bool:
    """Whether ``name`` is a declared ``REPRO_*`` variable."""
    return name in REGISTRY


def env_snapshot() -> Dict[str, str]:
    """Raw values of every *set* ``REPRO_*`` variable, in declaration order.

    The metrics artifact embeds this (``meta.env``) so every metrics file is
    a self-describing provenance record: which knobs shaped the run is part
    of the run, not something to reconstruct from shell history.
    """
    snapshot: Dict[str, str] = {}
    for name, var in REGISTRY.items():
        raw = var.raw()
        if raw is not None:
            snapshot[name] = raw
    return snapshot


# -- declarations ------------------------------------------------------------
BACKEND = declare(
    "REPRO_BACKEND",
    parse_string,
    "Simulation backend (`naive`/`packed`/`sharded`/`cluster`); validated "
    "against the backend registry at resolution time.",
    default=None,
    default_doc="`packed`",
)

JOBS = declare(
    "REPRO_JOBS",
    parse_jobs,
    "Worker count for the shared spawn pool and every sharded/cluster "
    "execution path (integer >= 1).",
    default=None,
    default_doc="`os.cpu_count()`",
)

FAULT_MODE = declare(
    "REPRO_FAULT_MODE",
    parse_choice(FAULT_MODES, "fault mode"),
    "Packed fault-grading strategy: pattern-parallel big-int `lanes`, "
    "vectorised `words`, fault-parallel `faults` (64 faults per word), or "
    "`auto` (words above 4096 patterns, faults for many-faults/few-patterns "
    "shapes, lanes otherwise).",
    default=None,
    default_doc="`auto`",
)

ATPG_MODE = declare(
    "REPRO_ATPG_MODE",
    parse_choice(ATPG_MODES, "ATPG mode"),
    "PODEM implication engine: `dict` reference, `compiled` ternary, or "
    "`auto` (compiled on compiled backends).",
    default=None,
    default_doc="`auto`",
)

TRANSPORT = declare(
    "REPRO_TRANSPORT",
    parse_string,
    "Cluster transport spec (`local` / `mp` / `queue` / `queue:<spool "
    "dir>`); validated when the transport is resolved.",
    default=None,
    default_doc="`mp`",
)

QUEUE_DIR = declare(
    "REPRO_QUEUE_DIR",
    parse_string,
    "Queue-transport spool directory to attach to (shared filesystem).",
    default=None,
    default_doc="fresh temp spool",
)

QUEUE_WORKERS = declare(
    "REPRO_QUEUE_WORKERS",
    parse_nonneg_int,
    "Queue workers spawned by the parent (integer >= 0; 0 relies on "
    "external workers joining the spool).",
    default=None,
    default_doc="jobs count",
)

LEASE_TIMEOUT = declare(
    "REPRO_LEASE_TIMEOUT",
    parse_lease_timeout,
    "Seconds without a heartbeat before a claimed queue task's lease "
    "expires and the task is re-enqueued (positive number).",
    default=None,
    default_doc="`15.0`",
)

TASK_RETRIES = declare(
    "REPRO_TASK_RETRIES",
    parse_task_retries,
    "Per-task retry budget before a failing task is quarantined and "
    "re-run inline (integer >= 0).",
    default=None,
    default_doc="`3`",
)

CHUNK_PLAN = declare(
    "REPRO_CHUNK_PLAN",
    parse_choice(CHUNK_PLANS, "chunk plan"),
    "Fault-chunk sizing: `adaptive` (sized from measured cone cost) or "
    "`static` (fixed equal-count).",
    default=None,
    default_doc="`adaptive`",
)

CHAOS = declare(
    "REPRO_CHAOS",
    parse_string,
    "Seeded chaos spec `seed:kind=rate,...` (kinds: kill/stall/corrupt/"
    "dup/enospc) armed inside queue workers; parsed by "
    "`repro.cluster.chaos.parse_chaos_spec`.",
    default=None,
    default_doc="unset (chaos off)",
)

CLUSTER_WORKER = declare(
    "REPRO_CLUSTER_WORKER",
    parse_string,
    "Internal: set by `repro.cluster.worker` processes so nested "
    "simulators always run inline (never nest executors).",
    default=None,
    default_doc="unset",
)

TRACE = declare(
    "REPRO_TRACE",
    parse_flag,
    "Enable the telemetry recorder (counters, spans, event log) at import "
    "time; off by default with a no-op recorder.",
    default=False,
    default_doc="`0`",
)

TIMELINE = declare(
    "REPRO_TIMELINE",
    parse_flag,
    "Record begin/end span *intervals* (the timeline tier consumed by "
    "`python -m repro.obs export-trace` / `report`) in addition to the "
    "aggregate span table; implies nothing on its own — tracing must also "
    "be on (`REPRO_TRACE=1` / `--metrics` / `--trace-out`).",
    default=False,
    default_doc="`0`",
)

METRICS = declare(
    "REPRO_METRICS",
    parse_string,
    "Path for the machine-readable metrics JSON written after a run "
    "(implies tracing in the experiment runner).",
    default=None,
    default_doc="unset (no artifact)",
)

SANITIZE = declare(
    "REPRO_SANITIZE",
    parse_flag,
    "Arm the runtime determinism sanitizer: shadow re-merge of cluster "
    "results in reversed/shuffled envelope order, asserting bit-identical "
    "output (see `repro.analysis.sanitizer`).",
    default=False,
    default_doc="`0`",
)


def _parse_cache_dir(value: object, source: str = "cache dir") -> Optional[str]:
    token = str(value).strip()
    if token.lower() in ("0", "off", "none", ""):
        return None
    return token


CACHE_DIR = declare(
    "REPRO_CACHE_DIR",
    _parse_cache_dir,
    "Workload cube-cache directory; `0`/`off`/`none`/empty disables "
    "caching.",
    default=".repro_cache",
    default_doc="`.repro_cache`",
    keep_empty=True,
)

INCLUDE_LARGE = declare(
    "REPRO_INCLUDE_LARGE",
    parse_flag,
    "Also build the largest ITC'99-style workload profiles.",
    default=False,
    default_doc="`0`",
)

FULL_SCALE = declare(
    "REPRO_FULL_SCALE",
    parse_flag,
    "Build large profiles at their full published size instead of the "
    "scaled-down default.",
    default=False,
    default_doc="`0`",
)

BENCH_FULL = declare(
    "REPRO_BENCH_FULL",
    parse_flag,
    "Benchmarks only: run the complete default benchmark list instead of "
    "the quick subset.",
    default=False,
    default_doc="`0`",
)


# -- docs table --------------------------------------------------------------
TABLE_BEGIN = "<!-- envvar-table:begin (generated by repro.envvars) -->"
TABLE_END = "<!-- envvar-table:end -->"


def render_table() -> str:
    """The registry as a markdown table (the README embeds this verbatim).

    The analyzer's R3 rule re-renders this and fails when the README block
    between :data:`TABLE_BEGIN` and :data:`TABLE_END` differs, so the docs
    cannot drift from the declarations.
    """
    lines = [
        "| Variable | Default | Description |",
        "| --- | --- | --- |",
    ]
    for var in REGISTRY.values():
        lines.append(f"| `{var.name}` | {var.default_text} | {var.doc} |")
    return "\n".join(lines)


def readme_block() -> str:
    """The generated table wrapped in its begin/end markers."""
    return f"{TABLE_BEGIN}\n{render_table()}\n{TABLE_END}"


def update_readme(path: str) -> bool:
    """Replace the marker-delimited table in ``path``; True when changed.

    Raises:
        ValueError: when the file lacks the marker pair — the table's home
            must be chosen by a human once, not injected at a guessed spot.
    """
    import io

    with io.open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if TABLE_BEGIN not in text or TABLE_END not in text:
        raise ValueError(
            f"{path} lacks the env-var table markers ({TABLE_BEGIN} / {TABLE_END})"
        )
    head, rest = text.split(TABLE_BEGIN, 1)
    _, tail = rest.split(TABLE_END, 1)
    updated = head + readme_block() + tail
    if updated == text:
        return False
    with io.open(path, "w", encoding="utf-8") as handle:
        handle.write(updated)
    return True


def _main(argv: Optional[list] = None) -> int:
    """``python -m repro.envvars``: print the table or refresh the README."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.envvars",
        description="Render the REPRO_* declaration table.",
    )
    parser.add_argument(
        "--write-readme",
        metavar="FILE",
        nargs="?",
        const="README.md",
        help="update the marker-delimited table in FILE (default README.md)",
    )
    args = parser.parse_args(argv)
    if args.write_readme:
        changed = update_readme(args.write_readme)
        print(f"{args.write_readme}: {'updated' if changed else 'already current'}")
        return 0
    print(readme_block())
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(_main())
