"""Declared counter and span names: the telemetry grammar, in one place.

Every counter the codebase emits must be declared here — either as an exact
name in :data:`COUNTERS` or under a dynamic prefix in
:data:`COUNTER_PREFIXES` (for families like ``podem.status.<status>`` whose
tail is data-dependent).  The static analyzer's obs-counter rule (R5 in
``repro.analysis``) checks every literal ``counter(...)`` call and every
``add_counters(..., prefix=...)`` prefix against this manifest, and the
counter-parity suite sources its scheduling-invariant key set from
:data:`DETERMINISTIC` — so a new counter cannot ship without a name that
parses, a doc line, and a decision about whether it must be
backend/transport invariant.

Grammar: ``<subsystem>.<dotted_lowercase_path>`` where the subsystem is one
of ``fault_sim``, ``podem``, ``cluster``, ``runner`` or ``obs``.  Span paths
are ``/``-separated and start with a declared root (``logic_sim``,
``fault_sim``, ``atpg``, ``runner``).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable

#: Regex every counter name (declared or emitted) must match.
COUNTER_GRAMMAR = re.compile(r"^(fault_sim|podem|cluster|runner|obs)\.[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Regex every span path must match (first segment is the root; later
#: segments may carry circuit names, hence the broader character class).
SPAN_GRAMMAR = re.compile(r"^(logic_sim|fault_sim|atpg|runner)(/[A-Za-z0-9_.\-]+)+$")

#: Every exact counter name the codebase may emit, with a doc line each.
COUNTERS: Dict[str, str] = {
    "fault_sim.blocks": "pattern blocks processed (scheduling-dependent).",
    "fault_sim.cone_evaluations": "fault cones simulated against a block.",
    "fault_sim.dropped_block_evaluations": (
        "cone evaluations skipped by fault dropping (scheduling-dependent)."
    ),
    "fault_sim.fault_words": (
        "fault words packed by the fault-parallel kernel (64 lanes each; "
        "word packing follows chunk boundaries, so scheduling-dependent)."
    ),
    "fault_sim.runs": "complete fault-simulation runs.",
    "fault_sim.patterns": "test patterns graded, summed over runs.",
    "fault_sim.faults": "faults graded (detected + undetected).",
    "fault_sim.detected": "faults detected at least once.",
    "podem.faults": "faults handed to the PODEM search.",
    "podem.backtracks": "PODEM decision backtracks.",
    "podem.decisions": "PODEM PI decisions (including retried ones).",
    "cluster.tasks_replayed": "task results served from a checkpoint journal.",
    "cluster.tasks_executed": "task results computed fresh (not replayed).",
    "cluster.sanitize_checks": (
        "shadow re-merges performed by the REPRO_SANITIZE order sanitizer."
    ),
    "runner.cells_replayed": "experiment cells served from checkpoint.",
    "runner.cells_executed": "experiment cells computed fresh.",
    "obs.events_dropped": "telemetry events discarded at the ring-buffer cap.",
    "obs.intervals_dropped": (
        "timeline span intervals discarded at the ring-buffer cap "
        "(MAX_INTERVALS); nonzero flips the metrics artifact's `truncated` "
        "flag."
    ),
}

#: Dynamic counter families: any name starting with one of these prefixes is
#: declared, because the tail is data-dependent (e.g. a PODEM result status).
COUNTER_PREFIXES: Dict[str, str] = {
    "podem.status.": "per-status PODEM outcome tallies (detected/untestable/aborted).",
    "fault_sim.": "fault-simulator stat dicts forwarded via add_counters(prefix=...).",
}

#: The scheduling-invariant subset: these must sum to identical values across
#: every backend (naive/packed/sharded/cluster) and transport
#: (local/mp/queue), including under chaos.  The counter-parity suite
#: (tests/test_obs.py) compares exactly this set.
DETERMINISTIC = frozenset(
    {
        "fault_sim.cone_evaluations",
        "fault_sim.runs",
        "fault_sim.patterns",
        "fault_sim.faults",
        "fault_sim.detected",
        "podem.faults",
        "podem.backtracks",
        "podem.decisions",
    }
)

#: Scheduling-invariant keys in the stable order the parity suite reports.
PARITY_KEYS = tuple(sorted(DETERMINISTIC))


def is_declared(name: str) -> bool:
    """Whether ``name`` is a declared counter (exact or under a prefix)."""
    if name in COUNTERS:
        return True
    return any(name.startswith(prefix) for prefix in COUNTER_PREFIXES)


def validate() -> Iterable[str]:
    """Yield a problem string per manifest entry violating the grammar."""
    for name in COUNTERS:
        if not COUNTER_GRAMMAR.match(name):
            yield f"declared counter {name!r} violates the counter grammar"
    for prefix in COUNTER_PREFIXES:
        # A prefix is valid when some completed name under it would parse.
        if not COUNTER_GRAMMAR.match(prefix + "x"):
            yield f"declared prefix {prefix!r} violates the counter grammar"
    for name in DETERMINISTIC:
        if not is_declared(name):
            yield f"deterministic counter {name!r} is not declared"
