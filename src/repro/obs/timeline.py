"""Timeline tier: per-worker interval tracks and Chrome trace export.

The recorder's timeline (see :mod:`repro.obs.recorder`) produces a flat
list of wall-anchored intervals — ``{path, start_s, dur_s, pid, worker,
task?}`` — merged across every process that contributed a task snapshot.
This module turns that list into

* **tracks**: one per ``(pid, worker)`` pair, with union busy time, idle
  gaps, utilization and makespan math (consumed by the run report), and
* **Chrome trace-event JSON** (:func:`write_trace`): the ``traceEvents``
  array Perfetto / ``chrome://tracing`` render, one thread track per
  worker, span paths as complete (``"X"``) events with task ids in
  ``args``, and the run's event log as instant (``"i"``) events on a
  dedicated track — events and intervals share one axis because both are
  stamped through the same per-recorder clock anchor.

Timestamps in the exported trace are microseconds relative to the earliest
record (``t0``), which keeps the JSON small, stable for golden-file tests,
and immediately readable in a viewer; the absolute wall anchor is preserved
in ``otherData.t0_wall_s``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Track key: (pid, worker label) — one trace thread per pair.
TrackKey = Tuple[Optional[int], Optional[str]]


def track_label(pid: Optional[int], worker: Optional[str]) -> str:
    """Human label for one track: the worker id, else the bare pid."""
    if worker:
        return str(worker)
    if pid:
        return f"pid-{pid}"
    return "main"


def tracks(
    intervals: Sequence[Mapping[str, Any]],
) -> "Dict[TrackKey, List[Dict[str, Any]]]":
    """Group intervals into per-``(pid, worker)`` tracks, sorted by start.

    Track order is deterministic: sorted by label, so reports and traces
    are stable across dict/arrival order.
    """
    grouped: Dict[TrackKey, List[Dict[str, Any]]] = {}
    for record in intervals:
        key = (record.get("pid"), record.get("worker"))
        grouped.setdefault(key, []).append(dict(record))
    for rows in grouped.values():
        rows.sort(key=lambda r: (r.get("start_s", 0.0), r.get("path", "")))
    return dict(
        sorted(grouped.items(), key=lambda item: track_label(*item[0]))
    )


def merged_busy(
    rows: Sequence[Mapping[str, Any]],
) -> Tuple[float, List[Tuple[float, float]]]:
    """Union busy seconds of one track plus its internal idle gaps.

    Overlapping/nested spans (a task span containing kernel spans) are
    merged before summing, so busy time is genuine occupancy, never double
    counted.  Gaps are the maximal idle windows *between* merged busy
    segments — idle before the first or after the last interval is the
    caller's business (it depends on the run's makespan).
    """
    segments = sorted(
        (float(r.get("start_s", 0.0)), float(r.get("start_s", 0.0)) + float(r.get("dur_s", 0.0)))
        for r in rows
    )
    busy = 0.0
    gaps: List[Tuple[float, float]] = []
    cur_start: Optional[float] = None
    cur_end = 0.0
    for start, end in segments:
        if cur_start is None:
            cur_start, cur_end = start, end
            continue
        if start > cur_end:
            gaps.append((cur_end, start))
            busy += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_start is not None:
        busy += cur_end - cur_start
    return busy, gaps


def span_bounds(
    intervals: Sequence[Mapping[str, Any]],
    events: Sequence[Mapping[str, Any]] = (),
) -> Optional[Tuple[float, float]]:
    """``(t_min, t_max)`` across intervals and events, or ``None`` if empty."""
    lows: List[float] = []
    highs: List[float] = []
    for record in intervals:
        start = float(record.get("start_s", 0.0))
        lows.append(start)
        highs.append(start + float(record.get("dur_s", 0.0)))
    for record in events:
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            lows.append(float(ts))
            highs.append(float(ts))
    if not lows:
        return None
    return min(lows), max(highs)


def _us(seconds: float) -> float:
    """Seconds → microseconds, rounded to 0.1 us for stable JSON output."""
    return round(seconds * 1e6, 1)


def trace_events(payload: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Build the Chrome trace-event array from a metrics payload.

    Accepts a schema-2 metrics payload (or a raw recorder snapshot): reads
    ``intervals`` and ``events``.  Returns metadata (``"M"``) records
    naming each process/track, one complete (``"X"``) record per interval
    with the task id in ``args``, and one instant (``"i"``) record per
    event-log entry on a dedicated ``events`` track.
    """
    intervals = payload.get("intervals") or []
    events = payload.get("events") or []
    bounds = span_bounds(intervals, events)
    t0 = bounds[0] if bounds else 0.0

    grouped = tracks(intervals)
    out: List[Dict[str, Any]] = []
    # Stable tid assignment: per pid, tracks in label order starting at 1.
    tids: Dict[TrackKey, int] = {}
    per_pid_next: Dict[int, int] = {}
    pids_named = set()
    clock = payload.get("clock") or {}
    parent_pid = clock.get("pid")
    for key in grouped:
        pid = key[0] or 0
        tid = per_pid_next.get(pid, 1)
        per_pid_next[pid] = tid + 1
        tids[key] = tid
        if pid not in pids_named:
            pids_named.add(pid)
            role = "parent" if pid == parent_pid else "worker"
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"repro {role} {pid}"},
                }
            )
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": track_label(*key)},
            }
        )

    for key, rows in grouped.items():
        pid = key[0] or 0
        tid = tids[key]
        for record in rows:
            entry: Dict[str, Any] = {
                "name": record.get("path", "?"),
                "cat": "span",
                "ph": "X",
                "ts": _us(float(record.get("start_s", 0.0)) - t0),
                "dur": _us(float(record.get("dur_s", 0.0))),
                "pid": pid,
                "tid": tid,
            }
            task = record.get("task")
            if task is not None:
                entry["args"] = {"task": task}
            out.append(entry)

    if events:
        event_pid = parent_pid or 0
        event_tid = per_pid_next.get(event_pid, 1)
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": event_pid,
                "tid": event_tid,
                "args": {"name": "events"},
            }
        )
        for record in events:
            ts = record.get("ts")
            if not isinstance(ts, (int, float)):
                continue
            args = {
                k: v for k, v in record.items() if k not in ("ts", "kind")
            }
            out.append(
                {
                    "name": str(record.get("kind", "event")),
                    "cat": "event",
                    "ph": "i",
                    "s": "g",
                    "ts": _us(float(ts) - t0),
                    "pid": event_pid,
                    "tid": event_tid,
                    "args": args,
                }
            )
    return out


def trace_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """The complete Chrome trace JSON object for one metrics payload."""
    intervals = payload.get("intervals") or []
    events = payload.get("events") or []
    bounds = span_bounds(intervals, events)
    return {
        "traceEvents": trace_events(payload),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "t0_wall_s": bounds[0] if bounds else 0.0,
        },
    }


def write_trace(path: str, payload: Mapping[str, Any]) -> str:
    """Write the Chrome trace JSON for ``payload`` to ``path``; returns it.

    Open the result at https://ui.perfetto.dev or ``chrome://tracing``.
    """
    trace = trace_payload(payload)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return path
