"""Human run reports from a metrics payload (``python -m repro.obs report``).

Answers the questions a slow distributed run raises: where did wall-clock
go per kernel, which worker was the straggler, how long did the parent sit
idle, and what did the retry/quarantine/degradation machinery actually do.
Input is a schema-2 metrics artifact (``--metrics`` / ``REPRO_METRICS``)
and, optionally, the durable per-worker event logs from a queue spool —
the spool logs carry worker-side ``task_claimed`` records that let the
report name *which worker* a retried task last died on, even when that
worker was SIGKILLed before it could report anything else.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs import timeline

#: Event kinds recapped in detail (the reliability machinery's decisions).
RECAP_KINDS = (
    "lease_expired",
    "task_retried",
    "task_retry_scheduled",
    "task_quarantined",
    "task_recovered_inline",
    "duplicate_result_dropped",
    "result_corrupt",
    "chaos_injected",
    "transport_degraded",
    "transport_failed",
    "transport_lost",
    "cell_inline_fallback",
)

#: Cap per-kind detail lines so a chaotic run stays readable.
MAX_DETAIL_LINES = 8


def _span_rows(payload: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Normalise spans: metrics artifacts carry a list, snapshots a dict."""
    spans = payload.get("spans") or []
    if isinstance(spans, Mapping):
        return [
            {"path": path, "count": row[0], "total_s": row[1], "max_s": row[2]}
            for path, row in sorted(spans.items())
        ]
    return [dict(row) for row in spans]


def _fmt_s(seconds: float) -> str:
    if seconds >= 100.0:
        return f"{seconds:.0f}s"
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000.0:.1f}ms"


def _task_claimants(events: Sequence[Mapping[str, Any]]) -> Dict[Any, List[str]]:
    """task id -> workers that claimed it, in claim order (deduped)."""
    claimants: Dict[Any, List[str]] = {}
    for record in events:
        if record.get("kind") != "task_claimed":
            continue
        task_id = record.get("task_id")
        worker = record.get("worker")
        if task_id is None or worker is None:
            continue
        seen = claimants.setdefault(task_id, [])
        if worker not in seen:
            seen.append(worker)
    return claimants


def _describe(record: Mapping[str, Any], claimants: Mapping[Any, List[str]]) -> str:
    parts: List[str] = []
    task_id = record.get("task_id")
    if task_id is not None:
        parts.append(f"task {task_id}")
        workers = claimants.get(task_id)
        if workers:
            parts.append(f"last claimed by {workers[-1]}")
    for field in ("worker", "fault", "attempt", "transport", "to", "reason", "detail"):
        value = record.get(field)
        if value is not None:
            parts.append(f"{field}={value}")
    return ", ".join(parts) if parts else "(no detail)"


def _timeline_section(payload: Mapping[str, Any], lines: List[str]) -> None:
    intervals = payload.get("intervals") or []
    if not intervals:
        lines.append(
            "timeline: no intervals recorded (set REPRO_TIMELINE=1 or pass "
            "--trace-out to capture per-worker tracks)"
        )
        return
    bounds = timeline.span_bounds(intervals)
    assert bounds is not None
    t_min, t_max = bounds
    makespan = max(t_max - t_min, 1e-12)
    serial = sum(float(r.get("dur_s", 0.0)) for r in intervals)
    union_busy, _ = timeline.merged_busy(intervals)
    grouped = timeline.tracks(intervals)

    clock = payload.get("clock") or {}
    parent_key = (clock.get("pid"), clock.get("worker"))

    lines.append("timeline")
    lines.append(
        f"  makespan {_fmt_s(makespan)}; sum of span times {_fmt_s(serial)} "
        f"(critical-path parallelism {serial / makespan:.2f}x); "
        f"tracks cover {100.0 * min(union_busy / makespan, 1.0):.1f}% of makespan"
    )
    header = (
        f"  {'track':<24} {'spans':>5} {'busy':>9} {'util':>6} "
        f"{'first..last':>13} {'largest idle gap':>17}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    last_end_by_track = {}
    for key, rows in grouped.items():
        label = timeline.track_label(*key)
        busy, gaps = timeline.merged_busy(rows)
        start = min(float(r["start_s"]) for r in rows)
        end = max(float(r["start_s"]) + float(r["dur_s"]) for r in rows)
        last_end_by_track[key] = end
        # Boundary idle counts too: a worker that joined late or went quiet
        # early was idle relative to the run, not just between its own spans.
        all_gaps = [(t_min, start)] + list(gaps) + [(end, t_max)]
        widest = max(all_gaps, key=lambda g: g[1] - g[0])
        gap_text = (
            f"{_fmt_s(widest[1] - widest[0])} "
            f"@+{_fmt_s(max(widest[0] - t_min, 0.0))}"
            if widest[1] - widest[0] > 1e-9
            else "none"
        )
        marker = "  <- parent" if key == parent_key else ""
        lines.append(
            f"  {label:<24} {len(rows):>5} {_fmt_s(busy):>9} "
            f"{100.0 * busy / makespan:>5.1f}% "
            f"{_fmt_s(start - t_min):>5}..{_fmt_s(end - t_min):<6} "
            f"{gap_text:>17}{marker}"
        )
    straggler_key = max(last_end_by_track, key=lambda k: last_end_by_track[k])
    lines.append(
        f"  straggler: {timeline.track_label(*straggler_key)} "
        f"(finished last, at +{_fmt_s(last_end_by_track[straggler_key] - t_min)})"
    )
    if parent_key in grouped:
        busy, gaps = timeline.merged_busy(grouped[parent_key])
        start = min(float(r["start_s"]) for r in grouped[parent_key])
        end = max(
            float(r["start_s"]) + float(r["dur_s"]) for r in grouped[parent_key]
        )
        all_gaps = [(t_min, start)] + list(gaps) + [(end, t_max)]
        widest = max(all_gaps, key=lambda g: g[1] - g[0])
        if widest[1] - widest[0] > 1e-9:
            lines.append(
                f"  parent idle gap: {_fmt_s(widest[1] - widest[0])} "
                f"starting at +{_fmt_s(max(widest[0] - t_min, 0.0))} "
                "(parent waiting on workers)"
            )


def _events_section(
    events: Sequence[Mapping[str, Any]], lines: List[str]
) -> None:
    if not events:
        lines.append("events: none recorded")
        return
    counts: Dict[str, int] = {}
    for record in events:
        kind = str(record.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    lines.append(
        "events: "
        + ", ".join(f"{kind} x{n}" for kind, n in sorted(counts.items()))
    )
    claimants = _task_claimants(events)
    for kind in RECAP_KINDS:
        matching = [r for r in events if r.get("kind") == kind]
        if not matching:
            continue
        lines.append(f"  {kind} ({len(matching)}):")
        for record in matching[:MAX_DETAIL_LINES]:
            lines.append(f"    - {_describe(record, claimants)}")
        if len(matching) > MAX_DETAIL_LINES:
            lines.append(f"    ... and {len(matching) - MAX_DETAIL_LINES} more")


def render_report(
    payload: Mapping[str, Any],
    extra_events: Optional[Iterable[Mapping[str, Any]]] = None,
) -> str:
    """Render the run report for one metrics payload.

    Args:
        payload: a metrics artifact dict (schema 1 or 2) or recorder
            snapshot.
        extra_events: additional event records to merge into the recap —
            typically the durable per-worker JSONL logs read from a queue
            spool, which carry claims the parent never saw.
    """
    lines: List[str] = ["repro.obs run report", "=" * 21]
    meta = payload.get("meta") or {}
    for key in ("tool", "circuit", "artifacts", "benchmarks", "jobs", "seed", "elapsed_s"):
        if key in meta:
            lines.append(f"{key}: {meta[key]}")
    lines.append(
        f"schema: {payload.get('schema', '?')}; "
        f"enabled: {payload.get('enabled', '?')}; "
        f"truncated: {payload.get('truncated', False)}"
    )
    env = meta.get("env") or {}
    if env:
        lines.append(
            "env: " + " ".join(f"{k}={v}" for k, v in sorted(env.items()))
        )
    lines.append("")

    spans = _span_rows(payload)
    if spans:
        lines.append("per-kernel spans")
        header = f"  {'span':<44} {'count':>6} {'total':>9} {'max':>9}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in sorted(spans, key=lambda r: -float(r.get("total_s", 0.0))):
            lines.append(
                f"  {row['path']:<44} {row['count']:>6} "
                f"{_fmt_s(float(row['total_s'])):>9} "
                f"{_fmt_s(float(row['max_s'])):>9}"
            )
        lines.append("")

    _timeline_section(payload, lines)
    lines.append("")

    events: List[Mapping[str, Any]] = list(payload.get("events") or [])
    if extra_events:
        events.extend(extra_events)
    events.sort(key=lambda r: (r.get("ts") or 0.0))
    _events_section(events, lines)
    return "\n".join(lines)
