"""Zero-overhead telemetry recorder: counters, spans and an event log.

The module keeps one process-wide *active recorder*.  By default it is a
:class:`NullRecorder` whose every operation is a no-op attribute call, so
instrumented code costs almost nothing when tracing is off.  Setting
``REPRO_TRACE=1`` in the environment (checked once at import) or calling
:func:`enable` swaps in a real :class:`Recorder`.

Three primitives:

* **counters** — monotonic integers keyed by dotted name
  (``fault_sim.cone_evaluations``, ``podem.backtracks``).  Hot kernels do
  *not* call :func:`counter` per inner-loop iteration; they accumulate into
  plain locals/dicts exactly as before and flush once per run with
  :func:`add_counters`, which keeps the enabled path cheap and the disabled
  path free.
* **spans** — wall-clock timers keyed by a stable ``/``-separated path
  (``fault_sim/b12/words/grade``).  Nested use is fine; each span records
  into a flat ``path -> [count, total_s, max_s]`` table, which merges
  deterministically across processes (sum counts and totals, max the max).
* **events** — typed, timestamped records for cluster lifecycle (task
  claimed, lease expired, retried, duplicate dropped, worker joined/died,
  transport failures).  Events can additionally be appended as JSON lines to
  a file (:func:`set_event_file`) so distributed workers leave a durable
  log in the queue spool.

Cross-process flow: a worker executes a task inside :func:`task_capture`,
which swaps in a fresh recorder for the duration and returns its snapshot;
the snapshot rides back in the result payload and the parent merges it with
:func:`absorb_task`.  Absorption dedupes by task id, so duplicate deliveries
(retried queue tasks, stale-lease re-executions, speculative work) can never
double-count — exactly mirroring the idempotent result merge.

**Clock anchoring.**  Each recorder pairs one ``time.time()`` wall anchor
with a ``time.perf_counter()`` reading at construction.  Span durations are
still measured on the monotonic clock, but every published timestamp —
event ``ts`` fields and timeline interval starts alike — is the anchor plus
a monotonic offset, so one recorder's events and intervals share a single
axis and intervals captured by queue workers on other hosts merge onto the
parent's wall axis (to NTP accuracy).

**Timeline tier.**  With the timeline on (``REPRO_TIMELINE=1`` or
:func:`enable_timeline`; requires tracing), every closed span additionally
appends one *interval* — ``{path, start_s, dur_s, pid, worker}`` — to a
ring-buffer capped list (:data:`MAX_INTERVALS`, overflow counted in
``obs.intervals_dropped``).  Intervals ride :func:`task_capture` snapshots
back to the parent exactly like counters, get stamped with the absorbing
task id, and feed ``python -m repro.obs export-trace`` / ``report``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import envvars

TRACE_ENV_VAR = envvars.TRACE.name
TIMELINE_ENV_VAR = envvars.TIMELINE.name

#: In-memory event cap; beyond it events are dropped (and counted in the
#: ``obs.events_dropped`` counter) so a chatty run cannot grow unbounded.
MAX_EVENTS = 10_000

#: In-memory timeline cap; beyond it span intervals are dropped (and counted
#: in ``obs.intervals_dropped``) — same bounded-memory contract as events.
MAX_INTERVALS = 20_000

class _NullSpan:
    """Reusable no-op context manager (a single shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder with every operation stubbed out; the disabled path."""

    enabled = False
    timeline = False

    __slots__ = ()

    def counter(self, name: str, n: int = 1) -> None:
        return None

    def add_counters(self, counters: Mapping[str, int], prefix: str = "") -> None:
        return None

    def span(self, path: str) -> _NullSpan:
        return _NULL_SPAN

    def event(self, kind: str, **fields: Any) -> None:
        return None

    def absorb_task(self, task_id: object, snapshot: Optional[Mapping[str, Any]]) -> bool:
        return False

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "spans": {}, "events": [], "intervals": []}

    def reset(self) -> None:
        return None

    def set_event_file(self, path: Optional[str]) -> None:
        return None

    def set_worker(self, label: Optional[str]) -> None:
        return None

    def enable_timeline(self, on: bool = True) -> None:
        return None


class _Span:
    """Times one ``with`` block and folds it into the recorder's table."""

    __slots__ = ("_recorder", "_path", "_start")

    def __init__(self, recorder: "Recorder", path: str) -> None:
        self._recorder = recorder
        self._path = path

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._recorder._record_span(self._path, elapsed, self._start)


class Recorder:
    """Collects counters, spans and events; thread-safe via one lock."""

    enabled = True

    def __init__(
        self,
        timeline: Optional[bool] = None,
        worker: Optional[str] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        # path -> [count, total_s, max_s]
        self._spans: Dict[str, List[float]] = {}
        self._events: List[Dict[str, Any]] = []
        self._seen_tasks: set = set()
        self._event_file: Optional[str] = None
        # One wall reading paired with one monotonic reading: the per-process
        # clock anchor.  Everything published (event ts, interval starts) is
        # anchor + perf_counter offset, so spans and events share one axis
        # and cross-host intervals merge onto the parent's wall clock.
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()
        self._pid = os.getpid()
        self._worker = worker
        #: Timeline tier on/off; defaults from ``REPRO_TIMELINE``.
        self.timeline = (
            bool(envvars.TIMELINE.read()) if timeline is None else bool(timeline)
        )
        # Own spans as (path, start_perf, dur_s); converted to wall dicts at
        # snapshot time so the hot record path stays a tuple append.
        self._intervals: List[Tuple[str, float, float]] = []
        # Absorbed task intervals, already wall-anchored dicts.
        self._foreign_intervals: List[Dict[str, Any]] = []

    # -- clock -------------------------------------------------------------
    def now(self) -> float:
        """Anchored wall time: the wall anchor plus a monotonic offset."""
        return self._anchor_wall + (time.perf_counter() - self._anchor_perf)

    def wall_of(self, perf: float) -> float:
        """Map a ``perf_counter()`` reading onto the anchored wall axis."""
        return self._anchor_wall + (perf - self._anchor_perf)

    def set_worker(self, label: Optional[str]) -> None:
        """Attribute subsequent intervals to ``label`` (a worker id)."""
        with self._lock:
            self._worker = label

    def enable_timeline(self, on: bool = True) -> None:
        """Switch the timeline tier on/off for this recorder."""
        with self._lock:
            self.timeline = bool(on)

    # -- counters ---------------------------------------------------------
    def counter(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def add_counters(self, counters: Mapping[str, int], prefix: str = "") -> None:
        with self._lock:
            table = self._counters
            for name, value in counters.items():
                if not isinstance(value, int) or isinstance(value, bool):
                    continue  # stats dicts carry labels too; only ints count
                key = prefix + name
                table[key] = table.get(key, 0) + value

    # -- spans ------------------------------------------------------------
    def span(self, path: str) -> _Span:
        return _Span(self, path)

    def _record_span(
        self, path: str, elapsed: float, start: Optional[float] = None
    ) -> None:
        with self._lock:
            row = self._spans.get(path)
            if row is None:
                self._spans[path] = [1, elapsed, elapsed]
            else:
                row[0] += 1
                row[1] += elapsed
                if elapsed > row[2]:
                    row[2] = elapsed
            if self.timeline and start is not None:
                if (
                    len(self._intervals) + len(self._foreign_intervals)
                    < MAX_INTERVALS
                ):
                    self._intervals.append((path, start, elapsed))
                else:
                    self._counters["obs.intervals_dropped"] = (
                        self._counters.get("obs.intervals_dropped", 0) + 1
                    )

    # -- events -----------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        record = {"ts": self.now(), "kind": kind}
        record.update(fields)
        with self._lock:
            if len(self._events) < MAX_EVENTS:
                self._events.append(record)
            else:
                self._counters["obs.events_dropped"] = (
                    self._counters.get("obs.events_dropped", 0) + 1
                )
            path = self._event_file
        if path is not None:
            self._append_event_line(path, record)

    @staticmethod
    def _append_event_line(path: str, record: Mapping[str, Any]) -> None:
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, default=repr) + "\n")
        except OSError:
            pass  # a vanished spool must not take the run down with it

    def set_event_file(self, path: Optional[str]) -> None:
        with self._lock:
            self._event_file = path

    # -- snapshots / merging ----------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            intervals = [
                {
                    "path": path,
                    "start_s": self._anchor_wall + (start - self._anchor_perf),
                    "dur_s": dur,
                    "pid": self._pid,
                    "worker": self._worker,
                }
                for path, start, dur in self._intervals
            ]
            intervals.extend(dict(record) for record in self._foreign_intervals)
            return {
                "counters": dict(self._counters),
                "spans": {path: list(row) for path, row in self._spans.items()},
                "events": [dict(record) for record in self._events],
                "intervals": intervals,
                "clock": {
                    "wall_anchor_s": self._anchor_wall,
                    "pid": self._pid,
                    "worker": self._worker,
                },
            }

    def absorb_task(self, task_id: object, snapshot: Optional[Mapping[str, Any]]) -> bool:
        """Merge a task's captured snapshot exactly once.

        Returns ``True`` if the snapshot was merged, ``False`` if it was a
        duplicate (same task id already absorbed) or empty.  Dedupe by task
        id mirrors the idempotent result merge: re-delivered queue results
        and re-executed stale-lease tasks cannot double-count.
        """
        if not snapshot:
            return False
        with self._lock:
            if task_id in self._seen_tasks:
                return False
            self._seen_tasks.add(task_id)
        counters = snapshot.get("counters")
        if counters:
            self.add_counters(counters)
        spans = snapshot.get("spans")
        if spans:
            with self._lock:
                for path, row in spans.items():
                    mine = self._spans.get(path)
                    if mine is None:
                        self._spans[path] = [row[0], row[1], row[2]]
                    else:
                        mine[0] += row[0]
                        mine[1] += row[1]
                        if row[2] > mine[2]:
                            mine[2] = row[2]
        events = snapshot.get("events")
        if events:
            with self._lock:
                room = MAX_EVENTS - len(self._events)
                if room > 0:
                    self._events.extend(dict(record) for record in events[:room])
                dropped = len(events) - max(room, 0)
                if dropped > 0:
                    self._counters["obs.events_dropped"] = (
                        self._counters.get("obs.events_dropped", 0) + dropped
                    )
        intervals = snapshot.get("intervals")
        if intervals:
            with self._lock:
                room = MAX_INTERVALS - (
                    len(self._intervals) + len(self._foreign_intervals)
                )
                for record in intervals[: max(room, 0)]:
                    merged = dict(record)
                    # Stamp task attribution at absorb time: all intervals in
                    # one snapshot belong to the task whose payload carried it.
                    merged.setdefault("task", task_id)
                    self._foreign_intervals.append(merged)
                dropped = len(intervals) - max(room, 0)
                if dropped > 0:
                    self._counters["obs.intervals_dropped"] = (
                        self._counters.get("obs.intervals_dropped", 0) + dropped
                    )
        return True

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._spans.clear()
            del self._events[:]
            self._seen_tasks.clear()
            del self._intervals[:]
            del self._foreign_intervals[:]


_NULL = NullRecorder()
_active: Any = _NULL
# Recorders displaced by task_capture(); restored LIFO.
_capture_stack: List[Any] = []
_state_lock = threading.Lock()


def active() -> Any:
    """The currently active recorder (null or real)."""
    return _active


def enabled() -> bool:
    return _active.enabled


def enable() -> Recorder:
    """Swap in a real recorder (idempotent); returns it."""
    global _active
    with _state_lock:
        if not _active.enabled:
            _active = Recorder()
        return _active


def disable() -> None:
    """Swap the null recorder back in, discarding collected telemetry."""
    global _active
    with _state_lock:
        _active = _NULL


# Module-level conveniences delegating to the active recorder.  These are
# plain functions (not bound methods captured at import) so enable/disable
# swaps take effect everywhere immediately.
def counter(name: str, n: int = 1) -> None:
    _active.counter(name, n)


def add_counters(counters: Mapping[str, int], prefix: str = "") -> None:
    _active.add_counters(counters, prefix)


def span(path: str):
    return _active.span(path)


def event(kind: str, **fields: Any) -> None:
    _active.event(kind, **fields)


def absorb_task(task_id: object, snapshot: Optional[Mapping[str, Any]]) -> bool:
    return _active.absorb_task(task_id, snapshot)


def snapshot() -> Dict[str, Any]:
    return _active.snapshot()


def reset() -> None:
    _active.reset()


def set_event_file(path: Optional[str]) -> None:
    _active.set_event_file(path)


def set_worker(label: Optional[str]) -> None:
    """Attribute the active recorder's intervals to a worker id."""
    _active.set_worker(label)


def enable_timeline(on: bool = True) -> None:
    """Switch the active recorder's timeline tier on/off (no-op when
    tracing is off — enable tracing first)."""
    _active.enable_timeline(on)


def timeline_enabled() -> bool:
    """Whether the active recorder records span intervals."""
    return _active.enabled and _active.timeline


def events_mentioning(task_id: object) -> List[Dict[str, Any]]:
    """Recorded events whose ``task_id`` field matches (empty when disabled).

    Used by the quarantine writer to attach a task's telemetry trail (lease
    expiries, retries, worker-side failures) to its post-mortem directory.
    """
    if not _active.enabled:
        return []
    return [
        record
        for record in _active.snapshot().get("events", [])
        if record.get("task_id") == task_id
    ]


def read_events(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL event file, tolerating a torn final line.

    Worker event logs are plain appends with no atomicity guarantee; a
    worker killed mid-write (chaos, SIGKILL tests, real crashes) leaves a
    truncated last record.  Unparseable lines are skipped so post-mortem
    tooling can always read what *did* land.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return records
    return records


class task_capture:
    """Capture telemetry for one task into a private recorder.

    ``with task_capture() as cap:`` swaps in a fresh :class:`Recorder` for
    the duration of the block and restores the previous recorder after;
    ``cap.snapshot()`` then yields the task's own counters/spans/events,
    ready to ship back in a result payload.  Captures nest (LIFO).

    The capture recorder inherits worker attribution and (unless ``timeline``
    forces it) the timeline tier from the recorder it displaces, so a queue
    worker's per-task snapshots stay attributed to the worker id its serve
    loop registered with :func:`set_worker`."""

    def __init__(self, timeline: Optional[bool] = None) -> None:
        self._recorder = Recorder(timeline=timeline)
        self._force_timeline = timeline

    def __enter__(self) -> Recorder:
        global _active
        with _state_lock:
            prev = _active
            if prev.enabled:
                if self._recorder._worker is None:
                    self._recorder._worker = prev._worker
                if self._force_timeline is None and prev.timeline:
                    self._recorder.timeline = True
            _capture_stack.append(prev)
            _active = self._recorder
        return self._recorder

    def __exit__(self, *exc: object) -> None:
        global _active
        with _state_lock:
            _active = _capture_stack.pop()

    def snapshot(self) -> Dict[str, Any]:
        return self._recorder.snapshot()


if envvars.TRACE.read():  # pragma: no cover - env path
    enable()
