"""Machine-readable metrics artifacts from the active telemetry recorder.

:func:`write_metrics` serialises the active recorder's snapshot to a JSON
file — the roofline input the ROADMAP asks for.  The path comes from an
explicit ``--metrics PATH`` flag or the ``REPRO_METRICS`` environment
variable (:func:`resolve_metrics_path`).

Schema (``"schema": 1``)::

    {
      "schema": 1,
      "enabled": true,              # was tracing on when written?
      "counters": {"fault_sim.cone_evaluations": 123, ...},
      "spans": [                    # sorted by path
        {"path": "fault_sim/b12/words/grade",
         "count": 4, "total_s": 1.25, "max_s": 0.42},
        ...
      ],
      "events": [{"ts": ..., "kind": "lease_expired", ...}, ...],
      "meta": {...}                 # caller-provided context (optional)
    }
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Optional

from repro import envvars
from repro.obs import recorder

METRICS_ENV_VAR = envvars.METRICS.name
METRICS_SCHEMA = 1


def resolve_metrics_path(explicit: Optional[str] = None) -> Optional[str]:
    """Explicit path if given, else ``REPRO_METRICS``, else ``None``."""
    if explicit:
        return explicit
    return envvars.METRICS.read()


def metrics_payload(meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    snap = recorder.snapshot()
    spans = [
        {"path": path, "count": row[0], "total_s": row[1], "max_s": row[2]}
        for path, row in sorted(snap["spans"].items())
    ]
    payload: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "enabled": recorder.enabled(),
        "counters": dict(sorted(snap["counters"].items())),
        "spans": spans,
        "events": snap["events"],
    }
    if meta:
        payload["meta"] = dict(meta)
    return payload


def write_metrics(
    path: str, meta: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Write the metrics artifact to ``path``; returns the payload."""
    payload = metrics_payload(meta)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


def maybe_write_metrics(
    explicit: Optional[str] = None, meta: Optional[Mapping[str, Any]] = None
) -> Optional[str]:
    """Write the artifact if a path resolves; returns the path written."""
    path = resolve_metrics_path(explicit)
    if path is None:
        return None
    write_metrics(path, meta)
    return path
