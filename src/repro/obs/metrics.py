"""Machine-readable metrics artifacts from the active telemetry recorder.

:func:`write_metrics` serialises the active recorder's snapshot to a JSON
file — the roofline input the ROADMAP asks for.  The path comes from an
explicit ``--metrics PATH`` flag or the ``REPRO_METRICS`` environment
variable (:func:`resolve_metrics_path`).

Schema (``"schema": 2``)::

    {
      "schema": 2,
      "enabled": true,              # was tracing on when written?
      "truncated": false,           # did a ring buffer drop events/intervals?
      "counters": {"fault_sim.cone_evaluations": 123, ...},
      "spans": [                    # sorted by path
        {"path": "fault_sim/b12/words/grade",
         "count": 4, "total_s": 1.25, "max_s": 0.42},
        ...
      ],
      "events": [{"ts": ..., "kind": "lease_expired", ...}, ...],
      "intervals": [                # timeline tier (REPRO_TIMELINE/--trace-out)
        {"path": ..., "start_s": ..., "dur_s": ...,
         "pid": ..., "worker": ..., "task": ...},
        ...
      ],
      "clock": {"wall_anchor_s": ..., "pid": ..., "worker": ...},
      "meta": {                     # caller-provided context, plus:
        "env": {"REPRO_TRACE": "1", ...}   # every *set* REPRO_* knob
      }
    }

Schema history: 1 lacked ``truncated``/``intervals``/``clock`` and the
``meta.env`` provenance snapshot.  The ``env`` snapshot makes a metrics
file self-describing — which knobs shaped the run rides with the run — and
``truncated`` surfaces the ``obs.events_dropped`` / ``obs.intervals_dropped``
ring-buffer counters so a capped artifact cannot masquerade as complete.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Optional

from repro import envvars
from repro.obs import recorder

METRICS_ENV_VAR = envvars.METRICS.name
METRICS_SCHEMA = 2


def resolve_metrics_path(explicit: Optional[str] = None) -> Optional[str]:
    """Explicit path if given, else ``REPRO_METRICS``, else ``None``."""
    if explicit:
        return explicit
    return envvars.METRICS.read()


def metrics_payload(meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    snap = recorder.snapshot()
    spans = [
        {"path": path, "count": row[0], "total_s": row[1], "max_s": row[2]}
        for path, row in sorted(snap["spans"].items())
    ]
    counters = dict(sorted(snap["counters"].items()))
    meta_out: Dict[str, Any] = dict(meta) if meta else {}
    meta_out["env"] = envvars.env_snapshot()
    payload: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "enabled": recorder.enabled(),
        "truncated": bool(
            counters.get("obs.events_dropped")
            or counters.get("obs.intervals_dropped")
        ),
        "counters": counters,
        "spans": spans,
        "events": snap["events"],
        "intervals": snap.get("intervals", []),
        "clock": snap.get("clock", {}),
        "meta": meta_out,
    }
    return payload


def write_metrics(
    path: str, meta: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Write the metrics artifact to ``path``; returns the payload."""
    payload = metrics_payload(meta)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


def maybe_write_metrics(
    explicit: Optional[str] = None, meta: Optional[Mapping[str, Any]] = None
) -> Optional[str]:
    """Write the artifact if a path resolves; returns the path written."""
    path = resolve_metrics_path(explicit)
    if path is None:
        return None
    write_metrics(path, meta)
    return path
