"""repro.obs — dependency-free telemetry: counters, spans, event log.

Off by default and near-free when off: a module-level no-op recorder takes
every call until ``REPRO_TRACE=1`` or :func:`enable` swaps in a real one.
See :mod:`repro.obs.recorder` for the primitives and the cross-process
snapshot/absorb protocol, and :mod:`repro.obs.metrics` for the JSON
artifact written by ``--metrics PATH`` / ``REPRO_METRICS``.
"""

from repro.obs.metrics import (
    METRICS_ENV_VAR,
    METRICS_SCHEMA,
    maybe_write_metrics,
    metrics_payload,
    resolve_metrics_path,
    write_metrics,
)
from repro.obs.recorder import (
    MAX_EVENTS,
    MAX_INTERVALS,
    NullRecorder,
    Recorder,
    TIMELINE_ENV_VAR,
    TRACE_ENV_VAR,
    absorb_task,
    active,
    add_counters,
    counter,
    disable,
    enable,
    enable_timeline,
    enabled,
    event,
    reset,
    set_event_file,
    set_worker,
    snapshot,
    span,
    task_capture,
    timeline_enabled,
)

__all__ = [
    "MAX_EVENTS",
    "MAX_INTERVALS",
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "NullRecorder",
    "Recorder",
    "TIMELINE_ENV_VAR",
    "TRACE_ENV_VAR",
    "absorb_task",
    "active",
    "add_counters",
    "counter",
    "disable",
    "enable",
    "enable_timeline",
    "enabled",
    "event",
    "maybe_write_metrics",
    "metrics_payload",
    "reset",
    "resolve_metrics_path",
    "set_event_file",
    "set_worker",
    "snapshot",
    "span",
    "task_capture",
    "timeline_enabled",
    "write_metrics",
]
