"""repro.obs — dependency-free telemetry: counters, spans, event log.

Off by default and near-free when off: a module-level no-op recorder takes
every call until ``REPRO_TRACE=1`` or :func:`enable` swaps in a real one.
See :mod:`repro.obs.recorder` for the primitives and the cross-process
snapshot/absorb protocol, and :mod:`repro.obs.metrics` for the JSON
artifact written by ``--metrics PATH`` / ``REPRO_METRICS``.
"""

from repro.obs.metrics import (
    METRICS_ENV_VAR,
    METRICS_SCHEMA,
    maybe_write_metrics,
    metrics_payload,
    resolve_metrics_path,
    write_metrics,
)
from repro.obs.recorder import (
    MAX_EVENTS,
    NullRecorder,
    Recorder,
    TRACE_ENV_VAR,
    absorb_task,
    active,
    add_counters,
    counter,
    disable,
    enable,
    enabled,
    event,
    reset,
    set_event_file,
    snapshot,
    span,
    task_capture,
)

__all__ = [
    "MAX_EVENTS",
    "METRICS_ENV_VAR",
    "METRICS_SCHEMA",
    "NullRecorder",
    "Recorder",
    "TRACE_ENV_VAR",
    "absorb_task",
    "active",
    "add_counters",
    "counter",
    "disable",
    "enable",
    "enabled",
    "event",
    "maybe_write_metrics",
    "metrics_payload",
    "reset",
    "resolve_metrics_path",
    "set_event_file",
    "snapshot",
    "span",
    "task_capture",
    "write_metrics",
]
