"""Live cluster top: tail a queue spool's per-worker event logs.

``python -m repro.obs top --spool DIR`` polls the durable JSONL event logs
queue workers append under ``<spool>/events/<worker>.jsonl`` (plus the
spool's task/claim/result directories) and prints per-worker claimed/done/
failed counts, task rates over the refresh window, and queue depths — a
``top(1)`` for an in-flight distributed run, needing nothing but read
access to the shared spool.

The module only *reads*; it never touches recorder state, so pointing it
at a live production spool is safe.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Mapping, Optional

from repro.obs import recorder

#: Spool subdirectory layout (mirrors repro.cluster.transport.SPOOL_DIRS;
#: duplicated here so the read-only viewer needs no cluster import).
EVENTS_SUBDIR = "events"
QUEUE_SUBDIRS = ("tasks", "claimed", "results", "workers")

#: A worker whose liveness file is older than this many seconds is shown
#: as gone (matches the transport's generous default lease scale).
LIVENESS_STALE_S = 30.0

#: Worker event kinds tallied per worker.
_TALLY_KINDS = ("task_claimed", "task_done", "task_failed", "chaos_injected")


def spool_snapshot(spool: str) -> Dict[str, Any]:
    """One point-in-time view of a spool: per-worker tallies + queue depths."""
    workers: Dict[str, Dict[str, Any]] = {}
    events_dir = os.path.join(spool, EVENTS_SUBDIR)
    if os.path.isdir(events_dir):
        for name in sorted(os.listdir(events_dir)):
            if not name.endswith(".jsonl"):
                continue
            worker_id = name[: -len(".jsonl")]
            records = recorder.read_events(os.path.join(events_dir, name))
            stats: Dict[str, Any] = {kind: 0 for kind in _TALLY_KINDS}
            stats["exit_reason"] = None
            last: Optional[Mapping[str, Any]] = None
            for record in records:
                kind = record.get("kind")
                if kind in stats and isinstance(stats.get(kind), int):
                    stats[kind] += 1
                if kind == "worker_exit":
                    stats["exit_reason"] = record.get("reason")
                last = record
            stats["last_kind"] = last.get("kind") if last else None
            stats["last_ts"] = last.get("ts") if last else None
            workers[worker_id] = stats
    liveness_dir = os.path.join(spool, "workers")
    now = time.time()
    if os.path.isdir(liveness_dir):
        for name in os.listdir(liveness_dir):
            stats = workers.setdefault(
                name, {kind: 0 for kind in _TALLY_KINDS}
            )
            try:
                age = now - os.path.getmtime(os.path.join(liveness_dir, name))
            except OSError:
                continue
            stats["alive"] = age < LIVENESS_STALE_S
            stats["heartbeat_age_s"] = age
    depths = {}
    for sub in QUEUE_SUBDIRS:
        directory = os.path.join(spool, sub)
        try:
            depths[sub] = len(os.listdir(directory))
        except OSError:
            depths[sub] = 0
    return {"workers": workers, "depths": depths, "ts": now}


def render_snapshot(
    snap: Mapping[str, Any], previous: Optional[Mapping[str, Any]] = None
) -> str:
    """Render one snapshot; rates come from the delta to ``previous``."""
    lines = []
    depths = snap["depths"]
    lines.append(
        f"spool: tasks {depths.get('tasks', 0)} | claimed {depths.get('claimed', 0)} "
        f"| results {depths.get('results', 0)} | workers {depths.get('workers', 0)}"
    )
    header = (
        f"{'worker':<26} {'state':<8} {'claimed':>7} {'done':>5} "
        f"{'failed':>6} {'chaos':>5} {'rate/s':>7}  last event"
    )
    lines.append(header)
    lines.append("-" * len(header))
    prev_workers = (previous or {}).get("workers", {})
    elapsed = None
    if previous is not None:
        elapsed = max(float(snap["ts"]) - float(previous["ts"]), 1e-9)
    for worker_id, stats in sorted(snap["workers"].items()):
        if stats.get("exit_reason"):
            state = f"exit:{stats['exit_reason']}"[:8]
        elif stats.get("alive"):
            state = "alive"
        elif stats.get("alive") is False:
            state = "stale"
        else:
            state = "gone"
        rate = ""
        if elapsed is not None:
            before = prev_workers.get(worker_id, {})
            delta = stats.get("task_done", 0) - before.get("task_done", 0)
            rate = f"{delta / elapsed:.2f}"
        lines.append(
            f"{worker_id:<26} {state:<8} {stats.get('task_claimed', 0):>7} "
            f"{stats.get('task_done', 0):>5} {stats.get('task_failed', 0):>6} "
            f"{stats.get('chaos_injected', 0):>5} {rate:>7}  "
            f"{stats.get('last_kind') or '-'}"
        )
    if not snap["workers"]:
        lines.append("(no worker event logs yet)")
    return "\n".join(lines)


def run_top(
    spool: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out=print,
) -> int:
    """Poll ``spool`` and print a snapshot per tick.

    ``iterations=None`` runs until interrupted (the interactive mode);
    tests and CI smoke steps pass a small count.  Returns 0, or 1 when the
    spool directory does not exist at all.
    """
    if not os.path.isdir(spool):
        out(f"top: no such spool directory: {spool}")
        return 1
    previous: Optional[Dict[str, Any]] = None
    count = 0
    try:
        while iterations is None or count < iterations:
            if count:
                time.sleep(interval)
            snap = spool_snapshot(spool)
            stamp = time.strftime("%H:%M:%S", time.localtime(snap["ts"]))
            out(f"-- repro.obs top @ {stamp} ({spool})")
            out(render_snapshot(snap, previous))
            previous = snap
            count += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0
