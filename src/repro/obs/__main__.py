"""``python -m repro.obs`` — timeline tooling over metrics artifacts.

Subcommands:

* ``export-trace METRICS.json -o trace.json`` — Chrome trace-event JSON
  from a schema-2 metrics artifact; open at https://ui.perfetto.dev (one
  track per worker, task ids in the event args).
* ``report METRICS.json [--spool DIR]`` — human run report: per-kernel
  span table, per-worker utilization/idle gaps, straggler and
  critical-path summary, retry/quarantine/degradation recap.  ``--spool``
  merges the durable per-worker event logs so retried tasks are attributed
  to the worker that last claimed them (even one that was SIGKILLed).
* ``top --spool DIR`` — live per-worker claimed/done/failed counts and
  rates tailed from the spool's event logs.
* ``history append|compare`` — fold ``BENCH_engine.json`` into the
  ``BENCH_history.jsonl`` ledger / flag per-profile speedup regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.obs import history as obs_history
from repro.obs import recorder
from repro.obs import report as obs_report
from repro.obs import timeline
from repro.obs import top as obs_top


def _load_payload(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a metrics JSON object")
    return payload


def _spool_events(spool: str) -> List[dict]:
    events: List[dict] = []
    events_dir = os.path.join(spool, obs_top.EVENTS_SUBDIR)
    if not os.path.isdir(events_dir):
        return events
    for name in sorted(os.listdir(events_dir)):
        if name.endswith(".jsonl"):
            events.extend(recorder.read_events(os.path.join(events_dir, name)))
    return events


def _cmd_export_trace(args: argparse.Namespace) -> int:
    payload = _load_payload(args.metrics)
    if not payload.get("intervals"):
        print(
            f"export-trace: {args.metrics} has no timeline intervals "
            "(run with REPRO_TIMELINE=1 or --trace-out); exporting events only",
            file=sys.stderr,
        )
    out = timeline.write_trace(args.out, payload)
    n = len(payload.get("intervals") or [])
    print(f"wrote {out} ({n} interval{'s' if n != 1 else ''}); "
          "open at https://ui.perfetto.dev")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    extra = None
    if os.path.isdir(args.metrics):
        # A run/spool directory: report over its durable event logs alone.
        payload: dict = {"schema": None, "enabled": None, "events": []}
        extra = _spool_events(args.metrics)
        if not extra:
            print(f"report: no event logs under {args.metrics}", file=sys.stderr)
            return 1
    else:
        payload = _load_payload(args.metrics)
        if args.spool:
            extra = _spool_events(args.spool)
    print(obs_report.render_report(payload, extra_events=extra))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    return obs_top.run_top(
        args.spool, interval=args.interval, iterations=args.iterations
    )


def _cmd_history(args: argparse.Namespace) -> int:
    if args.action == "append":
        record, appended = obs_history.append(args.bench, args.history)
        state = "appended" if appended else "already recorded (same sha+timestamp)"
        print(
            f"{args.history}: {state} — {record['git_sha'][:12]} @ "
            f"{record['timestamp']}"
        )
        return 0
    # compare
    entries = obs_history.load_history(args.history)
    text, regressions = obs_history.render_compare(
        entries, threshold=args.threshold
    )
    print(text)
    if regressions and args.strict:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Timeline export, run reports and bench history.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    export = sub.add_parser(
        "export-trace",
        help="write Chrome trace-event JSON from a metrics artifact",
    )
    export.add_argument("metrics", help="metrics JSON file (schema 2)")
    export.add_argument(
        "-o", "--out", default="trace.json", help="output path (default trace.json)"
    )
    export.set_defaults(func=_cmd_export_trace)

    report = sub.add_parser(
        "report", help="print a human run report from a metrics file or run dir"
    )
    report.add_argument(
        "metrics", help="metrics JSON file, or a spool/run directory of event logs"
    )
    report.add_argument(
        "--spool",
        default="",
        help="also merge per-worker event logs from this spool directory",
    )
    report.set_defaults(func=_cmd_report)

    top = sub.add_parser(
        "top", help="live per-worker counts/rates tailed from a queue spool"
    )
    top.add_argument("--spool", required=True, help="spool directory to tail")
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh seconds (default 2)"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N refreshes (default: run until interrupted)",
    )
    top.set_defaults(func=_cmd_top)

    hist = sub.add_parser(
        "history", help="bench-history ledger: append / compare"
    )
    hist.add_argument("action", choices=("append", "compare"))
    hist.add_argument(
        "--bench",
        default="BENCH_engine.json",
        help="bench artifact to fold on append (default BENCH_engine.json)",
    )
    hist.add_argument(
        "--history",
        default=obs_history.HISTORY_FILE,
        help=f"ledger path (default {obs_history.HISTORY_FILE})",
    )
    hist.add_argument(
        "--threshold",
        type=float,
        default=obs_history.DEFAULT_THRESHOLD,
        help="regression ratio for compare (flag when latest < threshold x "
        f"previous; default {obs_history.DEFAULT_THRESHOLD})",
    )
    hist.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when compare finds regressions (default: report only)",
    )
    hist.set_defaults(func=_cmd_history)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as err:
        print(f"python -m repro.obs: error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
