"""Bench-history ledger: fold ``BENCH_engine.json`` runs into a JSONL trail.

``BENCH_engine.json`` is overwritten on every benchmark run, so by itself
the repo has no performance *trajectory* — a regression is only visible if
someone happens to diff the file in review.  :func:`append` folds each run
into one compact JSON line in ``BENCH_history.jsonl``, keyed by
``(git_sha, timestamp)`` (idempotent: re-appending the same run is a
no-op), and :func:`compare` flags per-profile speedup regressions between
the two most recent entries beyond a threshold ratio.

CLI: ``python -m repro.obs history append|compare`` (see
:mod:`repro.obs.__main__`); CI appends the bench job's artifact and runs
the compare check so the trajectory stops being empty.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Tuple

#: Default ledger file, sibling to BENCH_engine.json at the repo root.
HISTORY_FILE = "BENCH_history.jsonl"

#: Per-profile speedup keys compared between consecutive ledger entries.
COMPARE_KEYS = (
    "fault_speedup_packed_vs_naive",
    "fault_speedup_sharded_vs_packed",
)

#: Flag when a speedup falls below this fraction of the previous entry.
#: Generous on purpose: shared CI runners are noisy; the ledger exists to
#: catch step-function regressions, not 5% jitter.
DEFAULT_THRESHOLD = 0.6


def fold_bench(bench: Mapping[str, Any]) -> Dict[str, Any]:
    """One compact ledger record from a full ``BENCH_engine.json`` payload."""
    profiles: Dict[str, Dict[str, Any]] = {}
    for row in bench.get("profiles", []):
        circuit = row.get("circuit")
        if not circuit:
            continue
        entry: Dict[str, Any] = {}
        for key in COMPARE_KEYS:
            if key in row:
                entry[key] = row[key]
        seconds = row.get("seconds") or {}
        entry["fault_seconds"] = {
            backend: timing.get("fault")
            for backend, timing in seconds.items()
            if isinstance(timing, Mapping)
        }
        profiles[circuit] = entry
    gates = {
        "words_gate_speedup": (bench.get("fault_modes") or {}).get(
            "words_gate_speedup"
        ),
        "faults_gate_speedup": (bench.get("fault_parallel") or {}).get(
            "faults_gate_speedup"
        ),
        "atpg_compiled_speedup": ((bench.get("atpg") or {}).get("largest") or {}).get(
            "compiled_speedup"
        ),
        "cluster_mp_vs_sharded_slowdown": (bench.get("cluster") or {}).get(
            "mp_vs_sharded_slowdown"
        ),
        "obs_overhead_pct": ((bench.get("obs") or {}).get("overhead") or {}).get(
            "enabled_overhead_pct"
        ),
    }
    return {
        "git_sha": bench.get("git_sha", "unknown"),
        "timestamp": bench.get("timestamp", "unknown"),
        "bench_schema": bench.get("schema"),
        "python": bench.get("python"),
        "sharded_jobs": bench.get("sharded_jobs"),
        "available_cores": bench.get("available_cores"),
        "profiles": profiles,
        "gates": gates,
    }


def load_history(path: str) -> List[Dict[str, Any]]:
    """Read the ledger, tolerating a torn/garbage line (skipped)."""
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return records
    return records


def append(
    bench_path: str, history_path: str = HISTORY_FILE
) -> Tuple[Dict[str, Any], bool]:
    """Fold one bench artifact into the ledger.

    Returns ``(record, appended)``; ``appended`` is ``False`` when an entry
    with the same ``(git_sha, timestamp)`` key already exists (idempotent —
    a retried CI job cannot duplicate the trajectory).
    """
    with open(bench_path, "r", encoding="utf-8") as handle:
        bench = json.load(handle)
    record = fold_bench(bench)
    key = (record["git_sha"], record["timestamp"])
    for existing in load_history(history_path):
        if (existing.get("git_sha"), existing.get("timestamp")) == key:
            return record, False
    directory = os.path.dirname(os.path.abspath(history_path))
    os.makedirs(directory, exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record, True


def compare(
    history: List[Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Per-profile speedup regressions between the last two ledger entries.

    A regression is a :data:`COMPARE_KEYS` value in the latest entry below
    ``threshold`` times the previous entry's value.  Returns one dict per
    regression: ``{profile, key, previous, latest, ratio}``; empty when the
    ledger has fewer than two entries or nothing regressed.
    """
    if len(history) < 2:
        return []
    previous, latest = history[-2], history[-1]
    regressions: List[Dict[str, Any]] = []
    prev_profiles = previous.get("profiles") or {}
    for circuit, entry in sorted((latest.get("profiles") or {}).items()):
        baseline = prev_profiles.get(circuit)
        if not baseline:
            continue
        for key in COMPARE_KEYS:
            old = baseline.get(key)
            new = entry.get(key)
            if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
                continue
            if old <= 0:
                continue
            ratio = new / old
            if ratio < threshold:
                regressions.append(
                    {
                        "profile": circuit,
                        "key": key,
                        "previous": old,
                        "latest": new,
                        "ratio": ratio,
                    }
                )
    return regressions


def render_compare(
    history: List[Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[str, List[Dict[str, Any]]]:
    """Human summary of the latest-vs-previous comparison plus regressions."""
    lines: List[str] = []
    if not history:
        return "bench history: empty ledger", []
    latest = history[-1]
    lines.append(
        f"bench history: {len(history)} entr{'y' if len(history) == 1 else 'ies'}; "
        f"latest {latest.get('git_sha', '?')[:12]} @ {latest.get('timestamp', '?')}"
    )
    if len(history) < 2:
        lines.append("no previous entry to compare against")
        return "\n".join(lines), []
    previous = history[-2]
    lines.append(
        f"comparing against {previous.get('git_sha', '?')[:12]} @ "
        f"{previous.get('timestamp', '?')} (threshold ratio {threshold:.2f})"
    )
    regressions = compare(history, threshold=threshold)
    prev_profiles = previous.get("profiles") or {}
    for circuit, entry in sorted((latest.get("profiles") or {}).items()):
        baseline = prev_profiles.get(circuit) or {}
        for key in COMPARE_KEYS:
            old, new = baseline.get(key), entry.get(key)
            if isinstance(old, (int, float)) and isinstance(new, (int, float)) and old > 0:
                lines.append(
                    f"  {circuit:<8} {key:<34} {old:>7.2f}x -> {new:>7.2f}x "
                    f"(ratio {new / old:.2f})"
                )
    if regressions:
        lines.append("REGRESSIONS:")
        for reg in regressions:
            lines.append(
                f"  {reg['profile']} {reg['key']}: {reg['previous']:.2f}x -> "
                f"{reg['latest']:.2f}x (ratio {reg['ratio']:.2f} < {threshold:.2f})"
            )
    else:
        lines.append("no regressions beyond the threshold")
    return "\n".join(lines), regressions
