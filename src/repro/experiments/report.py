"""Tabular reporting helpers shared by all experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Value = Union[int, float, str, None]


@dataclass
class TableResult:
    """A reproduced table: title, column names and one dict per row.

    Attributes:
        title: human-readable table title (includes the paper table number).
        columns: ordered column names; every row dict uses these keys.
        rows: the data rows.
        notes: free-form caveats printed under the table (e.g. which workloads
            used synthetic cubes).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Value]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def column(self, name: str) -> List[Value]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: Value) -> Optional[Dict[str, Value]]:
        """First row whose ``key_column`` equals ``key`` (None if absent)."""
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        return None


def _format_value(value: Value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(result: TableResult) -> str:
    """Render a :class:`TableResult` as aligned plain text."""
    header = list(result.columns)
    body = [[_format_value(row.get(col)) for col in header] for row in result.rows]
    widths = [len(col) for col in header]
    for line in body:
        for index, cell in enumerate(line):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [result.title, "=" * len(result.title), render_line(header), render_line(["-" * w for w in widths])]
    lines.extend(render_line(line) for line in body)
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_markdown(result: TableResult) -> str:
    """Render a :class:`TableResult` as a GitHub-flavoured markdown table."""
    header = "| " + " | ".join(result.columns) + " |"
    separator = "| " + " | ".join("---" for _ in result.columns) + " |"
    lines = [f"### {result.title}", "", header, separator]
    for row in result.rows:
        lines.append("| " + " | ".join(_format_value(row.get(col)) for col in result.columns) + " |")
    if result.notes:
        lines.append("")
        lines.extend(f"*{note}*" for note in result.notes)
    return "\n".join(lines)


def percent_improvement(baseline: Value, proposed: Value) -> Optional[float]:
    """Paper-convention percentage improvement, None when undefined."""
    if baseline in (None, 0) or proposed is None:
        return None
    return 100.0 * (float(baseline) - float(proposed)) / float(baseline)
