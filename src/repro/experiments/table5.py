"""Table V reproduction: I-Ordering + DP-fill vs the best existing techniques.

For every benchmark the table reports the peak input toggles of each
technique and the percentage improvement of the proposed combination over
each existing one (the paper's columns 6-9).
"""

from __future__ import annotations

from typing import List, Optional

from repro.benchmarks_data.paper_results import PAPER_TABLE5
from repro.experiments.report import TableResult, percent_improvement
from repro.experiments.techniques import TECHNIQUES, apply_all_techniques
from repro.experiments.workloads import build_workloads

COLUMNS = (
    ["circuit"]
    + TECHNIQUES
    + ["%impr Tool", "%impr ISA", "%impr Adj-fill", "%impr XStat", "Proposed (paper)"]
)


def run(names: Optional[List[str]] = None, seed: int = 0) -> TableResult:
    """Reproduce Table V over the default (or given) benchmarks."""
    workloads = build_workloads(names, seed=seed)
    result = TableResult(
        title="Table V - peak input toggles: proposed vs existing techniques",
        columns=COLUMNS,
    )
    for workload in workloads:
        outcomes = apply_all_techniques(workload.cubes)
        row = {"circuit": workload.name}
        for technique in TECHNIQUES:
            row[technique] = outcomes[technique].peak_input_toggles
        proposed = outcomes["Proposed"].peak_input_toggles
        for baseline in ("Tool", "ISA", "Adj-fill", "XStat"):
            improvement = percent_improvement(outcomes[baseline].peak_input_toggles, proposed)
            row[f"%impr {baseline}"] = None if improvement is None else round(improvement, 1)
        paper_row = PAPER_TABLE5.get(workload.name, {})
        row["Proposed (paper)"] = paper_row.get("Proposed")
        result.rows.append(row)
    result.notes.append(
        "Tool = tool ordering + best existing fill; ISA = nearest-neighbour ordering + adjacent"
        " fill; Adj-fill = tool ordering + adjacent fill; XStat = X-Stat ordering + X-Stat fill;"
        " Proposed = I-Ordering + DP-fill"
    )
    return result
