"""The end-to-end low-power-test techniques compared in Tables V and VI.

A *technique* is an (ordering, filling) pair as the paper frames its final
comparison:

=============  ========================================================
column         reconstruction
=============  ========================================================
``Tool``       tool ordering + the best of the pre-existing fills
               (MT / R / 0 / 1 / B), mirroring "minimum peak input
               toggles obtained among all aforementioned X-filling
               methods" under the tool ordering
``ISA``        ISA (Girard-style nearest-neighbour) ordering + adjacent
               fill, the test-vector-ordering technique of ref. [20]
``Adj-fill``   tool ordering + adjacent fill, the X-filling technique of
               ref. [21]
``XStat``      X-Stat ordering + X-Stat fill, ref. [22]
``Proposed``   I-Ordering + DP-fill (this paper)
=============  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.dpfill import dp_fill
from repro.cubes.cube import TestSet
from repro.cubes.metrics import peak_toggles
from repro.filling import get_filler
from repro.orderings import get_ordering

#: Technique column order used by Tables V and VI.
TECHNIQUES: List[str] = ["Tool", "ISA", "Adj-fill", "XStat", "Proposed"]

_EXISTING_FILLS = ["MT-fill", "R-fill", "0-fill", "1-fill", "B-fill"]


@dataclass
class TechniqueOutcome:
    """A filled, ordered pattern set produced by one technique."""

    technique: str
    filled: TestSet
    peak_input_toggles: int


def _best_existing_fill(ordered: TestSet) -> TestSet:
    best: TestSet = None  # type: ignore[assignment]
    best_peak = None
    for name in _EXISTING_FILLS:
        candidate = get_filler(name).fill(ordered)
        peak = peak_toggles(candidate)
        if best_peak is None or peak < best_peak:
            best, best_peak = candidate, peak
    return best


def _tool_technique(cubes: TestSet) -> TestSet:
    return _best_existing_fill(get_ordering("tool").order(cubes).ordered)


def _isa_technique(cubes: TestSet) -> TestSet:
    ordered = get_ordering("isa").order(cubes).ordered
    return get_filler("Adj-fill").fill(ordered)


def _adjfill_technique(cubes: TestSet) -> TestSet:
    ordered = get_ordering("tool").order(cubes).ordered
    return get_filler("Adj-fill").fill(ordered)


def _xstat_technique(cubes: TestSet) -> TestSet:
    ordered = get_ordering("xstat").order(cubes).ordered
    return get_filler("B-fill").fill(ordered)


def _proposed_technique(cubes: TestSet) -> TestSet:
    # I-Ordering hands back the extraction of its winning ordering; passing
    # it to dp_fill skips the duplicate extraction of the order-then-fill
    # flow (results are identical either way).
    result = get_ordering("i-ordering").order(cubes)
    return dp_fill(result.ordered, extraction=result.extraction).filled


_TECHNIQUE_BUILDERS: Dict[str, Callable[[TestSet], TestSet]] = {
    "Tool": _tool_technique,
    "ISA": _isa_technique,
    "Adj-fill": _adjfill_technique,
    "XStat": _xstat_technique,
    "Proposed": _proposed_technique,
}


def apply_technique(name: str, cubes: TestSet) -> TechniqueOutcome:
    """Run one technique on a tool-ordered cube set.

    Raises:
        KeyError: for unknown technique names.
    """
    if name not in _TECHNIQUE_BUILDERS:
        raise KeyError(f"unknown technique {name!r}; available: {TECHNIQUES}")
    filled = _TECHNIQUE_BUILDERS[name](cubes)
    return TechniqueOutcome(technique=name, filled=filled, peak_input_toggles=peak_toggles(filled))


def apply_all_techniques(cubes: TestSet) -> Dict[str, TechniqueOutcome]:
    """Run every technique of Tables V/VI on the same cube set."""
    return {name: apply_technique(name, cubes) for name in TECHNIQUES}
