"""Table III reproduction: peak input toggles under the X-Stat ordering."""

from __future__ import annotations

from typing import List, Optional

from repro.benchmarks_data.paper_results import PAPER_TABLE3
from repro.experiments.fill_sweep import fill_sweep_table
from repro.experiments.report import TableResult


def run(names: Optional[List[str]] = None, seed: int = 0) -> TableResult:
    """Reproduce Table III: X-Stat ordering x {MT, R, 0, 1, B, DP}-fill."""
    return fill_sweep_table(
        title="Table III - peak input toggles, X-Stat ordering",
        ordering_name="xstat",
        names=names,
        seed=seed,
        paper_table=PAPER_TABLE3,
    )
