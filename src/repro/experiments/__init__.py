"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...) -> TableResult`` plus helpers, and
:mod:`repro.experiments.runner` provides the ``dpfill-experiments`` command
line entry point that regenerates the whole evaluation and writes a report.

The mapping between paper artefacts and modules is:

=============  ===========================================
paper          module
=============  ===========================================
Table I        :mod:`repro.experiments.table1`
Fig. 1         :mod:`repro.experiments.figure1`
Table II       :mod:`repro.experiments.table2`
Table III      :mod:`repro.experiments.table3`
Table IV       :mod:`repro.experiments.table4`
Table V        :mod:`repro.experiments.table5`
Table VI       :mod:`repro.experiments.table6`
Fig. 2(a,b,c)  :mod:`repro.experiments.figure2`
=============  ===========================================
"""

from repro.experiments.report import TableResult, render_table
from repro.experiments.workloads import Workload, build_workload, default_workload_names

__all__ = [
    "TableResult",
    "render_table",
    "Workload",
    "build_workload",
    "default_workload_names",
]
