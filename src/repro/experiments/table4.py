"""Table IV reproduction: peak input toggles under the proposed I-Ordering."""

from __future__ import annotations

from typing import List, Optional

from repro.benchmarks_data.paper_results import PAPER_TABLE4
from repro.experiments.fill_sweep import fill_sweep_table
from repro.experiments.report import TableResult


def run(names: Optional[List[str]] = None, seed: int = 0) -> TableResult:
    """Reproduce Table IV: I-Ordering x {MT, R, 0, 1, B, DP}-fill."""
    return fill_sweep_table(
        title="Table IV - peak input toggles, I-Ordering",
        ordering_name="i-ordering",
        names=names,
        seed=seed,
        paper_table=PAPER_TABLE4,
    )
