"""Workload construction: circuit + tool-ordered cube set per benchmark.

A *workload* bundles everything one experiment row needs: the (possibly
scaled) stand-in circuit, the test-cube set in generation ("tool") order, and
bookkeeping about how the cubes were produced.

Two cube sources exist, chosen per profile:

* ``"podem"`` — the full ATPG flow (collapse, PODEM, fault-dropping).  Used
  for the small circuits where the pure-Python engine is fast; the cube
  X density is whatever the flow produces.
* ``"synthetic"`` — the calibrated cube generator targeting the X density the
  paper reports in Table I.  Used for the medium/large profiles, where
  running PODEM in pure Python would dominate the experiment runtime.

Workloads are cached in memory (per process) and optionally on disk, because
every table of the evaluation reuses the same workloads.

Environment variables
---------------------
``REPRO_INCLUDE_LARGE=1``
    also build the largest profiles (b14–b22), scaled to a tractable size.
``REPRO_FULL_SCALE=1``
    do not scale the large profiles (slow; full-size circuits and cube sets).
``REPRO_CACHE_DIR``
    directory for the on-disk workload cache (default ``.repro_cache`` in the
    working directory); set to ``0`` or ``off`` to disable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import envvars
from repro.atpg.tpg import generate_test_cubes
from repro.benchmarks_data.profiles import BenchmarkProfile, get_profile
from repro.circuit.library import itc99_like
from repro.circuit.netlist import Circuit
from repro.cubes.cube import TestSet
from repro.cubes.generator import CubeSetSpec, generate_cube_set

#: Circuits at or below this gate count run the full PODEM flow by default.
ATPG_GATE_LIMIT = 250
#: Large profiles are scaled so their stand-in circuit stays below this size.
SCALED_GATE_TARGET = 2500
#: ATPG knobs chosen to keep the pure-Python flow fast.
ATPG_MAX_FAULTS = 150
ATPG_BACKTRACK_LIMIT = 15


@dataclass
class Workload:
    """One benchmark's circuit and tool-ordered cube set.

    Attributes:
        name: benchmark name (``b01`` ... ``b22``).
        profile: the Table I profile the workload reproduces.
        circuit: the stand-in circuit (possibly scaled for large profiles).
        cubes: partially specified test cubes in generation order.
        cube_source: ``"podem"`` or ``"synthetic"``.
        scale: circuit scaling factor applied (1.0 = full published size).
    """

    name: str
    profile: BenchmarkProfile
    circuit: Circuit
    cubes: TestSet
    cube_source: str
    scale: float = 1.0

    @property
    def x_percent(self) -> float:
        """Measured X density of the cube set, as a percentage."""
        return 100.0 * self.cubes.x_fraction


def _cache_dir() -> Optional[Path]:
    value = envvars.CACHE_DIR.read()
    if value is None:
        return None
    path = Path(value)
    path.mkdir(parents=True, exist_ok=True)
    return path


def include_large_profiles() -> bool:
    """Whether the harness should also build the largest ITC'99 profiles."""
    return envvars.INCLUDE_LARGE.read()


def full_scale() -> bool:
    """Whether large profiles should be built at their full published size."""
    return envvars.FULL_SCALE.read()


def default_workload_names(include_large: Optional[bool] = None) -> List[str]:
    """Benchmarks the experiments run over, in size order."""
    from repro.benchmarks_data.profiles import default_benchmark_names

    if include_large is None:
        include_large = include_large_profiles()
    return default_benchmark_names(include_large=include_large)


def _load_cached_cubes(key: str, n_pins: int) -> Optional[TestSet]:
    directory = _cache_dir()
    if directory is None:
        return None
    path = directory / f"{key}.npz"
    if not path.exists():
        return None
    try:
        data = np.load(path)["cubes"]
    except Exception:  # pragma: no cover  # repro: allow[R6] corrupt cache
        return None  # entries are discarded and rebuilt from scratch
    if data.ndim != 2 or data.shape[1] != n_pins:
        return None
    return TestSet.from_matrix(data.astype(np.int8))


def _store_cached_cubes(key: str, cubes: TestSet) -> None:
    directory = _cache_dir()
    if directory is None:
        return
    # Write-to-temp + atomic rename: parallel experiment cells may build the
    # same workload concurrently, and a torn .npz must never be observable
    # (a half-written file would otherwise poison every later run).
    path = directory / f"{key}.npz"
    temp = directory / f".{key}.{os.getpid()}.tmp.npz"
    try:
        np.savez_compressed(temp, cubes=cubes.matrix)
        os.replace(temp, path)
    except Exception:  # pragma: no cover  # repro: allow[R6] the cache is an
        # optimisation; a full disk must not fail the experiment itself
        try:
            temp.unlink()
        except OSError:
            pass


def _cube_cache_key(
    profile: BenchmarkProfile, circuit: Circuit, source: str, seed: int
) -> str:
    """Disk-cache key for one workload's cube set.

    The key must change whenever *anything* that shaped the cubes changes:
    besides the profile/seed/shape it therefore includes the circuit's
    content digest (an edited netlist must not be served another netlist's
    cubes) and, for the PODEM source, the ATPG knobs (a changed backtrack
    limit, fault cap or dropping mode produces different cubes from the same
    circuit).  The synthetic source instead depends on the targeted X
    density.
    """
    if source == "podem":
        knobs = f"bt{ATPG_BACKTRACK_LIMIT}_mf{ATPG_MAX_FAULTS}_drop1"
    else:
        knobs = f"x{profile.x_fraction:.4f}"
    return (
        f"{profile.name}_{source}_s{seed}_{circuit.n_test_pins}x{profile.n_patterns}"
        f"_{circuit.structure_digest()[:12]}_{knobs}"
    )


def _build_podem_cubes(circuit: Circuit, profile: BenchmarkProfile, seed: int) -> TestSet:
    result = generate_test_cubes(
        circuit,
        max_faults=ATPG_MAX_FAULTS,
        backtrack_limit=ATPG_BACKTRACK_LIMIT,
        seed=seed,
    )
    cubes = result.cubes
    if len(cubes) < 4:
        # Degenerate circuits (nearly everything untestable) fall back to the
        # synthetic generator so downstream experiments still have material.
        return _build_synthetic_cubes(circuit, profile, seed)
    return cubes


def _build_synthetic_cubes(circuit: Circuit, profile: BenchmarkProfile, seed: int) -> TestSet:
    spec = CubeSetSpec(
        n_pins=circuit.n_test_pins,
        n_patterns=profile.n_patterns,
        x_fraction=min(profile.x_fraction, 0.97),
        seed=seed,
    )
    return generate_cube_set(spec)


@lru_cache(maxsize=None)
def build_workload(name: str, seed: int = 0) -> Workload:
    """Build (or fetch from cache) the workload for one benchmark.

    Args:
        name: benchmark name from Table I (``b01`` ... ``b22``).
        seed: seed controlling circuit generation, ATPG dropping order and the
            synthetic cube generator.
    """
    profile = get_profile(name)

    scale = 1.0
    if profile.gates > SCALED_GATE_TARGET and not full_scale():
        scale = SCALED_GATE_TARGET / profile.gates
    circuit = itc99_like(profile.name, scale=None if scale == 1.0 else scale, seed=seed)

    use_podem = profile.gates <= ATPG_GATE_LIMIT
    source = "podem" if use_podem else "synthetic"
    cache_key = _cube_cache_key(profile, circuit, source, seed)

    cubes = _load_cached_cubes(cache_key, circuit.n_test_pins)
    if cubes is None:
        if use_podem:
            cubes = _build_podem_cubes(circuit, profile, seed)
        else:
            cubes = _build_synthetic_cubes(circuit, profile, seed)
        _store_cached_cubes(cache_key, cubes)

    return Workload(
        name=profile.name,
        profile=profile,
        circuit=circuit,
        cubes=cubes,
        cube_source=source,
        scale=scale,
    )


def build_workloads(names: Optional[List[str]] = None, seed: int = 0) -> List[Workload]:
    """Build workloads for ``names`` (default: the default benchmark list)."""
    return [build_workload(name, seed=seed) for name in (names or default_workload_names())]
