"""Figure 2 reproduction: I-Ordering search behaviour and X-stretch statistics.

The paper's Fig. 2 has three panels:

* **2(a)** — the peak input toggles achieved at each iteration (interleave
  size ``k``) of Algorithm 3, for a given circuit;
* **2(b)** — the number of iterations until convergence versus ``log2(n)``
  over all circuits (the empirical O(log n) claim);
* **2(c)** — the distribution of don't-care stretch lengths of the ordered
  pin matrix under the tool, X-Stat and I- orderings (shown for b19 in the
  paper; reproduced for the largest workload in the default set).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.ordering import interleaved_ordering
from repro.cubes.metrics import StretchStats, stretch_histogram
from repro.experiments.report import TableResult
from repro.experiments.workloads import Workload, build_workload, build_workloads
from repro.orderings import get_ordering


@dataclass
class Figure2aSeries:
    """Iteration trace of Algorithm 3 for one circuit (Fig. 2(a))."""

    circuit: str
    k_values: List[int] = field(default_factory=list)
    peak_values: List[int] = field(default_factory=list)


@dataclass
class Figure2bPoint:
    """One circuit's iteration count vs log2(pattern count) (Fig. 2(b))."""

    circuit: str
    n_patterns: int
    log2_n: float
    iterations: int


@dataclass
class Figure2cSeries:
    """X-stretch statistics of one ordering of one circuit (Fig. 2(c))."""

    circuit: str
    ordering: str
    stats: StretchStats

    def bucket_counts(self) -> Dict[str, int]:
        """Histogram bucketed for plotting/reporting."""
        return self.stats.bucketed()


@dataclass
class Figure2Result:
    """All three panels of Fig. 2."""

    panel_a: List[Figure2aSeries] = field(default_factory=list)
    panel_b: List[Figure2bPoint] = field(default_factory=list)
    panel_c: List[Figure2cSeries] = field(default_factory=list)


def run(
    names: Optional[List[str]] = None,
    seed: int = 0,
    stretch_circuit: Optional[str] = None,
    panels: str = "abc",
) -> Figure2Result:
    """Reproduce all three panels of Fig. 2.

    Args:
        names: benchmarks to include (default benchmark list).
        seed: workload seed.
        stretch_circuit: circuit used for panel (c); defaults to the largest
            workload in ``names`` (the paper uses b19).
        panels: which panels to compute (any subset of ``"abc"``).  Panels
            (a) and (b) share the per-benchmark ordering run, so they are
            requested together or not at all; the parallel experiment
            scheduler uses this to split the per-benchmark work (``"ab"``)
            from the single cross-benchmark panel (``"c"``).
    """
    workloads = build_workloads(names, seed=seed)
    result = Figure2Result()

    if "a" in panels or "b" in panels:
        for workload in workloads:
            ordering = interleaved_ordering(workload.cubes)
            result.panel_a.append(
                Figure2aSeries(
                    circuit=workload.name,
                    k_values=[step.k for step in ordering.trace],
                    peak_values=[step.peak for step in ordering.trace],
                )
            )
            result.panel_b.append(
                Figure2bPoint(
                    circuit=workload.name,
                    n_patterns=len(workload.cubes),
                    log2_n=math.log2(max(len(workload.cubes), 2)),
                    iterations=ordering.iterations,
                )
            )

    if "c" in panels:
        target: Workload
        if stretch_circuit is not None:
            target = build_workload(stretch_circuit, seed=seed)
        else:
            target = max(workloads, key=lambda w: w.circuit.n_test_pins)
        for ordering_name in ("tool", "xstat", "i-ordering"):
            ordered = get_ordering(ordering_name).order(target.cubes).ordered
            result.panel_c.append(
                Figure2cSeries(
                    circuit=target.name,
                    ordering=ordering_name,
                    stats=stretch_histogram(ordered),
                )
            )
    return result


def as_tables(result: Figure2Result) -> List[TableResult]:
    """Format the three panels as report tables."""
    table_a = TableResult(
        title="Figure 2(a) - I-Ordering iterations vs peak input toggles",
        columns=["circuit", "k values", "peak toggles per k"],
    )
    for series in result.panel_a:
        table_a.rows.append(
            {
                "circuit": series.circuit,
                "k values": " ".join(str(k) for k in series.k_values),
                "peak toggles per k": " ".join(str(p) for p in series.peak_values),
            }
        )

    table_b = TableResult(
        title="Figure 2(b) - optimum iteration count vs log2(n)",
        columns=["circuit", "patterns", "log2(n)", "iterations"],
    )
    for point in result.panel_b:
        table_b.rows.append(
            {
                "circuit": point.circuit,
                "patterns": point.n_patterns,
                "log2(n)": round(point.log2_n, 2),
                "iterations": point.iterations,
            }
        )

    table_c = TableResult(
        title="Figure 2(c) - don't-care stretch statistics by ordering",
        columns=["circuit", "ordering", "stretches", "mean length", "max length", "buckets"],
    )
    for series in result.panel_c:
        table_c.rows.append(
            {
                "circuit": series.circuit,
                "ordering": series.ordering,
                "stretches": series.stats.total_stretches,
                "mean length": round(series.stats.mean_length, 2),
                "max length": series.stats.max_length,
                "buckets": str(series.bucket_counts()),
            }
        )
    return [table_a, table_b, table_c]
