"""Shared machinery for the ordering x X-filling sweeps (Tables II-IV).

Each of the three tables fixes a test-vector ordering and reports the peak
input toggles of every X-filling method on every benchmark.  The sweep logic
is identical; only the ordering changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cubes.cube import TestSet
from repro.experiments.report import TableResult
from repro.experiments.workloads import build_workloads
from repro.filling import get_filler
from repro.orderings import get_ordering

#: The filling methods of Tables II-IV, in the paper's column order.
FILL_METHODS: List[str] = ["MT-fill", "R-fill", "0-fill", "1-fill", "B-fill", "DP-fill"]


def apply_ordering(ordering_name: str, cubes: TestSet) -> TestSet:
    """Order a cube set by the named ordering algorithm."""
    return get_ordering(ordering_name).order(cubes).ordered


def peak_toggles_by_fill(ordered_cubes: TestSet, fill_methods: Optional[List[str]] = None) -> Dict[str, int]:
    """Peak input toggles of each filling method on an already-ordered cube set."""
    results: Dict[str, int] = {}
    for method in fill_methods or FILL_METHODS:
        outcome = get_filler(method).run(ordered_cubes)
        results[method] = outcome.peak_toggles
    return results


def fill_sweep_table(
    title: str,
    ordering_name: str,
    names: Optional[List[str]] = None,
    seed: int = 0,
    paper_table: Optional[Dict[str, Dict[str, float]]] = None,
) -> TableResult:
    """Build one of the Tables II-IV.

    Args:
        title: table title.
        ordering_name: registered ordering to apply before filling.
        names: benchmark names (default benchmark list).
        seed: workload seed.
        paper_table: the corresponding published table; when given, the
            paper's DP-fill column is appended for side-by-side comparison.
    """
    workloads = build_workloads(names, seed=seed)
    columns = ["circuit"] + FILL_METHODS
    if paper_table is not None:
        columns.append("DP-fill (paper)")
    result = TableResult(title=title, columns=columns)

    for workload in workloads:
        ordered = apply_ordering(ordering_name, workload.cubes)
        row: Dict[str, object] = {"circuit": workload.name}
        row.update(peak_toggles_by_fill(ordered))
        if paper_table is not None:
            paper_row = paper_table.get(workload.name, {})
            row["DP-fill (paper)"] = paper_row.get("DP-fill")
        result.rows.append(row)

    result.notes.append(
        f"ordering: {ordering_name}; DP-fill is provably optimal for each ordering, so its"
        " column must be the row minimum"
    )
    return result
