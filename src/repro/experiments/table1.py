"""Table I reproduction: benchmark sizes and cube X densities.

The paper's Table I motivates X-filling by showing that ATPG cubes are
dominated by don't-cares.  The reproduced table reports, per benchmark, the
stand-in circuit's size, the measured X density of the workload's cube set,
the paper's published density and the cube source (PODEM flow vs calibrated
synthetic generator).
"""

from __future__ import annotations

from typing import List, Optional

from repro.benchmarks_data.profiles import get_profile
from repro.experiments.report import TableResult
from repro.experiments.workloads import build_workloads

COLUMNS = [
    "circuit",
    "pins (PIs+FFs)",
    "gates",
    "patterns",
    "X% (measured)",
    "X% (paper)",
    "cube source",
]


def run(names: Optional[List[str]] = None, seed: int = 0) -> TableResult:
    """Reproduce Table I over the given benchmarks (default benchmark list)."""
    workloads = build_workloads(names, seed=seed)
    result = TableResult(
        title="Table I - test-cube don't-care densities (measured vs paper)",
        columns=COLUMNS,
    )
    for workload in workloads:
        profile = get_profile(workload.name)
        result.rows.append(
            {
                "circuit": workload.name,
                "pins (PIs+FFs)": workload.circuit.n_test_pins,
                "gates": workload.circuit.n_gates,
                "patterns": len(workload.cubes),
                "X% (measured)": round(workload.x_percent, 1),
                "X% (paper)": profile.x_percent,
                "cube source": workload.cube_source,
            }
        )
    result.notes.append(
        "synthetic cube sets are calibrated to the paper's X density; PODEM cube"
        " densities are whatever the pure-Python flow produces on the stand-in circuits"
    )
    if any(w.scale < 1.0 for w in workloads):
        result.notes.append("circuits marked by a scale < 1 are size-reduced stand-ins")
    return result
