"""Figure 1 reproduction: X-Stat's greedy fill vs the optimum fill.

The paper's Fig. 1 shows a tiny pin matrix on which X-Stat's two-phase greedy
fill ends up with a higher peak than the global optimum.  The exact matrix in
the figure is only partially legible in the published scan, so this module
reproduces the *phenomenon* on a constructed instance with the same
structure: overlapping ``0X..X1`` stretches whose greedy squeeze stacks
toggles on one boundary while the optimal fill spreads them out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.dpfill import dp_fill
from repro.cubes.cube import TestSet
from repro.cubes.metrics import toggle_profile
from repro.experiments.report import TableResult
from repro.filling.xstat import XStatFill

#: Pin-major rows of the demonstration instance (one string per input pin).
FIGURE1_ROWS: List[str] = [
    "0XXXXX1",
    "0XXXX1X",
    "0XXX1XX",
    "1XXXXX0",
    "0X1XXX0",
]


def figure1_test_set() -> TestSet:
    """The demonstration cube set (7 patterns over 5 pins)."""
    pin_matrix = np.array(
        [[{"0": 0, "1": 1, "X": 2}[c] for c in row] for row in FIGURE1_ROWS], dtype=np.int8
    )
    return TestSet.from_pin_matrix(pin_matrix)


@dataclass
class Figure1Result:
    """Outcome of the Fig. 1 comparison.

    Attributes:
        xstat_peak: peak toggles of the greedy X-Stat fill.
        optimum_peak: peak toggles of DP-fill (proved optimal).
        xstat_profile: per-boundary toggles of the X-Stat fill.
        optimum_profile: per-boundary toggles of the DP-fill result.
        xstat_rows / optimum_rows: the filled pin-major matrices as strings.
    """

    xstat_peak: int
    optimum_peak: int
    xstat_profile: List[int]
    optimum_profile: List[int]
    xstat_rows: List[str]
    optimum_rows: List[str]

    @property
    def gap(self) -> int:
        """How many toggles the greedy fill loses to the optimum at the peak."""
        return self.xstat_peak - self.optimum_peak


def run(squeeze: str = "left") -> Figure1Result:
    """Run the Fig. 1 comparison.

    Args:
        squeeze: phase-1 squeeze position of the X-Stat reconstruction; the
            ``"left"`` variant matches the figure's greedy adjacent fill most
            closely and exposes the sub-optimality.
    """
    cubes = figure1_test_set()
    xstat_filled = XStatFill(squeeze=squeeze).fill(cubes)
    dp_report = dp_fill(cubes)

    def rows_of(patterns: TestSet) -> List[str]:
        return ["".join(str(int(v)) for v in row) for row in patterns.pin_matrix()]

    return Figure1Result(
        xstat_peak=int(toggle_profile(xstat_filled).max()),
        optimum_peak=dp_report.peak_toggles,
        xstat_profile=[int(v) for v in toggle_profile(xstat_filled)],
        optimum_profile=[int(v) for v in dp_report.boundary_profile],
        xstat_rows=rows_of(xstat_filled),
        optimum_rows=rows_of(dp_report.filled),
    )


def as_table(result: Figure1Result) -> TableResult:
    """Format the Fig. 1 comparison as a :class:`TableResult` for the report."""
    table = TableResult(
        title="Figure 1 - X-Stat greedy fill vs optimum fill (demonstration instance)",
        columns=["fill", "peak toggles", "per-boundary toggles"],
    )
    table.rows.append(
        {
            "fill": "X-Stat (greedy)",
            "peak toggles": result.xstat_peak,
            "per-boundary toggles": " ".join(str(v) for v in result.xstat_profile),
        }
    )
    table.rows.append(
        {
            "fill": "DP-fill (optimum)",
            "peak toggles": result.optimum_peak,
            "per-boundary toggles": " ".join(str(v) for v in result.optimum_profile),
        }
    )
    table.notes.append("the instance is constructed to exhibit the paper's Fig. 1 phenomenon")
    return table
