"""Command-line entry point regenerating every table and figure of the paper.

Installed as ``dpfill-experiments``.  Typical invocations::

    dpfill-experiments                      # all artefacts, default benchmarks
    dpfill-experiments --artifacts 2,4,5    # only Tables II, IV and V
    dpfill-experiments --benchmarks b03,b08 # restrict the benchmark set
    dpfill-experiments --out results.txt    # also write the report to a file
    dpfill-experiments --backend naive      # force the reference simulator
    dpfill-experiments --jobs 4             # 4 worker processes
    REPRO_INCLUDE_LARGE=1 dpfill-experiments  # include scaled b14-b22

Parallel scheduling
-------------------
With ``--jobs N`` (or ``REPRO_JOBS``) the runner splits the work into
independent *cells* — one (artifact, benchmark) pair each, plus whole-artifact
cells for the figures' cross-benchmark parts — and schedules them on the same
spawn-safe process pool the sharded simulation backend uses.  Cells are
submitted all at once so the pool load-balances across artefacts, and merged
back **in deterministic cell order**, so the report text is byte-identical to
a serial run.  Any cell that fails in a worker (or a pool that cannot be
created at all) falls back to in-process execution; parallelism is purely a
scheduling concern and can never change results.

Under ``--backend cluster`` the same cells become cluster work units and go
over the resolved transport instead (``--transport`` /
``REPRO_TRANSPORT``): ``mp`` reproduces the pool behaviour, ``queue``
spools the cells to ``python -m repro.cluster.worker`` processes that may
live on other hosts.  The merge stays in deterministic cell order, so the
report text remains byte-identical for every transport, worker count or
retried task.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.cluster.protocol import cell_task, unwrap_payload
from repro.cluster.transport import (
    TransportError,
    TransportTaskError,
    parse_transport_spec,
    resolve_transport,
    set_default_transport,
)
from repro.engine.backend import (
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
)
from repro.engine.sharded import (
    _CHUNK_TIMEOUT,
    JOBS_ENV_VAR,
    parse_jobs,
    set_default_jobs,
    worker_pool,
)
from repro.experiments import figure1, figure2, table1, table2, table3, table4, table5, table6
from repro.experiments.report import TableResult, render_table
from repro.experiments.workloads import default_workload_names
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs

ARTIFACTS = ["1", "fig1", "2", "3", "4", "5", "6", "fig2"]

#: Artefacts whose tables have exactly one row per benchmark and no
#: cross-benchmark state — safe to split into per-benchmark cells.
_PER_BENCHMARK_ARTIFACTS = {"1", "2", "3", "4", "5", "6"}


def _collect(artifact: str, names: Optional[List[str]], seed: int) -> List[TableResult]:
    with obs.span(f"runner/{artifact}/collect"):
        return _collect_impl(artifact, names, seed)


def _collect_impl(artifact: str, names: Optional[List[str]], seed: int) -> List[TableResult]:
    if artifact == "1":
        return [table1.run(names, seed=seed)]
    if artifact == "fig1":
        return [figure1.as_table(figure1.run())]
    if artifact == "2":
        return [table2.run(names, seed=seed)]
    if artifact == "3":
        return [table3.run(names, seed=seed)]
    if artifact == "4":
        return [table4.run(names, seed=seed)]
    if artifact == "5":
        return [table5.run(names, seed=seed)]
    if artifact == "6":
        return [table6.run(names, seed=seed)]
    if artifact == "fig2":
        return figure2.as_tables(figure2.run(names, seed=seed))
    raise ValueError(f"unknown artifact {artifact!r}; choose from {ARTIFACTS}")


# -- parallel cells ----------------------------------------------------------
#: A cell is (kind, artifact, benchmark names); kinds: "table" (one
#: benchmark of a per-benchmark table), "whole" (a full artefact),
#: "fig2ab" (Fig. 2 panels a+b for one benchmark), "fig2c" (panel c).
Cell = Tuple[str, str, Optional[List[str]]]


def _cells_for(artifact: str, names: List[str]) -> List[Cell]:
    """Decompose one artefact into independently runnable cells."""
    if artifact in _PER_BENCHMARK_ARTIFACTS:
        return [("table", artifact, [name]) for name in names]
    if artifact == "fig2":
        cells: List[Cell] = [("fig2ab", artifact, [name]) for name in names]
        cells.append(("fig2c", artifact, list(names)))
        return cells
    return [("whole", artifact, None)]


def _run_cell(cell: Cell, seed: int) -> List[TableResult]:
    """Execute one cell (in a worker or, as fallback, in process)."""
    kind, artifact, names = cell
    with obs.span(f"runner/{artifact}/{kind}"):
        if kind == "fig2ab":
            return figure2.as_tables(figure2.run(names, seed=seed, panels="ab"))
        if kind == "fig2c":
            return figure2.as_tables(figure2.run(names, seed=seed, panels="c"))
        return _collect(artifact, names, seed)


def _cell_worker(payload: Tuple[Cell, int, str, bool]):
    """Pool task wrapper: pin the worker's backend, then run the cell.

    With tracing requested (the parent's flag, or ``REPRO_TRACE`` inherited
    by the spawned worker), the cell runs inside a telemetry capture and the
    snapshot rides back in the same envelope the cluster protocol uses —
    the parent strips it with :func:`repro.cluster.protocol.unwrap_payload`.
    """
    cell, seed, backend_name, trace = payload
    if default_backend_name() != backend_name:
        set_default_backend(backend_name)
    if not (trace or obs.enabled()):
        return _run_cell(cell, seed)
    capture = obs.task_capture()
    with capture:
        result = _run_cell(cell, seed)
    return {"__repro_obs__": capture.snapshot(), "payload": result}


def _merge_cells(artifact: str, parts: List[List[TableResult]]) -> List[TableResult]:
    """Merge cell outputs back into the serial run's tables, byte-identically.

    Rows concatenate in cell (= benchmark) order; notes are deduplicated
    preserving first-seen order, which reproduces the serial notes exactly
    because every conditional note is emitted *after* the unconditional ones
    within each cell.
    """
    if artifact in _PER_BENCHMARK_ARTIFACTS:
        merged = TableResult(title=parts[0][0].title, columns=parts[0][0].columns)
        for part in parts:
            merged.rows.extend(part[0].rows)
            for note in part[0].notes:
                if note not in merged.notes:
                    merged.notes.append(note)
        return [merged]
    if artifact == "fig2":
        ab_parts, c_part = parts[:-1], parts[-1]
        table_a = TableResult(title=ab_parts[0][0].title, columns=ab_parts[0][0].columns)
        table_b = TableResult(title=ab_parts[0][1].title, columns=ab_parts[0][1].columns)
        for part in ab_parts:
            table_a.rows.extend(part[0].rows)
            table_b.rows.extend(part[1].rows)
        return [table_a, table_b, c_part[2]]
    return parts[0]


def _run_all_parallel(
    artifacts: List[str], names: Optional[List[str]], seed: int, pool
) -> Dict[str, List[TableResult]]:
    """Schedule every cell of every artefact on the pool, merge in order."""
    resolved = list(names or default_workload_names())
    backend_name = default_backend_name()
    trace = obs.enabled()
    counter = iter(range(1 << 30))
    submitted = [
        (
            artifact,
            [
                (
                    cell,
                    f"cell-{next(counter):06d}",
                    pool.apply_async(
                        _cell_worker, ((cell, seed, backend_name, trace),)
                    ),
                )
                for cell in _cells_for(artifact, resolved)
            ],
        )
        for artifact in artifacts
    ]

    results: Dict[str, List[TableResult]] = {}
    for artifact, cells in submitted:
        parts: List[List[TableResult]] = []
        for cell, cell_id, handle in cells:
            try:
                # The timeout guards against a silently lost task (a worker
                # killed mid-cell is respawned by the pool but its task
                # never completes); it lands in the inline fallback below.
                parts.append(
                    unwrap_payload(cell_id, handle.get(timeout=_CHUNK_TIMEOUT))
                )
            except Exception:
                # Worker-side failure (unpicklable custom backend, dead
                # worker, ...): redo just this cell in process.
                parts.append(_run_cell(cell, seed))
        results[artifact] = _merge_cells(artifact, parts)
    return results


def _run_all_transport(
    artifacts: List[str], names: Optional[List[str]], seed: int, jobs: int
) -> Optional[Dict[str, List[TableResult]]]:
    """Schedule every cell as a cluster work unit; merge in cell order.

    Cells are submitted eagerly (they are independent — no broadcast to
    respect), collected in whatever order the transport completes them, and
    merged in the fixed cell order, so the report is byte-identical to a
    serial run.  A cell whose task fails (poisoned worker, lost lease past
    the retry budget) is re-run in process; if the transport cannot be
    built at all, ``None`` lets the caller fall back to the pool path.
    """
    try:
        transport = resolve_transport(None, jobs=jobs)
    except TransportError:
        return None
    resolved = list(names or default_workload_names())
    backend_name = default_backend_name()
    submitted: List[Tuple[str, List[Tuple[Cell, str]]]] = []
    pending = set()
    for artifact in artifacts:
        entries = []
        for cell in _cells_for(artifact, resolved):
            task_id = transport.submit(cell_task(cell, seed, backend_name))
            entries.append((cell, task_id))
            pending.add(task_id)
        submitted.append((artifact, entries))

    collected: Dict[str, List[TableResult]] = {}
    while pending:
        try:
            task_id, payload = transport.next_result(timeout=_CHUNK_TIMEOUT)
        except TransportTaskError as err:
            # One cell died remotely: it alone re-runs inline below.
            if err.task_id is not None and err.task_id in pending:
                pending.discard(err.task_id)
                continue
            break
        except Exception:
            break  # transport gone: every still-pending cell re-runs inline
        if task_id in pending:
            pending.discard(task_id)
            collected[task_id] = payload

    results: Dict[str, List[TableResult]] = {}
    for artifact, entries in submitted:
        parts = [
            collected[task_id] if task_id in collected else _run_cell(cell, seed)
            for cell, task_id in entries
        ]
        results[artifact] = _merge_cells(artifact, parts)
    return results


def run_all(
    artifacts: Optional[List[str]] = None,
    names: Optional[List[str]] = None,
    seed: int = 0,
    jobs: int = 1,
) -> Dict[str, List[TableResult]]:
    """Run the requested artefacts and return their tables keyed by artefact id.

    Args:
        artifacts: artefact ids (default: all).
        names: benchmark names (default benchmark list).
        seed: workload seed.
        jobs: worker processes for the cell scheduler; ``1`` runs serially.
            Under the cluster backend the cells ride the resolved cluster
            transport; otherwise they ride the shared process pool.  Tables
            are identical every way — parallel cells are merged in
            deterministic order.
    """
    selected = list(artifacts or ARTIFACTS)
    if jobs > 1:
        if default_backend_name() == "cluster":
            results = _run_all_transport(selected, names, seed, jobs)
            if results is not None:
                return results
        pool = worker_pool(jobs)
        if pool is not None:
            return _run_all_parallel(selected, names, seed, pool)
    return {artifact: _collect(artifact, names, seed) for artifact in selected}


def _jobs_argument(text: str) -> int:
    """argparse type for ``--jobs``: a clear CLI error instead of a traceback."""
    try:
        return parse_jobs(text, source="--jobs")
    except ValueError as err:
        raise argparse.ArgumentTypeError(err.args[0]) from None


def _transport_argument(text: str) -> str:
    """argparse type for ``--transport``: validate the spec eagerly."""
    try:
        parse_transport_spec(text)
    except ValueError as err:
        raise argparse.ArgumentTypeError(err.args[0]) from None
    return text


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="dpfill-experiments",
        description="Regenerate the DP-fill paper's tables and figures on the stand-in workloads.",
    )
    parser.add_argument(
        "--artifacts",
        default=",".join(ARTIFACTS),
        help=f"comma-separated artefact ids to run (default: all of {ARTIFACTS})",
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark names (default: the default benchmark list)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    parser.add_argument("--out", default="", help="also write the report to this file")
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="simulation backend for every table (default: REPRO_BACKEND or 'packed')",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes for independent (artifact x benchmark) cells "
        "and the sharded backend, including its sharded PODEM cube "
        "generation (default: REPRO_JOBS or 1; report text is byte-identical "
        "to a serial run)",
    )
    parser.add_argument(
        "--transport",
        type=_transport_argument,
        default=None,
        help="cluster transport for --backend cluster: local, mp, queue or "
        "queue:<spool dir> (default: REPRO_TRANSPORT or 'mp'; results and "
        "report text are identical for every transport)",
    )
    parser.add_argument(
        "--metrics",
        default="",
        help="write a telemetry metrics JSON (counters, per-kernel span "
        "timings, cluster event log) to this path after the run; implies "
        "tracing for the run (default: REPRO_METRICS if set)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    artifacts = [a.strip() for a in args.artifacts.split(",") if a.strip()]
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()] or None
    if args.jobs is not None:
        jobs = args.jobs  # already validated by the argparse type
    else:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        try:
            jobs = parse_jobs(env, source=JOBS_ENV_VAR) if env else 1
        except ValueError as err:
            print(f"dpfill-experiments: error: {err.args[0]}", file=sys.stderr)
            return 2
    previous_backend = set_default_backend(args.backend) if args.backend else None
    try:
        # Fail fast on a mistyped REPRO_BACKEND before any output is produced
        # (and before any process-wide override is applied, so the early
        # return leaks nothing).  Only the env-var path can fail here: a
        # --backend value was already validated by argparse choices.
        get_backend()
    except KeyError as err:
        print(f"dpfill-experiments: error: {err.args[0]}", file=sys.stderr)
        return 2
    previous_jobs = set_default_jobs(args.jobs) if args.jobs is not None else None
    previous_transport = (
        set_default_transport(args.transport) if args.transport is not None else None
    )
    metrics_path = obs_metrics.resolve_metrics_path(args.metrics or None)
    enabled_here = False
    if metrics_path and not obs.enabled():
        obs.enable()  # --metrics implies tracing for this run
        enabled_here = True

    lines: List[str] = []
    lines.append("DP-fill reproduction - experiment report")
    lines.append(f"benchmarks: {names or default_workload_names()}")
    lines.append(f"simulation backend: {default_backend_name()}")
    lines.append("")

    try:
        start = time.perf_counter()
        results = run_all(artifacts, names, seed=args.seed, jobs=jobs)
        elapsed = time.perf_counter() - start
        for artifact in artifacts:
            for table in results[artifact]:
                lines.append(render_table(table))
                lines.append("")
    finally:
        if args.backend:
            set_default_backend(previous_backend)
        if args.jobs is not None:
            set_default_jobs(previous_jobs)
        if args.transport is not None:
            set_default_transport(previous_transport)

    report = "\n".join(lines)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    # Timing is environment-dependent, so it stays out of the report body:
    # the report (stdout above and --out) is byte-identical across --jobs.
    print(f"total runtime: {elapsed:.1f} s ({jobs} job{'s' if jobs != 1 else ''})")
    if metrics_path:
        obs_metrics.write_metrics(
            metrics_path,
            meta={
                "tool": "dpfill-experiments",
                "artifacts": artifacts,
                "benchmarks": names or default_workload_names(),
                "jobs": jobs,
                "seed": args.seed,
                "elapsed_s": round(elapsed, 3),
            },
        )
        print(f"metrics written: {metrics_path}")
        if enabled_here:
            obs.disable()  # restore the process-wide default, like the flags
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
