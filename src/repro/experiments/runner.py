"""Command-line entry point regenerating every table and figure of the paper.

Installed as ``dpfill-experiments``.  Typical invocations::

    dpfill-experiments                      # all artefacts, default benchmarks
    dpfill-experiments --artifacts 2,4,5    # only Tables II, IV and V
    dpfill-experiments --benchmarks b03,b08 # restrict the benchmark set
    dpfill-experiments --out results.txt    # also write the report to a file
    dpfill-experiments --backend naive      # force the reference simulator
    REPRO_INCLUDE_LARGE=1 dpfill-experiments  # include scaled b14-b22
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.engine.backend import (
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
)
from repro.experiments import figure1, figure2, table1, table2, table3, table4, table5, table6
from repro.experiments.report import TableResult, render_table
from repro.experiments.workloads import default_workload_names

ARTIFACTS = ["1", "fig1", "2", "3", "4", "5", "6", "fig2"]


def _collect(artifact: str, names: Optional[List[str]], seed: int) -> List[TableResult]:
    if artifact == "1":
        return [table1.run(names, seed=seed)]
    if artifact == "fig1":
        return [figure1.as_table(figure1.run())]
    if artifact == "2":
        return [table2.run(names, seed=seed)]
    if artifact == "3":
        return [table3.run(names, seed=seed)]
    if artifact == "4":
        return [table4.run(names, seed=seed)]
    if artifact == "5":
        return [table5.run(names, seed=seed)]
    if artifact == "6":
        return [table6.run(names, seed=seed)]
    if artifact == "fig2":
        return figure2.as_tables(figure2.run(names, seed=seed))
    raise ValueError(f"unknown artifact {artifact!r}; choose from {ARTIFACTS}")


def run_all(
    artifacts: Optional[List[str]] = None,
    names: Optional[List[str]] = None,
    seed: int = 0,
) -> Dict[str, List[TableResult]]:
    """Run the requested artefacts and return their tables keyed by artefact id."""
    results: Dict[str, List[TableResult]] = {}
    for artifact in artifacts or ARTIFACTS:
        results[artifact] = _collect(artifact, names, seed)
    return results


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="dpfill-experiments",
        description="Regenerate the DP-fill paper's tables and figures on the stand-in workloads.",
    )
    parser.add_argument(
        "--artifacts",
        default=",".join(ARTIFACTS),
        help=f"comma-separated artefact ids to run (default: all of {ARTIFACTS})",
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark names (default: the default benchmark list)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    parser.add_argument("--out", default="", help="also write the report to this file")
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="simulation backend for every table (default: REPRO_BACKEND or 'packed')",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    artifacts = [a.strip() for a in args.artifacts.split(",") if a.strip()]
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()] or None
    previous_backend = set_default_backend(args.backend) if args.backend else None
    try:
        # Fail fast on a mistyped REPRO_BACKEND before any output is produced.
        # Only the env-var path can fail here: a --backend value was already
        # validated by argparse choices and applied above.
        get_backend()
    except KeyError as err:
        print(f"dpfill-experiments: error: {err.args[0]}", file=sys.stderr)
        return 2

    lines: List[str] = []
    lines.append("DP-fill reproduction - experiment report")
    lines.append(f"benchmarks: {names or default_workload_names()}")
    lines.append(f"simulation backend: {default_backend_name()}")
    lines.append("")

    try:
        start = time.time()
        for artifact in artifacts:
            tables = _collect(artifact, names, args.seed)
            for table in tables:
                lines.append(render_table(table))
                lines.append("")
        lines.append(f"total runtime: {time.time() - start:.1f} s")
    finally:
        if args.backend:
            set_default_backend(previous_backend)

    report = "\n".join(lines)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
