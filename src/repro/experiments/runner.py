"""Command-line entry point regenerating every table and figure of the paper.

Installed as ``dpfill-experiments``.  Typical invocations::

    dpfill-experiments                      # all artefacts, default benchmarks
    dpfill-experiments --artifacts 2,4,5    # only Tables II, IV and V
    dpfill-experiments --benchmarks b03,b08 # restrict the benchmark set
    dpfill-experiments --out results.txt    # also write the report to a file
    dpfill-experiments --backend naive      # force the reference simulator
    dpfill-experiments --jobs 4             # 4 worker processes
    REPRO_INCLUDE_LARGE=1 dpfill-experiments  # include scaled b14-b22

Parallel scheduling
-------------------
With ``--jobs N`` (or ``REPRO_JOBS``) the runner splits the work into
independent *cells* — one (artifact, benchmark) pair each, plus whole-artifact
cells for the figures' cross-benchmark parts — and schedules them on the same
spawn-safe process pool the sharded simulation backend uses.  Cells are
submitted all at once so the pool load-balances across artefacts, and merged
back **in deterministic cell order**, so the report text is byte-identical to
a serial run.  Any cell that fails in a worker (or a pool that cannot be
created at all) falls back to in-process execution; parallelism is purely a
scheduling concern and can never change results.

Under ``--backend cluster`` the same cells become cluster work units and go
over the resolved transport instead (``--transport`` /
``REPRO_TRANSPORT``): ``mp`` reproduces the pool behaviour, ``queue``
spools the cells to ``python -m repro.cluster.worker`` processes that may
live on other hosts.  The merge stays in deterministic cell order, so the
report text remains byte-identical for every transport, worker count or
retried task.

Robustness knobs: ``--resume RUN_DIR`` checkpoints completed cells into a
durable journal and replays them on the next invocation, so a run killed
halfway re-executes only the remainder (and still prints a byte-identical
report); ``--lease-timeout`` tunes how long the queue transport waits
before re-enqueuing a claimed-but-unfinished task.
"""

from __future__ import annotations

import argparse
import sys
import time
from hashlib import blake2b
from typing import Dict, List, Optional, Tuple

from repro import envvars
from repro.cluster.checkpoint import MISSING, RunJournal, resolve_journal
from repro.cluster.protocol import cell_task, unwrap_payload
from repro.cluster.transport import (
    TransportError,
    TransportTaskError,
    parse_lease_timeout,
    parse_transport_spec,
    resolve_transport,
    set_default_lease_timeout,
    set_default_transport,
)
from repro.engine.backend import (
    available_backends,
    default_backend_name,
    get_backend,
    set_default_backend,
)
from repro.engine.pool import CHUNK_TIMEOUT as _CHUNK_TIMEOUT
from repro.engine.sharded import (
    parse_jobs,
    set_default_jobs,
    worker_pool,
)
from repro.experiments import figure1, figure2, table1, table2, table3, table4, table5, table6
from repro.experiments.report import TableResult, render_table
from repro.experiments.workloads import default_workload_names
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs
from repro.obs import timeline as obs_timeline

ARTIFACTS = ["1", "fig1", "2", "3", "4", "5", "6", "fig2"]

#: Artefacts whose tables have exactly one row per benchmark and no
#: cross-benchmark state — safe to split into per-benchmark cells.
_PER_BENCHMARK_ARTIFACTS = {"1", "2", "3", "4", "5", "6"}


def _collect(artifact: str, names: Optional[List[str]], seed: int) -> List[TableResult]:
    with obs.span(f"runner/{artifact}/collect"):
        return _collect_impl(artifact, names, seed)


def _collect_impl(artifact: str, names: Optional[List[str]], seed: int) -> List[TableResult]:
    if artifact == "1":
        return [table1.run(names, seed=seed)]
    if artifact == "fig1":
        return [figure1.as_table(figure1.run())]
    if artifact == "2":
        return [table2.run(names, seed=seed)]
    if artifact == "3":
        return [table3.run(names, seed=seed)]
    if artifact == "4":
        return [table4.run(names, seed=seed)]
    if artifact == "5":
        return [table5.run(names, seed=seed)]
    if artifact == "6":
        return [table6.run(names, seed=seed)]
    if artifact == "fig2":
        return figure2.as_tables(figure2.run(names, seed=seed))
    raise ValueError(f"unknown artifact {artifact!r}; choose from {ARTIFACTS}")


# -- parallel cells ----------------------------------------------------------
#: A cell is (kind, artifact, benchmark names); kinds: "table" (one
#: benchmark of a per-benchmark table), "whole" (a full artefact),
#: "fig2ab" (Fig. 2 panels a+b for one benchmark), "fig2c" (panel c).
Cell = Tuple[str, str, Optional[List[str]]]


def _cells_for(artifact: str, names: List[str]) -> List[Cell]:
    """Decompose one artefact into independently runnable cells."""
    if artifact in _PER_BENCHMARK_ARTIFACTS:
        return [("table", artifact, [name]) for name in names]
    if artifact == "fig2":
        cells: List[Cell] = [("fig2ab", artifact, [name]) for name in names]
        cells.append(("fig2c", artifact, list(names)))
        return cells
    return [("whole", artifact, None)]


def _cell_key(cell: Cell, seed: int, backend_name: str) -> str:
    """Checkpoint key for one cell: pure content, no run-local identifiers.

    The cell tuple already carries the artefact and benchmark names, so two
    runs with the same benchmarks, seed and backend agree on every key and a
    ``--resume`` journal replays across processes.
    """
    blob = repr((cell, seed, backend_name)).encode("utf-8")
    return blake2b(blob, digest_size=16).hexdigest()


def _run_cell(cell: Cell, seed: int) -> List[TableResult]:
    """Execute one cell (in a worker or, as fallback, in process)."""
    kind, artifact, names = cell
    with obs.span(f"runner/{artifact}/{kind}"):
        if kind == "fig2ab":
            return figure2.as_tables(figure2.run(names, seed=seed, panels="ab"))
        if kind == "fig2c":
            return figure2.as_tables(figure2.run(names, seed=seed, panels="c"))
        return _collect(artifact, names, seed)


def _cell_worker(payload: Tuple[Cell, int, str, bool]):
    """Pool task wrapper: pin the worker's backend, then run the cell.

    With tracing requested (the parent's flag, or ``REPRO_TRACE`` inherited
    by the spawned worker), the cell runs inside a telemetry capture and the
    snapshot rides back in the same envelope the cluster protocol uses —
    the parent strips it with :func:`repro.cluster.protocol.unwrap_payload`.
    """
    cell, seed, backend_name, trace = payload
    if default_backend_name() != backend_name:
        set_default_backend(backend_name)
    if not (trace or obs.enabled()):
        return _run_cell(cell, seed)
    capture = obs.task_capture()
    with capture:
        result = _run_cell(cell, seed)
    return {"__repro_obs__": capture.snapshot(), "payload": result}


def _merge_cells(artifact: str, parts: List[List[TableResult]]) -> List[TableResult]:
    """Merge cell outputs back into the serial run's tables, byte-identically.

    Rows concatenate in cell (= benchmark) order; notes are deduplicated
    preserving first-seen order, which reproduces the serial notes exactly
    because every conditional note is emitted *after* the unconditional ones
    within each cell.
    """
    if artifact in _PER_BENCHMARK_ARTIFACTS:
        merged = TableResult(title=parts[0][0].title, columns=parts[0][0].columns)
        for part in parts:
            merged.rows.extend(part[0].rows)
            for note in part[0].notes:
                if note not in merged.notes:
                    merged.notes.append(note)
        return [merged]
    if artifact == "fig2":
        ab_parts, c_part = parts[:-1], parts[-1]
        table_a = TableResult(title=ab_parts[0][0].title, columns=ab_parts[0][0].columns)
        table_b = TableResult(title=ab_parts[0][1].title, columns=ab_parts[0][1].columns)
        for part in ab_parts:
            table_a.rows.extend(part[0].rows)
            table_b.rows.extend(part[1].rows)
        return [table_a, table_b, c_part[2]]
    return parts[0]


def _journal_hit(journal: Optional[RunJournal], key: str):
    """Replay a journalled cell, counting it; ``MISSING`` on miss."""
    if journal is None:
        return MISSING
    cached = journal.get(key)
    if cached is not MISSING:
        obs.counter("runner.cells_replayed")
    return cached


def _journal_put(journal: Optional[RunJournal], key: str, part) -> None:
    """Durably record one completed cell, counting it."""
    obs.counter("runner.cells_executed")
    if journal is not None:
        journal.put(key, part)


def _run_all_parallel(
    artifacts: List[str],
    names: Optional[List[str]],
    seed: int,
    pool,
    journal: Optional[RunJournal] = None,
) -> Dict[str, List[TableResult]]:
    """Schedule every cell of every artefact on the pool, merge in order."""
    resolved = list(names or default_workload_names())
    backend_name = default_backend_name()
    trace = obs.enabled()
    counter = iter(range(1 << 30))
    submitted = []
    for artifact in artifacts:
        entries = []
        for cell in _cells_for(artifact, resolved):
            key = _cell_key(cell, seed, backend_name)
            cached = _journal_hit(journal, key)
            if cached is not MISSING:
                entries.append((cell, key, None, cached))
                continue
            handle = pool.apply_async(
                _cell_worker, ((cell, seed, backend_name, trace),)
            )
            entries.append((cell, key, (f"cell-{next(counter):06d}", handle), None))
        submitted.append((artifact, entries))

    results: Dict[str, List[TableResult]] = {}
    for artifact, cells in submitted:
        parts: List[List[TableResult]] = []
        for cell, key, pending, cached in cells:
            if pending is None:
                parts.append(cached)
                continue
            cell_id, handle = pending
            try:
                # The timeout guards against a silently lost task (a worker
                # killed mid-cell is respawned by the pool but its task
                # never completes); it lands in the inline fallback below.
                part = unwrap_payload(cell_id, handle.get(timeout=_CHUNK_TIMEOUT))
            except Exception as err:
                # Worker-side failure (unpicklable custom backend, dead
                # worker, ...): redo just this cell in process.
                obs.event("cell_inline_fallback", cell=cell_id, detail=repr(err))
                part = _run_cell(cell, seed)
            _journal_put(journal, key, part)
            parts.append(part)
        results[artifact] = _merge_cells(artifact, parts)
    return results


def _run_all_transport(
    artifacts: List[str],
    names: Optional[List[str]],
    seed: int,
    jobs: int,
    journal: Optional[RunJournal] = None,
) -> Optional[Dict[str, List[TableResult]]]:
    """Schedule every cell as a cluster work unit; merge in cell order.

    Cells are submitted eagerly (they are independent — no broadcast to
    respect), collected in whatever order the transport completes them, and
    merged in the fixed cell order, so the report is byte-identical to a
    serial run.  A cell whose task fails (poisoned worker, lost lease past
    the retry budget) is re-run in process; if the transport cannot be
    built at all, ``None`` lets the caller fall back to the pool path.
    """
    try:
        transport = resolve_transport(None, jobs=jobs)
    except TransportError:
        return None
    resolved = list(names or default_workload_names())
    backend_name = default_backend_name()
    submitted: List[Tuple[str, List[Tuple[Cell, str, Optional[str]]]]] = []
    replayed: Dict[str, List[TableResult]] = {}
    keys: Dict[str, str] = {}
    pending = set()
    for artifact in artifacts:
        entries = []
        for cell in _cells_for(artifact, resolved):
            key = _cell_key(cell, seed, backend_name)
            cached = _journal_hit(journal, key)
            if cached is not MISSING:
                replayed[key] = cached
                entries.append((cell, key, None))
                continue
            task_id = transport.submit(cell_task(cell, seed, backend_name))
            keys[task_id] = key
            entries.append((cell, key, task_id))
            pending.add(task_id)
        submitted.append((artifact, entries))

    collected: Dict[str, List[TableResult]] = {}
    while pending:
        try:
            task_id, payload = transport.next_result(timeout=_CHUNK_TIMEOUT)
        except TransportTaskError as err:
            # One cell died remotely: it alone re-runs inline below.
            if err.task_id is not None and err.task_id in pending:
                pending.discard(err.task_id)
                continue
            break
        except Exception as err:
            # Transport gone: every still-pending cell re-runs inline.
            obs.event("transport_lost", detail=repr(err))
            break
        if task_id in pending:
            pending.discard(task_id)
            collected[task_id] = payload
            _journal_put(journal, keys[task_id], payload)

    results: Dict[str, List[TableResult]] = {}
    for artifact, entries in submitted:
        parts = []
        for cell, key, task_id in entries:
            if task_id is None:
                parts.append(replayed[key])
            elif task_id in collected:
                parts.append(collected[task_id])
            else:
                part = _run_cell(cell, seed)
                _journal_put(journal, key, part)
                parts.append(part)
        results[artifact] = _merge_cells(artifact, parts)
    return results


def _run_all_serial_journaled(
    artifacts: List[str],
    names: Optional[List[str]],
    seed: int,
    journal: RunJournal,
) -> Dict[str, List[TableResult]]:
    """Serial run with per-cell checkpointing (``--resume`` at ``--jobs 1``).

    Decomposes into the same cells the parallel paths use so a journal
    written at any job count replays at any other; the merge keeps the
    report byte-identical to the plain serial path.
    """
    resolved = list(names or default_workload_names())
    backend_name = default_backend_name()
    results: Dict[str, List[TableResult]] = {}
    for artifact in artifacts:
        parts: List[List[TableResult]] = []
        for cell in _cells_for(artifact, resolved):
            key = _cell_key(cell, seed, backend_name)
            cached = _journal_hit(journal, key)
            if cached is not MISSING:
                parts.append(cached)
                continue
            part = _run_cell(cell, seed)
            _journal_put(journal, key, part)
            parts.append(part)
        results[artifact] = _merge_cells(artifact, parts)
    return results


def run_all(
    artifacts: Optional[List[str]] = None,
    names: Optional[List[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    resume=None,
) -> Dict[str, List[TableResult]]:
    """Run the requested artefacts and return their tables keyed by artefact id.

    Args:
        artifacts: artefact ids (default: all).
        names: benchmark names (default benchmark list).
        seed: workload seed.
        jobs: worker processes for the cell scheduler; ``1`` runs serially.
            Under the cluster backend the cells ride the resolved cluster
            transport; otherwise they ride the shared process pool.  Tables
            are identical every way — parallel cells are merged in
            deterministic order.
        resume: run directory (or open
            :class:`~repro.cluster.checkpoint.RunJournal`) holding the
            ``cells`` checkpoint journal.  Completed cells found there are
            replayed instead of re-executed and newly completed cells are
            appended, so a run killed halfway resumes with only the
            remainder — and the report stays byte-identical.
    """
    selected = list(artifacts or ARTIFACTS)
    journal = resolve_journal(resume, "cells")
    owns_journal = journal is not None and not isinstance(resume, RunJournal)
    try:
        if jobs > 1:
            if default_backend_name() == "cluster":
                results = _run_all_transport(selected, names, seed, jobs, journal)
                if results is not None:
                    return results
            pool = worker_pool(jobs)
            if pool is not None:
                return _run_all_parallel(selected, names, seed, pool, journal)
        if journal is not None:
            return _run_all_serial_journaled(selected, names, seed, journal)
        return {artifact: _collect(artifact, names, seed) for artifact in selected}
    finally:
        if owns_journal:
            journal.close()


def _jobs_argument(text: str) -> int:
    """argparse type for ``--jobs``: a clear CLI error instead of a traceback."""
    try:
        return parse_jobs(text, source="--jobs")
    except ValueError as err:
        raise argparse.ArgumentTypeError(err.args[0]) from None


def _transport_argument(text: str) -> str:
    """argparse type for ``--transport``: validate the spec eagerly."""
    try:
        parse_transport_spec(text)
    except ValueError as err:
        raise argparse.ArgumentTypeError(err.args[0]) from None
    return text


def _lease_timeout_argument(text: str) -> float:
    """argparse type for ``--lease-timeout``: strict positive number."""
    try:
        return parse_lease_timeout(text, source="--lease-timeout")
    except ValueError as err:
        raise argparse.ArgumentTypeError(err.args[0]) from None


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="dpfill-experiments",
        description="Regenerate the DP-fill paper's tables and figures on the stand-in workloads.",
    )
    parser.add_argument(
        "--artifacts",
        default=",".join(ARTIFACTS),
        help=f"comma-separated artefact ids to run (default: all of {ARTIFACTS})",
    )
    parser.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated benchmark names (default: the default benchmark list)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    parser.add_argument("--out", default="", help="also write the report to this file")
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="simulation backend for every table (default: REPRO_BACKEND or 'packed')",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        help="worker processes for independent (artifact x benchmark) cells "
        "and the sharded backend, including its sharded PODEM cube "
        "generation (default: REPRO_JOBS or 1; report text is byte-identical "
        "to a serial run)",
    )
    parser.add_argument(
        "--transport",
        type=_transport_argument,
        default=None,
        help="cluster transport for --backend cluster: local, mp, queue or "
        "queue:<spool dir> (default: REPRO_TRANSPORT or 'mp'; results and "
        "report text are identical for every transport)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=_lease_timeout_argument,
        default=None,
        help="queue-transport lease timeout in seconds before an unfinished "
        "task is re-enqueued (default: REPRO_LEASE_TIMEOUT or 15)",
    )
    parser.add_argument(
        "--resume",
        default="",
        metavar="RUN_DIR",
        help="checkpoint completed (artifact x benchmark) cells into this "
        "run directory and replay any found there, so a killed run "
        "re-executes only the remainder; the report is byte-identical "
        "either way",
    )
    parser.add_argument(
        "--metrics",
        default="",
        help="write a telemetry metrics JSON (counters, per-kernel span "
        "timings, cluster event log) to this path after the run; implies "
        "tracing for the run (default: REPRO_METRICS if set)",
    )
    parser.add_argument(
        "--trace-out",
        default="",
        metavar="TRACE_JSON",
        help="write a Chrome trace-event JSON (one track per worker; view "
        "at https://ui.perfetto.dev) to this path after the run; implies "
        "tracing plus the timeline tier (begin/end span intervals) for "
        "the run",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    artifacts = [a.strip() for a in args.artifacts.split(",") if a.strip()]
    names = [n.strip() for n in args.benchmarks.split(",") if n.strip()] or None
    if args.jobs is not None:
        jobs = args.jobs  # already validated by the argparse type
    else:
        try:
            jobs = envvars.JOBS.read() or 1
        except ValueError as err:
            print(f"dpfill-experiments: error: {err.args[0]}", file=sys.stderr)
            return 2
    previous_backend = set_default_backend(args.backend) if args.backend else None
    try:
        # Fail fast on a mistyped REPRO_BACKEND before any output is produced
        # (and before any process-wide override is applied, so the early
        # return leaks nothing).  Only the env-var path can fail here: a
        # --backend value was already validated by argparse choices.
        get_backend()
    except KeyError as err:
        print(f"dpfill-experiments: error: {err.args[0]}", file=sys.stderr)
        return 2
    previous_jobs = set_default_jobs(args.jobs) if args.jobs is not None else None
    previous_transport = (
        set_default_transport(args.transport) if args.transport is not None else None
    )
    previous_lease = (
        set_default_lease_timeout(args.lease_timeout)
        if args.lease_timeout is not None
        else None
    )
    metrics_path = obs_metrics.resolve_metrics_path(args.metrics or None)
    trace_path = args.trace_out or None
    enabled_here = False
    if (metrics_path or trace_path) and not obs.enabled():
        obs.enable()  # --metrics/--trace-out imply tracing for this run
        enabled_here = True
    timeline_here = False
    if trace_path and not obs.timeline_enabled():
        obs.enable_timeline()  # --trace-out implies the timeline tier too
        timeline_here = True

    lines: List[str] = []
    lines.append("DP-fill reproduction - experiment report")
    lines.append(f"benchmarks: {names or default_workload_names()}")
    lines.append(f"simulation backend: {default_backend_name()}")
    lines.append("")

    try:
        start = time.perf_counter()
        results = run_all(
            artifacts, names, seed=args.seed, jobs=jobs, resume=args.resume or None
        )
        elapsed = time.perf_counter() - start
        for artifact in artifacts:
            for table in results[artifact]:
                lines.append(render_table(table))
                lines.append("")
    finally:
        if args.backend:
            set_default_backend(previous_backend)
        if args.jobs is not None:
            set_default_jobs(previous_jobs)
        if args.transport is not None:
            set_default_transport(previous_transport)
        if args.lease_timeout is not None:
            set_default_lease_timeout(previous_lease)

    report = "\n".join(lines)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    # Timing is environment-dependent, so it stays out of the report body:
    # the report (stdout above and --out) is byte-identical across --jobs.
    print(f"total runtime: {elapsed:.1f} s ({jobs} job{'s' if jobs != 1 else ''})")
    if metrics_path or trace_path:
        meta = {
            "tool": "dpfill-experiments",
            "artifacts": artifacts,
            "benchmarks": names or default_workload_names(),
            "jobs": jobs,
            "seed": args.seed,
            "elapsed_s": round(elapsed, 3),
        }
        payload = None
        if metrics_path:
            payload = obs_metrics.write_metrics(metrics_path, meta=meta)
            print(f"metrics written: {metrics_path}")
        if trace_path:
            if payload is None:
                payload = obs_metrics.metrics_payload(meta=meta)
            obs_timeline.write_trace(trace_path, payload)
            print(
                f"trace written: {trace_path} "
                "(load it at https://ui.perfetto.dev or chrome://tracing)"
            )
        if timeline_here:
            obs.enable_timeline(False)
        if enabled_here:
            obs.disable()  # restore the process-wide default, like the flags
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
