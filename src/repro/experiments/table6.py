"""Table VI reproduction: peak circuit (capture) power per technique.

Every technique's filled pattern set is applied to the stand-in circuit and
graded by the capacitance-weighted switching-power model.  Absolute
microwatt values are not comparable to the paper's (different netlists and a
synthetic extraction); the reproduced claims are the ranking of techniques
and the growth of the improvement with circuit size.
"""

from __future__ import annotations

from typing import List, Optional

from repro.benchmarks_data.paper_results import PAPER_TABLE6
from repro.experiments.report import TableResult, percent_improvement
from repro.experiments.techniques import TECHNIQUES, apply_all_techniques
from repro.experiments.workloads import build_workloads
from repro.power.estimator import PowerEstimator

COLUMNS = (
    ["circuit"]
    + [f"{name} (uW)" for name in TECHNIQUES]
    + ["%impr Tool", "%impr XStat", "input/circuit corr", "Proposed (paper, uW)"]
)


def run(names: Optional[List[str]] = None, seed: int = 0) -> TableResult:
    """Reproduce Table VI over the default (or given) benchmarks."""
    workloads = build_workloads(names, seed=seed)
    result = TableResult(
        title="Table VI - peak capture power (uW): proposed vs existing techniques",
        columns=COLUMNS,
    )
    for workload in workloads:
        estimator = PowerEstimator(workload.circuit, seed=seed)
        outcomes = apply_all_techniques(workload.cubes)
        row = {"circuit": workload.name}
        reports = {}
        for technique in TECHNIQUES:
            report = estimator.estimate(outcomes[technique].filled)
            reports[technique] = report
            row[f"{technique} (uW)"] = round(report.peak_power_uw, 1)
        proposed = reports["Proposed"].peak_power_uw
        row["%impr Tool"] = round(percent_improvement(reports["Tool"].peak_power_uw, proposed) or 0.0, 1)
        row["%impr XStat"] = round(percent_improvement(reports["XStat"].peak_power_uw, proposed) or 0.0, 1)
        row["input/circuit corr"] = round(
            reports["Proposed"].activity.input_circuit_correlation(), 2
        )
        paper_row = PAPER_TABLE6.get(workload.name, {})
        row["Proposed (paper, uW)"] = paper_row.get("Proposed")
        result.rows.append(row)
    result.notes.append(
        "power values use the synthetic 45nm-flavoured capacitance extraction; compare"
        " rankings and improvement factors, not absolute microwatts"
    )
    return result
