"""Test-vector ordering algorithms.

An ordering permutes a cube set before filling; because the peak-toggle
objective is defined over adjacent patterns, the ordering determines how much
an X-fill can achieve.  The package provides the orderings used in the
paper's evaluation:

=================  =============================================================
name               algorithm
=================  =============================================================
``tool``           the ATPG generation order (what a commercial tool emits)
``isa``            greedy nearest-neighbour ordering on the unavoidable-conflict
                   distance (reconstruction of the ISA / Girard ordering [20])
``xstat``          greedy nearest-neighbour ordering on the expected toggle
                   distance with X treated statistically (reconstruction of the
                   X-Stat ordering [22])
``i-ordering``     the paper's interleaved ordering (Algorithm 3)
``density``        plain sort by don't-care count (ablation reference)
``random``         seeded random permutation (ablation reference)
=================  =============================================================
"""

from repro.orderings.base import Ordering, available_orderings, get_ordering, register_ordering
from repro.orderings.interleaved import InterleavedOrdering
from repro.orderings.isa import ISAOrdering
from repro.orderings.simple import DensityOrdering, RandomOrdering, ToolOrdering
from repro.orderings.xstat_ordering import XStatOrdering

__all__ = [
    "Ordering",
    "get_ordering",
    "register_ordering",
    "available_orderings",
    "ToolOrdering",
    "DensityOrdering",
    "RandomOrdering",
    "ISAOrdering",
    "XStatOrdering",
    "InterleavedOrdering",
]
