"""Ordering-interface wrapper around the core I-Ordering search (Algorithm 3)."""

from __future__ import annotations

from typing import Optional

from repro.core.ordering import OrderingResult, interleaved_ordering
from repro.cubes.cube import TestSet
from repro.orderings.base import Ordering, register_ordering


class InterleavedOrdering(Ordering):
    """The paper's interleaved test-vector ordering.

    Args:
        max_k: optional cap on the interleave size searched; the natural
            stopping rule (first non-improving ``k``) applies either way.
    """

    name = "i-ordering"

    def __init__(self, max_k: Optional[int] = None) -> None:
        self.max_k = max_k

    def order(self, patterns: TestSet) -> OrderingResult:
        return interleaved_ordering(patterns, max_k=self.max_k)


register_ordering("i-ordering", InterleavedOrdering, aliases=["interleaved", "iordering", "i"])
