"""Common interface and registry for test-vector orderings."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional

from repro.core.ordering import OrderingResult
from repro.cubes.cube import TestSet


class Ordering(abc.ABC):
    """Base class for ordering algorithms.

    Subclasses implement :meth:`order`, returning an
    :class:`~repro.core.ordering.OrderingResult` whose ``permutation`` indexes
    into the input set.  Orderings must not modify cube contents — only the
    sequence.
    """

    #: canonical name used by the experiment harness (e.g. ``"i-ordering"``).
    name: str = "ordering"

    @abc.abstractmethod
    def order(self, patterns: TestSet) -> OrderingResult:
        """Return the reordered set and the permutation that produced it."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Callable[[], Ordering]] = {}


def _canonical(name: str) -> str:
    return name.strip().lower().replace("_", "-").replace(" ", "-")


def register_ordering(
    name: str,
    factory: Callable[[], Ordering],
    aliases: Optional[List[str]] = None,
) -> None:
    """Register an ordering factory under ``name`` (and optional aliases)."""
    for key in [name] + list(aliases or []):
        canon = _canonical(key)
        existing = _REGISTRY.get(canon)
        if existing is not None and existing is not factory:
            raise ValueError(f"ordering name already registered: {key}")
        _REGISTRY[canon] = factory


def get_ordering(name: str, **kwargs) -> Ordering:
    """Instantiate a registered ordering by name (case/format insensitive).

    Raises:
        KeyError: for unknown names; the message lists the available ones.
    """
    canon = _canonical(name)
    if canon not in _REGISTRY:
        raise KeyError(f"unknown ordering {name!r}; available: {sorted(set(_REGISTRY))}")
    factory = _REGISTRY[canon]
    return factory(**kwargs) if kwargs else factory()


def available_orderings() -> List[str]:
    """Sorted list of registered canonical ordering names."""
    return sorted(set(_REGISTRY))
