"""Reconstruction of the ISA ordering (Table V comparator, ref. [20]).

Girard et al. order test vectors to reduce switching activity by visiting
them in a nearest-neighbour tour of the Hamming-distance graph.  Our cubes
still contain don't-cares at ordering time, so the distance used here is the
*conflict distance*: the number of pins on which both cubes are specified
and disagree — exactly the toggles that no later X-fill can avoid.

The tour is greedy: start from the cube with the most specified bits (the
hardest to place anywhere) and repeatedly append the unvisited cube with the
smallest conflict distance to the current one.  Complexity is
``O(n^2 * m / w)`` with vectorised distance evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.core.ordering import OrderingResult
from repro.cubes.bits import X
from repro.cubes.cube import TestSet
from repro.orderings.base import Ordering, register_ordering


class ISAOrdering(Ordering):
    """Greedy nearest-neighbour ordering on the unavoidable-conflict distance."""

    name = "isa"

    def order(self, patterns: TestSet) -> OrderingResult:
        n = len(patterns)
        if n <= 2:
            return OrderingResult(ordered=patterns.copy(), permutation=list(range(n)))

        data = patterns.matrix
        specified = data != X
        x_counts = patterns.x_counts_per_pattern()

        visited = np.zeros(n, dtype=bool)
        current = int(np.argmin(x_counts))
        permutation = [current]
        visited[current] = True

        for __ in range(n - 1):
            cur_bits = data[current]
            cur_spec = specified[current]
            conflicts = np.count_nonzero(
                (data != cur_bits) & specified & cur_spec[None, :], axis=1
            ).astype(np.int64)
            conflicts[visited] = np.iinfo(np.int64).max
            nxt = int(np.argmin(conflicts))
            permutation.append(nxt)
            visited[nxt] = True
            current = nxt

        return OrderingResult(ordered=patterns.reordered(permutation), permutation=permutation)


register_ordering("isa", ISAOrdering, aliases=["isa-ordering", "girard"])
