"""Reconstruction of the ISA ordering (Table V comparator, ref. [20]).

Girard et al. order test vectors to reduce switching activity by visiting
them in a nearest-neighbour tour of the Hamming-distance graph.  Our cubes
still contain don't-cares at ordering time, so the distance used here is the
*conflict distance*: the number of pins on which both cubes are specified
and disagree — exactly the toggles that no later X-fill can avoid.

The tour is greedy: start from the cube with the most specified bits (the
hardest to place anywhere) and repeatedly append the unvisited cube with the
smallest conflict distance to the current one.  The specified-plane work is
hoisted out of the loop (see :mod:`repro.orderings.xstat_ordering`): the
conflict counts of one step are a single matrix–vector product over the
pre-computed 0/1 indicator planes — exact, as integer counts stay far below
float32's 2**24 ceiling — so the tour is bit-identical to the direct
boolean-mask formulation at a fraction of its per-step cost.  Complexity
stays ``O(n^2 * m)`` but with a BLAS constant.
"""

from __future__ import annotations

import numpy as np

from repro.core.ordering import OrderingResult
from repro.cubes.bits import ONE, ZERO
from repro.cubes.cube import TestSet
from repro.orderings.base import Ordering, register_ordering


class ISAOrdering(Ordering):
    """Greedy nearest-neighbour ordering on the unavoidable-conflict distance."""

    name = "isa"

    def order(self, patterns: TestSet) -> OrderingResult:
        n = len(patterns)
        if n <= 2:
            return OrderingResult(ordered=patterns.copy(), permutation=list(range(n)))

        data = patterns.matrix
        x_counts = patterns.x_counts_per_pattern()

        # conflicts(i | c) = ones_i . zeros_c + zeros_i . ones_c: both
        # specified and disagreeing, as one GEMV over the stacked planes
        # (float32 counts are exact — integer sums far below 2**24).
        n_pins = data.shape[1]
        ones_plane = (data == ONE).astype(np.float32)
        zeros_plane = (data == ZERO).astype(np.float32)
        planes = np.concatenate([ones_plane, zeros_plane], axis=1)

        visited = np.zeros(n, dtype=bool)
        current = int(np.argmin(x_counts))
        permutation = [current]
        visited[current] = True

        weights = np.empty(2 * n_pins, dtype=np.float32)
        for __ in range(n - 1):
            weights[:n_pins] = zeros_plane[current]
            weights[n_pins:] = ones_plane[current]
            conflicts = planes @ weights
            conflicts[visited] = np.inf
            nxt = int(np.argmin(conflicts))
            permutation.append(nxt)
            visited[nxt] = True
            current = nxt

        return OrderingResult(ordered=patterns.reordered(permutation), permutation=permutation)


register_ordering("isa", ISAOrdering, aliases=["isa-ordering", "girard"])
