"""Trivial orderings: tool order, don't-care-density sort, random shuffle.

``ToolOrdering`` models the order a commercial ATPG tool emits patterns in —
the paper's Table II baseline ("Tool-Ordering").  ``DensityOrdering`` and
``RandomOrdering`` are not in the paper's tables; they serve as ablation
references for how much of I-Ordering's benefit comes from the density sort
alone versus the interleaving.
"""

from __future__ import annotations

import numpy as np

from repro.core.ordering import OrderingResult
from repro.cubes.cube import TestSet
from repro.orderings.base import Ordering, register_ordering


class ToolOrdering(Ordering):
    """Identity ordering: keep the ATPG generation order."""

    name = "tool"

    def order(self, patterns: TestSet) -> OrderingResult:
        permutation = list(range(len(patterns)))
        return OrderingResult(ordered=patterns.copy(), permutation=permutation)


class DensityOrdering(Ordering):
    """Sort patterns by don't-care count.

    Args:
        ascending: ``True`` places the most specified patterns first (the
            paper's Algorithm 3 starts from this order before interleaving).
    """

    name = "density"

    def __init__(self, ascending: bool = True) -> None:
        self.ascending = ascending

    def order(self, patterns: TestSet) -> OrderingResult:
        x_counts = patterns.x_counts_per_pattern()
        permutation = [int(i) for i in np.argsort(x_counts, kind="stable")]
        if not self.ascending:
            permutation = permutation[::-1]
        return OrderingResult(ordered=patterns.reordered(permutation), permutation=permutation)


class RandomOrdering(Ordering):
    """Seeded random permutation (reproducible shuffle)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def order(self, patterns: TestSet) -> OrderingResult:
        rng = np.random.default_rng(self.seed)
        permutation = [int(i) for i in rng.permutation(len(patterns))]
        return OrderingResult(ordered=patterns.reordered(permutation), permutation=permutation)


register_ordering("tool", ToolOrdering, aliases=["tool-ordering", "identity"])
register_ordering("density", DensityOrdering, aliases=["density-ordering", "sorted"])
register_ordering("random", RandomOrdering, aliases=["random-ordering", "shuffle"])
