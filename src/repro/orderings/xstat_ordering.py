"""Reconstruction of the X-Stat ordering (Tables III and V, ref. [22]).

X-Stat treats don't-cares *statistically*: before filling, an X will become
0 or 1 with probability one half, so the expected number of toggles between
two cubes is

``sum over pins of P(values differ)``

where the per-pin probability is 0 or 1 when both bits are specified and
one half when at least one of them is an X.  The ordering is a greedy
nearest-neighbour tour under this expected-toggle distance, started from the
most specified cube.  Compared with the ISA reconstruction (which only counts
hard conflicts), the statistical distance also penalises placing two X-poor
cubes next to each other, which is the behaviour the X-Stat paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.core.ordering import OrderingResult
from repro.cubes.bits import X
from repro.cubes.cube import TestSet
from repro.orderings.base import Ordering, register_ordering


class XStatOrdering(Ordering):
    """Greedy nearest-neighbour ordering on the expected-toggle distance."""

    name = "xstat"

    def order(self, patterns: TestSet) -> OrderingResult:
        n = len(patterns)
        if n <= 2:
            return OrderingResult(ordered=patterns.copy(), permutation=list(range(n)))

        data = patterns.matrix
        specified = data != X
        x_counts = patterns.x_counts_per_pattern()

        visited = np.zeros(n, dtype=bool)
        current = int(np.argmin(x_counts))
        permutation = [current]
        visited[current] = True

        for __ in range(n - 1):
            cur_bits = data[current]
            cur_spec = specified[current]
            both_specified = specified & cur_spec[None, :]
            hard = ((data != cur_bits) & both_specified).sum(axis=1).astype(np.float64)
            soft = (~both_specified).sum(axis=1).astype(np.float64)
            expected = hard + 0.5 * soft
            expected[visited] = np.inf
            nxt = int(np.argmin(expected))
            permutation.append(nxt)
            visited[nxt] = True
            current = nxt

        return OrderingResult(ordered=patterns.reordered(permutation), permutation=permutation)


register_ordering("xstat", XStatOrdering, aliases=["xstat-ordering", "x-stat-ordering"])
