"""Reconstruction of the X-Stat ordering (Tables III and V, ref. [22]).

X-Stat treats don't-cares *statistically*: before filling, an X will become
0 or 1 with probability one half, so the expected number of toggles between
two cubes is

``sum over pins of P(values differ)``

where the per-pin probability is 0 or 1 when both bits are specified and
one half when at least one of them is an X.  The ordering is a greedy
nearest-neighbour tour under this expected-toggle distance, started from the
most specified cube.  Compared with the ISA reconstruction (which only counts
hard conflicts), the statistical distance also penalises placing two X-poor
cubes next to each other, which is the behaviour the X-Stat paper describes.

The specified-plane work is hoisted out of the tour loop: the cube matrix is
decomposed once into 0/1 indicator planes (specified-one, specified-zero,
specified) and each greedy step reduces to a single matrix–vector product
over the stacked planes instead of materialising several boolean ``(n,
pins)`` temporaries per step.  All products are exact small-integer (and
half-integer) sums — every term is a multiple of 0.5 far below float32's
2**24 integer ceiling — so the selected tour is bit-identical to the direct
formulation; ``benchmarks/bench_core.py`` keeps the direct loops around as
the baseline and asserts exactly that before timing the win.
"""

from __future__ import annotations

import numpy as np

from repro.core.ordering import OrderingResult
from repro.cubes.bits import ONE, ZERO
from repro.cubes.cube import TestSet
from repro.orderings.base import Ordering, register_ordering


class XStatOrdering(Ordering):
    """Greedy nearest-neighbour ordering on the expected-toggle distance."""

    name = "xstat"

    def order(self, patterns: TestSet) -> OrderingResult:
        n = len(patterns)
        if n <= 2:
            return OrderingResult(ordered=patterns.copy(), permutation=list(range(n)))

        data = patterns.matrix
        n_pins = data.shape[1]
        x_counts = patterns.x_counts_per_pattern()

        # Hoisted plane decomposition: expected(i | c) = hard + 0.5 * soft
        #   hard = ones_i . zeros_c + zeros_i . ones_c   (specified and differ)
        #   soft = n_pins - spec_i . spec_c              (at least one X)
        # which is one GEMV over the stacked planes per tour step.  float32
        # is exact here — every term is a multiple of 0.5 and every partial
        # sum is far below 2**24 — and halves the memory traffic of the
        # n-by-3m sweep each step performs.
        ones_plane = (data == ONE).astype(np.float32)
        zeros_plane = (data == ZERO).astype(np.float32)
        spec_plane = ones_plane + zeros_plane
        planes = np.concatenate([ones_plane, zeros_plane, spec_plane], axis=1)

        visited = np.zeros(n, dtype=bool)
        current = int(np.argmin(x_counts))
        permutation = [current]
        visited[current] = True

        weights = np.empty(3 * n_pins, dtype=np.float32)
        for __ in range(n - 1):
            weights[:n_pins] = zeros_plane[current]
            weights[n_pins : 2 * n_pins] = ones_plane[current]
            np.multiply(spec_plane[current], -0.5, out=weights[2 * n_pins :])
            expected = planes @ weights + 0.5 * n_pins
            expected[visited] = np.inf
            nxt = int(np.argmin(expected))
            permutation.append(nxt)
            visited[nxt] = True
            current = nxt

        return OrderingResult(ordered=patterns.reordered(permutation), permutation=permutation)


register_ordering("xstat", XStatOrdering, aliases=["xstat-ordering", "x-stat-ordering"])
