"""Core cube containers: :class:`TestCube` and :class:`TestSet`.

``TestCube`` wraps a single partially specified pattern; ``TestSet`` wraps an
*ordered* sequence of equal-length cubes in a dense ``(n_patterns, n_pins)``
``int8`` matrix.  The ordering of a ``TestSet`` is semantically meaningful:
the peak-toggle objective is defined over *adjacent* patterns, so reordering
a set changes its cost.  Orderings therefore return new ``TestSet`` objects
(or permutations) rather than mutating in place.

The paper works with the transposed view — an ``m x n`` matrix ``A`` whose
*rows* are input pins and *columns* are patterns.  :meth:`TestSet.pin_matrix`
exposes that view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.cubes.bits import (
    BIT_DTYPE,
    ONE,
    X,
    ZERO,
    bits_from_string,
    bits_to_string,
    validate_bits,
)

CubeLike = Union["TestCube", str, Sequence[int], np.ndarray]


@dataclass(frozen=True)
class TestCube:
    """A single partially specified scan pattern.

    Attributes:
        bits: ``int8`` array of 0/1/X encodings, one entry per input pin
            (primary inputs followed by scan-cell values, in scan order).
        name: optional label, typically the target fault that produced the
            cube (useful when tracing ATPG output).
    """

    bits: np.ndarray
    name: Optional[str] = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.bits, dtype=BIT_DTYPE).reshape(-1)
        validate_bits(arr)
        arr.setflags(write=False)
        object.__setattr__(self, "bits", arr)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_string(cls, text: str, name: Optional[str] = None) -> "TestCube":
        """Build a cube from a ``"01XX1"``-style string."""
        return cls(bits_from_string(text), name=name)

    @classmethod
    def fully_x(cls, length: int, name: Optional[str] = None) -> "TestCube":
        """Return a cube of ``length`` unspecified bits."""
        return cls(np.full(length, X, dtype=BIT_DTYPE), name=name)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.bits.shape[0])

    def __getitem__(self, index: int) -> int:
        return int(self.bits[index])

    def __iter__(self) -> Iterator[int]:
        return iter(int(b) for b in self.bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestCube):
            return NotImplemented
        return bool(np.array_equal(self.bits, other.bits))

    def __hash__(self) -> int:
        return hash(self.bits.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self.name!r}" if self.name else ""
        return f"TestCube({self.to_string()!r}{label})"

    # -- queries -----------------------------------------------------------
    def to_string(self) -> str:
        """Render the cube as a ``0/1/X`` string."""
        return bits_to_string(self.bits)

    @property
    def x_count(self) -> int:
        """Number of don't-care positions."""
        return int(np.count_nonzero(self.bits == X))

    @property
    def specified_count(self) -> int:
        """Number of positions carrying a 0 or 1."""
        return len(self) - self.x_count

    @property
    def x_fraction(self) -> float:
        """Fraction of positions that are don't-cares (0.0 for an empty cube)."""
        return self.x_count / len(self) if len(self) else 0.0

    def is_fully_specified(self) -> bool:
        """``True`` when the cube contains no X bits."""
        return self.x_count == 0

    def specified_positions(self) -> np.ndarray:
        """Indices of the specified (non-X) positions."""
        return np.flatnonzero(self.bits != X)

    # -- cube algebra --------------------------------------------------------
    def is_compatible(self, other: "TestCube") -> bool:
        """``True`` when no position is 0 in one cube and 1 in the other."""
        if len(self) != len(other):
            return False
        a, b = self.bits, other.bits
        return not bool(((a != b) & (a != X) & (b != X)).any())

    def merge(self, other: "TestCube") -> "TestCube":
        """Intersect two compatible cubes (specified bits win over X).

        Raises:
            ValueError: if the cubes conflict or have different lengths.
        """
        if len(self) != len(other):
            raise ValueError("cannot merge cubes of different lengths")
        a, b = self.bits, other.bits
        conflict = (a != b) & (a != X) & (b != X)
        if conflict.any():
            raise ValueError("cubes conflict; cannot merge")
        return TestCube(np.where(a == X, b, a), name=self.name or other.name)

    def covers(self, other: "TestCube") -> bool:
        """``True`` when every specified bit of ``self`` matches ``other``.

        ``other`` must be at least as specified as ``self`` at those
        positions, i.e. ``other`` is an instance of the cube ``self``.
        """
        if len(self) != len(other):
            return False
        spec = self.bits != X
        return bool(np.all(other.bits[spec] == self.bits[spec]))

    def filled_with(self, value: int) -> "TestCube":
        """Return a copy with every X replaced by ``value`` (0 or 1)."""
        if value not in (ZERO, ONE):
            raise ValueError("fill value must be 0 or 1")
        bits = self.bits.copy()
        bits[bits == X] = value
        return TestCube(bits, name=self.name)


class TestSet:
    """An ordered sequence of equal-length test cubes.

    The backing store is a ``(n_patterns, n_pins)`` ``int8`` matrix; row ``i``
    is pattern ``i`` in application order.  The class is deliberately
    immutable-ish: transformation helpers (:meth:`reordered`, :meth:`filled`,
    :meth:`with_pattern`) return new instances.

    Args:
        patterns: cubes, cube strings, or per-pattern bit sequences.  All
            entries must have the same length.
        names: optional per-pattern labels (defaults to the cube names).
    """

    def __init__(
        self,
        patterns: Iterable[CubeLike],
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        rows: List[np.ndarray] = []
        inferred_names: List[Optional[str]] = []
        for entry in patterns:
            if isinstance(entry, TestCube):
                rows.append(np.asarray(entry.bits, dtype=BIT_DTYPE))
                inferred_names.append(entry.name)
            elif isinstance(entry, str):
                rows.append(bits_from_string(entry))
                inferred_names.append(None)
            else:
                arr = np.asarray(entry, dtype=BIT_DTYPE).reshape(-1)
                validate_bits(arr)
                rows.append(arr)
                inferred_names.append(None)
        if not rows:
            self._data = np.empty((0, 0), dtype=BIT_DTYPE)
        else:
            lengths = {row.shape[0] for row in rows}
            if len(lengths) != 1:
                raise ValueError(f"all cubes must have the same length, got lengths {sorted(lengths)}")
            self._data = np.vstack(rows).astype(BIT_DTYPE)
        if names is not None:
            names = list(names)
            if len(names) != self._data.shape[0]:
                raise ValueError("names must have one entry per pattern")
            self._names: List[Optional[str]] = names
        else:
            self._names = inferred_names
        self._data.setflags(write=False)

    # -- alternative constructors -------------------------------------------
    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        names: Optional[Sequence[Optional[str]]] = None,
    ) -> "TestSet":
        """Build a set from an ``(n_patterns, n_pins)`` matrix of 0/1/X codes."""
        matrix = np.asarray(matrix, dtype=BIT_DTYPE)
        if matrix.ndim != 2:
            raise ValueError("matrix must be two-dimensional")
        validate_bits(matrix)
        instance = cls.__new__(cls)
        instance._data = matrix.copy()
        instance._data.setflags(write=False)
        if names is not None:
            names = list(names)
            if len(names) != matrix.shape[0]:
                raise ValueError("names must have one entry per pattern")
            instance._names = names
        else:
            instance._names = [None] * matrix.shape[0]
        return instance

    @classmethod
    def from_pin_matrix(cls, pin_matrix: np.ndarray) -> "TestSet":
        """Build a set from the paper's ``m x n`` pin-major matrix ``A``."""
        return cls.from_matrix(np.asarray(pin_matrix).T)

    @classmethod
    def from_strings(cls, strings: Iterable[str]) -> "TestSet":
        """Build a set from an iterable of ``0/1/X`` strings."""
        return cls(list(strings))

    # -- protocol -------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._data.shape[0])

    def __getitem__(self, index: int) -> TestCube:
        return TestCube(self._data[index].copy(), name=self._names[index])

    def __iter__(self) -> Iterator[TestCube]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestSet):
            return NotImplemented
        return bool(np.array_equal(self._data, other._data))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TestSet(n_patterns={len(self)}, n_pins={self.n_pins})"

    # -- views ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """Read-only ``(n_patterns, n_pins)`` view of the data."""
        return self._data

    def pin_matrix(self) -> np.ndarray:
        """The paper's ``m x n`` matrix ``A`` (rows = pins, columns = patterns)."""
        return self._data.T.copy()

    @property
    def n_pins(self) -> int:
        """Number of input pins (cube length)."""
        return int(self._data.shape[1])

    @property
    def names(self) -> List[Optional[str]]:
        """Per-pattern labels (copies; mutation does not affect the set)."""
        return list(self._names)

    # -- statistics ---------------------------------------------------------------
    @property
    def x_count(self) -> int:
        """Total number of X bits in the set."""
        return int(np.count_nonzero(self._data == X))

    @property
    def x_fraction(self) -> float:
        """Fraction of all bits that are X (the paper's Table I ``X %`` metric)."""
        total = self._data.size
        return self.x_count / total if total else 0.0

    def x_counts_per_pattern(self) -> np.ndarray:
        """Number of X bits in each pattern, in order."""
        return np.count_nonzero(self._data == X, axis=1)

    def is_fully_specified(self) -> bool:
        """``True`` when no pattern contains an X bit."""
        return self.x_count == 0

    # -- transformations ------------------------------------------------------------
    def reordered(self, permutation: Sequence[int]) -> "TestSet":
        """Return a new set with patterns permuted by ``permutation``.

        ``permutation[i]`` gives the index (into the current order) of the
        pattern that should appear at position ``i`` of the new set.

        Raises:
            ValueError: if ``permutation`` is not a permutation of
                ``range(len(self))``.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (len(self),) or sorted(perm.tolist()) != list(range(len(self))):
            raise ValueError("permutation must contain each pattern index exactly once")
        names = [self._names[i] for i in perm]
        return TestSet.from_matrix(self._data[perm], names=names)

    def with_pattern(self, index: int, cube: TestCube) -> "TestSet":
        """Return a copy with pattern ``index`` replaced by ``cube``."""
        if len(cube) != self.n_pins:
            raise ValueError("replacement cube has the wrong length")
        data = self._data.copy()
        data[index] = cube.bits
        names = list(self._names)
        names[index] = cube.name
        return TestSet.from_matrix(data, names=names)

    def subset(self, indices: Sequence[int]) -> "TestSet":
        """Return a new set containing only ``indices``, in the given order."""
        idx = np.asarray(indices, dtype=np.int64)
        return TestSet.from_matrix(self._data[idx], names=[self._names[i] for i in idx])

    def filled(self, fill_matrix: np.ndarray) -> "TestSet":
        """Return a fully specified copy whose data is ``fill_matrix``.

        The fill matrix must agree with every specified bit of the original
        set and must not contain any X — this is the post-condition every
        X-filling algorithm has to satisfy, so it is enforced here once.

        Raises:
            ValueError: if the fill flips a specified (care) bit or leaves an
                X behind.
        """
        fill = np.asarray(fill_matrix, dtype=BIT_DTYPE)
        if fill.shape != self._data.shape:
            raise ValueError("fill matrix has the wrong shape")
        if (fill == X).any():
            raise ValueError("fill matrix still contains X bits")
        specified = self._data != X
        if not np.array_equal(fill[specified], self._data[specified]):
            raise ValueError("fill matrix modifies specified (care) bits")
        return TestSet.from_matrix(fill, names=self._names)

    def to_strings(self) -> List[str]:
        """Render every pattern as a ``0/1/X`` string, in order."""
        return [bits_to_string(row) for row in self._data]

    def copy(self) -> "TestSet":
        """Return an independent copy of the set."""
        return TestSet.from_matrix(self._data.copy(), names=self._names)
