"""Toggle and don't-care metrics over cubes and cube sets.

Two families of metrics live here:

* **Toggle metrics** (:func:`hamming_distance`, :func:`toggle_profile`,
  :func:`peak_toggles`, :func:`total_toggles`) evaluate *filled* pattern
  sequences.  The paper's objective is the peak of the toggle profile:
  ``max_j hd(T_j, T_{j+1})``.
* **Don't-care metrics** (:func:`x_density`, :func:`stretch_histogram`,
  :class:`StretchStats`) characterise how much freedom an X-filling
  algorithm has.  Table I of the paper reports X density per benchmark and
  Fig. 2(c) compares the X-run-length ("stretch") distribution of the pin
  matrix under different orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

import numpy as np

from repro.cubes.bits import X
from repro.cubes.cube import TestCube, TestSet

ArrayLike = Union[np.ndarray, TestCube]


def _as_bits(value: ArrayLike) -> np.ndarray:
    if isinstance(value, TestCube):
        return value.bits
    return np.asarray(value)


def hamming_distance(first: ArrayLike, second: ArrayLike) -> int:
    """Hamming distance between two fully specified patterns.

    Raises:
        ValueError: if either pattern still contains X bits (the distance
            between partially specified cubes is not well defined; use
            :func:`conflict_distance` for that).
    """
    a, b = _as_bits(first), _as_bits(second)
    if a.shape != b.shape:
        raise ValueError("patterns must have the same length")
    if (a == X).any() or (b == X).any():
        raise ValueError("hamming_distance requires fully specified patterns")
    return int(np.count_nonzero(a != b))


def conflict_distance(first: ArrayLike, second: ArrayLike) -> int:
    """Number of positions where both cubes are specified and differ.

    This is the *unavoidable* contribution of a pattern pair to the toggle
    count: no X-filling can remove these toggles.  It is the natural
    distance measure for ordering heuristics that run before filling
    (the X-Stat ordering reconstruction uses it).
    """
    a, b = _as_bits(first), _as_bits(second)
    if a.shape != b.shape:
        raise ValueError("patterns must have the same length")
    return int(np.count_nonzero((a != b) & (a != X) & (b != X)))


def toggle_profile(patterns: TestSet) -> np.ndarray:
    """Per-boundary toggle counts of a fully specified pattern sequence.

    Entry ``j`` is the Hamming distance between pattern ``j`` and pattern
    ``j + 1``; the result has ``len(patterns) - 1`` entries (empty for sets
    with fewer than two patterns).
    """
    data = patterns.matrix
    if len(patterns) < 2:
        return np.zeros(0, dtype=np.int64)
    if (data == X).any():
        raise ValueError("toggle_profile requires a fully specified pattern set")
    return np.count_nonzero(data[1:] != data[:-1], axis=1).astype(np.int64)


def peak_toggles(patterns: TestSet) -> int:
    """Peak (maximum) number of input toggles between adjacent patterns.

    This is the quantity every table in the paper reports ("peak input
    toggles").  Returns 0 for sets with fewer than two patterns.
    """
    profile = toggle_profile(patterns)
    return int(profile.max()) if profile.size else 0


def total_toggles(patterns: TestSet) -> int:
    """Total number of input toggles over the whole sequence (average-power proxy)."""
    profile = toggle_profile(patterns)
    return int(profile.sum()) if profile.size else 0


def specified_bit_count(patterns: TestSet) -> int:
    """Number of care (0/1) bits in the set."""
    return patterns.matrix.size - patterns.x_count


def x_density(patterns: TestSet) -> float:
    """Fraction of bits that are don't-cares (Table I's ``X %`` as a fraction)."""
    return patterns.x_fraction


@dataclass
class StretchStats:
    """Distribution of X-run lengths ("don't-care stretches") in a pin matrix.

    A *stretch* is a maximal run of consecutive X bits within one pin row of
    the ordered pattern matrix.  Longer stretches give the X-filling
    algorithm more freedom to spread toggles, which is exactly what
    I-Ordering tries to create (Fig. 2(c) of the paper).

    Attributes:
        histogram: mapping from stretch length to number of stretches of
            that length.
        n_rows: number of pin rows analysed.
        n_columns: number of patterns in the ordering.
    """

    histogram: Dict[int, int] = field(default_factory=dict)
    n_rows: int = 0
    n_columns: int = 0

    @property
    def total_stretches(self) -> int:
        """Total number of maximal X runs."""
        return sum(self.histogram.values())

    @property
    def total_x_bits(self) -> int:
        """Total number of X bits covered by the stretches."""
        return sum(length * count for length, count in self.histogram.items())

    @property
    def mean_length(self) -> float:
        """Mean stretch length (0.0 when there are no stretches)."""
        total = self.total_stretches
        return self.total_x_bits / total if total else 0.0

    @property
    def max_length(self) -> int:
        """Length of the longest stretch (0 when there are none)."""
        return max(self.histogram) if self.histogram else 0

    def cumulative_at_least(self, length: int) -> int:
        """Number of stretches with length greater than or equal to ``length``."""
        return sum(count for size, count in self.histogram.items() if size >= length)

    def bucketed(self, edges: tuple = (1, 2, 4, 8, 16, 32, 64)) -> Dict[str, int]:
        """Group the histogram into human-readable buckets for reporting."""
        buckets: Dict[str, int] = {}
        edges = tuple(sorted(edges))
        for index, low in enumerate(edges):
            high = edges[index + 1] - 1 if index + 1 < len(edges) else None
            if high is None:
                label = f">={low}"
                count = sum(c for size, c in self.histogram.items() if size >= low)
            else:
                label = f"{low}-{high}" if high > low else f"{low}"
                count = sum(c for size, c in self.histogram.items() if low <= size <= high)
            buckets[label] = count
        return buckets


def stretch_histogram(patterns: TestSet) -> StretchStats:
    """Compute the X-stretch statistics of an ordered pattern set.

    The analysis runs over the pin-major matrix (one row per input pin,
    columns in pattern order), mirroring the matrix ``A`` of the paper.
    """
    pin_matrix = patterns.pin_matrix()
    histogram: Dict[int, int] = {}
    for row in pin_matrix:
        run = 0
        for value in row:
            if value == X:
                run += 1
            elif run:
                histogram[run] = histogram.get(run, 0) + 1
                run = 0
        if run:
            histogram[run] = histogram.get(run, 0) + 1
    return StretchStats(histogram=histogram, n_rows=pin_matrix.shape[0], n_columns=pin_matrix.shape[1])
