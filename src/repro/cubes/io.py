"""Reading and writing cube sets as plain-text pattern files.

ATPG tools exchange patterns in tool-specific formats (STIL, WGL, ...); this
module provides a deliberately simple text format so cube sets can move in
and out of the library — e.g. to fill patterns exported from another flow, or
to hand DP-filled patterns to a downstream simulator.

Format: one pattern per line, ``0/1/X`` characters, optionally followed by
``# name`` giving the pattern a label (typically the target fault).  Blank
lines and full-line comments are ignored.  A header comment records the pin
count so truncated files are detected on read.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.cubes.cube import TestCube, TestSet

PathLike = Union[str, Path]


class PatternFileError(ValueError):
    """Raised when a pattern file is malformed or inconsistent."""


def dumps_patterns(patterns: TestSet, title: str = "repro pattern file") -> str:
    """Serialise a cube set to pattern-file text."""
    lines: List[str] = [
        f"# {title}",
        f"# pins: {patterns.n_pins}",
        f"# patterns: {len(patterns)}",
    ]
    for cube_string, name in zip(patterns.to_strings(), patterns.names):
        if name:
            lines.append(f"{cube_string}  # {name}")
        else:
            lines.append(cube_string)
    lines.append("")
    return "\n".join(lines)


def loads_patterns(text: str) -> TestSet:
    """Parse pattern-file text back into a :class:`TestSet`.

    Raises:
        PatternFileError: on malformed lines, inconsistent pattern lengths, or
            a pin-count header that disagrees with the data.
    """
    declared_pins: Optional[int] = None
    cubes: List[TestCube] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        stripped = raw_line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            body = stripped.lstrip("#").strip()
            if body.lower().startswith("pins:"):
                try:
                    declared_pins = int(body.split(":", 1)[1])
                except ValueError:
                    raise PatternFileError(f"line {line_number}: bad pins header {body!r}") from None
            continue
        bits_part, __, comment = stripped.partition("#")
        name = comment.strip() or None
        bits_text = bits_part.strip()
        try:
            cube = TestCube.from_string(bits_text, name=name)
        except ValueError as exc:
            raise PatternFileError(f"line {line_number}: {exc}") from None
        cubes.append(cube)

    if cubes:
        lengths = {len(c) for c in cubes}
        if len(lengths) != 1:
            raise PatternFileError(f"inconsistent pattern lengths: {sorted(lengths)}")
        if declared_pins is not None and declared_pins != len(cubes[0]):
            raise PatternFileError(
                f"header declares {declared_pins} pins but patterns have {len(cubes[0])}"
            )
    return TestSet(cubes)


def write_pattern_file(patterns: TestSet, path: PathLike, title: str = "repro pattern file") -> None:
    """Write a cube set to ``path`` in the pattern-file format."""
    Path(path).write_text(dumps_patterns(patterns, title=title))


def read_pattern_file(path: PathLike) -> TestSet:
    """Read a cube set from a pattern file on disk."""
    return loads_patterns(Path(path).read_text())
