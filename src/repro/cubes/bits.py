"""Bit-level encodings for tri-valued (0 / 1 / X) test data.

The whole library uses a single integer encoding so cubes can live in dense
``numpy.int8`` arrays:

===========  =====  ==========================================
symbol       value  meaning
===========  =====  ==========================================
``ZERO``     0      logic zero, specified
``ONE``      1      logic one, specified
``X``        2      don't care (unspecified)
===========  =====  ==========================================

Keeping ``ZERO``/``ONE`` at their numeric values means a fully specified
cube can be used directly as a binary vector (e.g. fed to the logic
simulator) without translation.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

ZERO: int = 0
ONE: int = 1
X: int = 2

#: dtype used for all cube storage.
BIT_DTYPE = np.int8

_CHAR_TO_BIT = {
    "0": ZERO,
    "1": ONE,
    "x": X,
    "X": X,
    "-": X,
    "d": X,
    "D": X,
}

_BIT_TO_CHAR = {ZERO: "0", ONE: "1", X: "X"}


def bit_from_char(char: str) -> int:
    """Convert a single character to its bit encoding.

    Accepts ``0``, ``1`` and the common don't-care spellings ``X``, ``x``,
    ``-`` and ``D`` (some ATPG tools emit ``-`` or ``D`` for unspecified
    positions in STIL/ASCII pattern files).

    Raises:
        ValueError: if the character is not a recognised bit symbol.
    """
    try:
        return _CHAR_TO_BIT[char]
    except KeyError:
        raise ValueError(f"not a valid test-cube bit character: {char!r}") from None


def bit_to_char(bit: int) -> str:
    """Convert a bit encoding back to its canonical character (``0``/``1``/``X``)."""
    try:
        return _BIT_TO_CHAR[int(bit)]
    except KeyError:
        raise ValueError(f"not a valid test-cube bit value: {bit!r}") from None


def bits_from_string(text: str) -> np.ndarray:
    """Parse a cube string such as ``"01XX1"`` into an ``int8`` array.

    Whitespace and underscores are ignored so callers can format long cubes
    readably (``"0101_XXXX_1100"``).
    """
    cleaned = [c for c in text if not c.isspace() and c != "_"]
    return np.array([bit_from_char(c) for c in cleaned], dtype=BIT_DTYPE)


def bits_to_string(bits: Iterable[int]) -> str:
    """Render an iterable of bit encodings as a compact ``0/1/X`` string."""
    return "".join(bit_to_char(b) for b in bits)


def is_specified(bits: np.ndarray) -> np.ndarray:
    """Return a boolean mask that is ``True`` where ``bits`` is ``0`` or ``1``."""
    arr = np.asarray(bits)
    return arr != X


def validate_bits(bits: np.ndarray) -> None:
    """Raise ``ValueError`` if ``bits`` contains anything other than 0/1/X."""
    arr = np.asarray(bits)
    if arr.size and not np.isin(arr, (ZERO, ONE, X)).all():
        bad = sorted(set(int(v) for v in np.unique(arr)) - {ZERO, ONE, X})
        raise ValueError(f"invalid bit values in cube data: {bad}")


def random_bits(length: int, x_fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Generate a random cube of ``length`` bits with roughly ``x_fraction`` X bits.

    Specified positions are drawn uniformly from {0, 1}.  Used by the
    synthetic cube generator and by property-based tests.
    """
    if not 0.0 <= x_fraction <= 1.0:
        raise ValueError(f"x_fraction must be within [0, 1], got {x_fraction}")
    bits = rng.integers(0, 2, size=length).astype(BIT_DTYPE)
    mask = rng.random(length) < x_fraction
    bits[mask] = X
    return bits


def merge_bits(primary: np.ndarray, secondary: np.ndarray) -> List[int]:
    """Merge two compatible cubes bit-wise (specified bits win over X).

    Raises:
        ValueError: if the cubes conflict (one has 0 where the other has 1)
            or have different lengths.
    """
    a = np.asarray(primary)
    b = np.asarray(secondary)
    if a.shape != b.shape:
        raise ValueError("cannot merge cubes of different lengths")
    conflict = (a != b) & (a != X) & (b != X)
    if conflict.any():
        positions = np.flatnonzero(conflict)[:8].tolist()
        raise ValueError(f"cube conflict at positions {positions}")
    merged = np.where(a == X, b, a).astype(BIT_DTYPE)
    return merged.tolist()
