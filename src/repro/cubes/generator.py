"""Synthetic test-cube generator.

The paper's experiments run commercial ATPG (TetraMax) on the ITC'99
benchmark suite; the resulting cube sets are dominated by don't-cares
(Table I).  This reproduction generates realistic cubes in two ways:

* through the pure-Python PODEM ATPG in :mod:`repro.atpg` for circuits that
  are small enough to run the full flow, and
* through this module, which synthesises cube sets directly from a target
  X-density profile.  It is used for the largest ITC'99 profiles where a
  pure-Python ATPG run would dominate the experiment runtime, and for
  property-based tests that need many cube sets quickly.

The generator does not place care bits uniformly at random.  Real ATPG cubes
have *structure*: each cube constrains a small cluster of logically related
inputs (the cone of the target fault), a few "hot" inputs (clock enables,
resets, control pins) are specified in most cubes, and the rest of the cube
is X.  The generator mimics that with per-pin specification affinities and
per-cube care clusters, which is what gives the pin matrix the long X
stretches that DP-fill and I-Ordering exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cubes.bits import BIT_DTYPE, ONE, X, ZERO
from repro.cubes.cube import TestSet


@dataclass(frozen=True)
class CubeSetSpec:
    """Parameters of a synthetic cube set.

    Attributes:
        n_pins: cube length (primary inputs + scan cells of the circuit).
        n_patterns: number of cubes to generate.
        x_fraction: target overall fraction of X bits (Table I's ``X %``).
        cluster_fraction: fraction of each cube's care bits that is drawn
            from a contiguous "fault cone" cluster rather than scattered.
        hot_pin_fraction: fraction of pins that behave like control pins and
            are specified far more often than average.
        seed: RNG seed — the generator is fully deterministic given the spec.
    """

    n_pins: int
    n_patterns: int
    x_fraction: float
    cluster_fraction: float = 0.6
    hot_pin_fraction: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_pins <= 0:
            raise ValueError("n_pins must be positive")
        if self.n_patterns <= 0:
            raise ValueError("n_patterns must be positive")
        if not 0.0 <= self.x_fraction < 1.0:
            raise ValueError("x_fraction must be in [0, 1)")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_pin_fraction <= 1.0:
            raise ValueError("hot_pin_fraction must be in [0, 1]")


def _pin_affinities(spec: CubeSetSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-pin relative probability of being specified in a cube.

    Hot pins (control-like) get a large weight; the remainder get weights
    drawn from a long-tailed distribution so some data pins are constrained
    often and many are almost always free.
    """
    weights = rng.gamma(shape=1.2, scale=1.0, size=spec.n_pins)
    n_hot = max(0, int(round(spec.hot_pin_fraction * spec.n_pins)))
    if n_hot:
        hot = rng.choice(spec.n_pins, size=n_hot, replace=False)
        weights[hot] *= 8.0
    total = weights.sum()
    if total <= 0:
        return np.full(spec.n_pins, 1.0 / spec.n_pins)
    return weights / total


def generate_cube_set(spec: CubeSetSpec) -> TestSet:
    """Generate a synthetic :class:`TestSet` matching ``spec``.

    The overall X density of the result is close to ``spec.x_fraction``
    (within a couple of percent for non-degenerate sizes); per-cube care
    counts vary the way ATPG cube sizes do (early cubes for hard faults
    specify more bits than late cubes for easy faults).
    """
    rng = np.random.default_rng(spec.seed)
    affinities = _pin_affinities(spec, rng)
    care_target = (1.0 - spec.x_fraction) * spec.n_pins

    data = np.full((spec.n_patterns, spec.n_pins), X, dtype=BIT_DTYPE)
    # Per-cube care-bit budget: long-tailed around the target so the set has
    # both dense and sparse cubes, which is what makes ordering interesting.
    budgets = rng.gamma(shape=2.0, scale=care_target / 2.0, size=spec.n_patterns)
    budgets = np.clip(np.round(budgets), 1, spec.n_pins).astype(np.int64)
    # Keep the *mean* on target so the aggregate X density matches Table I.
    # Clipping at n_pins pulls the mean down for low-X specs, so rescale a few
    # times until the clipped mean converges onto the target.
    for __ in range(4):
        scale = care_target / max(budgets.mean(), 1e-9)
        budgets = np.clip(np.round(budgets * scale), 1, spec.n_pins).astype(np.int64)

    pin_indices = np.arange(spec.n_pins)
    for row, budget in enumerate(budgets):
        budget = int(budget)
        n_cluster = int(round(spec.cluster_fraction * budget))
        n_scatter = budget - n_cluster
        chosen: set = set()
        if n_cluster > 0:
            start = int(rng.integers(0, spec.n_pins))
            cluster = [(start + offset) % spec.n_pins for offset in range(n_cluster)]
            chosen.update(cluster)
        if n_scatter > 0:
            scattered = rng.choice(pin_indices, size=min(n_scatter, spec.n_pins), replace=False, p=affinities)
            chosen.update(int(i) for i in scattered)
        # The cluster and the scattered picks can overlap; top the selection up
        # with fresh pins so every cube carries exactly its care-bit budget and
        # the aggregate X density stays on target.
        if len(chosen) < budget:
            remaining = np.setdiff1d(pin_indices, np.fromiter(chosen, dtype=np.int64), assume_unique=False)
            extra = rng.choice(remaining, size=budget - len(chosen), replace=False)
            chosen.update(int(i) for i in extra)
        positions = np.fromiter(chosen, dtype=np.int64)
        values = rng.integers(0, 2, size=positions.shape[0]).astype(BIT_DTYPE)
        data[row, positions] = values

    names = [f"synthetic_{row}" for row in range(spec.n_patterns)]
    return TestSet.from_matrix(data, names=names)


def generate_cube_set_like(
    n_pins: int,
    n_patterns: int,
    x_percent: float,
    seed: int = 0,
    cluster_fraction: float = 0.6,
) -> TestSet:
    """Convenience wrapper taking the X density as a percentage (Table I units)."""
    spec = CubeSetSpec(
        n_pins=n_pins,
        n_patterns=n_patterns,
        x_fraction=x_percent / 100.0,
        cluster_fraction=cluster_fraction,
        seed=seed,
    )
    return generate_cube_set(spec)


def random_fully_specified_set(
    n_pins: int,
    n_patterns: int,
    seed: int = 0,
) -> TestSet:
    """Generate a fully specified random pattern set (no X bits).

    Useful as a degenerate input for testing that every fill algorithm is a
    no-op when there is nothing to fill, and as a random-pattern source for
    fault simulation.
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(ZERO, ONE + 1, size=(n_patterns, n_pins)).astype(BIT_DTYPE)
    return TestSet.from_matrix(data)
