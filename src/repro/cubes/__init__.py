"""Tri-valued test-cube substrate.

A *test cube* is a partially specified test pattern: every bit position is
``0``, ``1`` or ``X`` (don't care).  ATPG tools emit cubes because a target
fault constrains only a handful of inputs; the remaining positions are left
unspecified and may be filled freely.  Everything in this reproduction —
the DP-fill algorithm, the baseline fills, the orderings and the power
model — consumes and produces the types defined here.

Public API
----------
``ZERO`` / ``ONE`` / ``X``
    Integer bit encodings used throughout the package.
``TestCube``
    A single partially specified pattern.
``TestSet``
    An ordered sequence of equal-length cubes backed by a NumPy matrix.
``hamming_distance`` / ``peak_toggles`` / ``toggle_profile``
    Toggle metrics between adjacent (filled) patterns.
``x_density`` / ``stretch_histogram`` / ``StretchStats``
    Don't-care statistics (Table I and Fig. 2(c) of the paper).
``CubeSetSpec`` / ``generate_cube_set``
    Synthetic cube-set generator calibrated by X density.
"""

from repro.cubes.bits import (
    ONE,
    X,
    ZERO,
    bit_from_char,
    bit_to_char,
    bits_from_string,
    bits_to_string,
    is_specified,
)
from repro.cubes.cube import TestCube, TestSet
from repro.cubes.generator import CubeSetSpec, generate_cube_set
from repro.cubes.metrics import (
    StretchStats,
    conflict_distance,
    hamming_distance,
    peak_toggles,
    specified_bit_count,
    stretch_histogram,
    toggle_profile,
    total_toggles,
    x_density,
)

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "bit_from_char",
    "bit_to_char",
    "bits_from_string",
    "bits_to_string",
    "is_specified",
    "TestCube",
    "TestSet",
    "hamming_distance",
    "conflict_distance",
    "peak_toggles",
    "toggle_profile",
    "total_toggles",
    "specified_bit_count",
    "x_density",
    "stretch_histogram",
    "StretchStats",
    "CubeSetSpec",
    "generate_cube_set",
]
