"""Fault simulation with fault dropping.

The simulator is *serial* in faults but *parallel* in patterns: the good
machine is evaluated once for the whole pattern batch, and each fault is then
re-evaluated only over its downstream cone with the fault site forced to the
stuck value.  Detection means any observable output (primary output or
flip-flop data input) differs from the good machine for at least one pattern.

This is the piece that grades every generated test set: coverage numbers in
the experiment harness and the "patterns keep detecting their target faults
after X-filling" integration tests both come from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.atpg.faults import StuckAtFault
from repro.circuit.gates import GateType, evaluate_bool
from repro.circuit.netlist import Circuit
from repro.circuit.simulator import LogicSimulator
from repro.cubes.cube import TestSet


@dataclass
class FaultSimulationResult:
    """Outcome of fault-simulating a pattern set against a fault list.

    Attributes:
        detected: mapping from fault to the index of the first detecting
            pattern.
        undetected: faults no pattern detected.
        n_patterns: number of patterns simulated.
    """

    detected: Dict[StuckAtFault, int] = field(default_factory=dict)
    undetected: List[StuckAtFault] = field(default_factory=list)
    n_patterns: int = 0

    @property
    def coverage(self) -> float:
        """Fault coverage over the supplied fault list (1.0 when empty)."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    @property
    def detected_count(self) -> int:
        """Number of detected faults."""
        return len(self.detected)


class FaultSimulator:
    """Serial-fault / parallel-pattern stuck-at fault simulator."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self._logic = LogicSimulator(circuit)
        self._order = circuit.topological_order()
        self._order_rank = {net: i for i, net in enumerate(self._order)}
        self._fanout = circuit.fanout_map()
        self._outputs = circuit.combinational_outputs
        self._output_set = set(self._outputs)

    # -- internals -----------------------------------------------------------
    def _downstream_cone(self, net: str) -> List[str]:
        """Combinational gates reachable from ``net``, in topological order."""
        seen: set = set()
        stack = [net]
        while stack:
            current = stack.pop()
            for reader in self._fanout.get(current, []):
                if reader in seen:
                    continue
                gate = self.circuit.get_gate(reader)
                if gate.gate_type.is_sequential:
                    continue
                seen.add(reader)
                stack.append(reader)
        return sorted(seen, key=lambda name: self._order_rank.get(name, 0))

    def _simulate_fault(
        self,
        fault: StuckAtFault,
        good_values: Dict[str, np.ndarray],
        n_patterns: int,
    ) -> np.ndarray:
        """Return a boolean array marking the patterns that detect ``fault``."""
        faulty: Dict[str, np.ndarray] = {}
        forced = np.full(n_patterns, bool(fault.stuck_value))
        faulty[fault.net] = forced
        # If the faulty net is itself observable, a difference there detects it.
        detected = np.zeros(n_patterns, dtype=bool)
        if fault.net in self._output_set:
            detected |= good_values[fault.net] != forced

        for name in self._downstream_cone(fault.net):
            gate = self.circuit.get_gate(name)
            if gate.gate_type is GateType.CONST0:
                value = np.zeros(n_patterns, dtype=bool)
            elif gate.gate_type is GateType.CONST1:
                value = np.ones(n_patterns, dtype=bool)
            else:
                inputs = [faulty.get(net, good_values[net]) for net in gate.inputs]
                value = evaluate_bool(gate.gate_type, inputs)
            faulty[name] = value
            if name in self._output_set:
                detected |= value != good_values[name]
        return detected

    # -- public API -------------------------------------------------------------
    def run(
        self,
        patterns: TestSet,
        faults: Sequence[StuckAtFault],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults``.

        Args:
            patterns: fully specified pattern set over the circuit's test pins.
            faults: faults to grade.
            drop_detected: record only the first detecting pattern per fault
                (standard fault dropping).  The flag exists for completeness;
                detection results are identical either way.

        Returns:
            A :class:`FaultSimulationResult`.
        """
        if not patterns.is_fully_specified():
            raise ValueError("fault simulation requires fully specified patterns")
        n_patterns = len(patterns)
        result = FaultSimulationResult(n_patterns=n_patterns)
        if n_patterns == 0:
            # An empty pattern set detects nothing; there is no pin width to check.
            result.undetected = list(faults)
            return result
        if patterns.n_pins != self.circuit.n_test_pins:
            raise ValueError(
                f"patterns have {patterns.n_pins} pins, circuit expects {self.circuit.n_test_pins}"
            )

        good_values = self._logic.simulate(patterns.matrix)
        for fault in faults:
            detecting = self._simulate_fault(fault, good_values, n_patterns)
            indices = np.flatnonzero(detecting)
            if indices.size:
                result.detected[fault] = int(indices[0])
            else:
                result.undetected.append(fault)
            if drop_detected:
                continue
        return result

    def detects(self, pattern_bits: np.ndarray, fault: StuckAtFault) -> bool:
        """``True`` when a single fully specified pattern detects ``fault``."""
        patterns = TestSet.from_matrix(np.asarray(pattern_bits).reshape(1, -1))
        result = self.run(patterns, [fault])
        return fault in result.detected

    def coverage_of(self, patterns: TestSet, faults: Optional[Sequence[StuckAtFault]] = None) -> float:
        """Convenience wrapper returning only the coverage figure."""
        from repro.atpg.collapse import collapse_faults

        fault_list = list(faults) if faults is not None else collapse_faults(self.circuit)
        return self.run(patterns, fault_list).coverage
