"""Fault simulation with fault dropping.

The simulator is *serial* in faults but *parallel* in patterns: the good
machine is evaluated once for the whole pattern batch, and each fault is then
re-evaluated only over its downstream cone with the fault site forced to the
stuck value.  Detection means any observable output (primary output or
flip-flop data input) differs from the good machine for at least one pattern.

This is the piece that grades every generated test set: coverage numbers in
the experiment harness and the "patterns keep detecting their target faults
after X-filling" integration tests both come from here.

Since the engine subsystem landed, :class:`FaultSimulator` is a thin facade
over a pluggable backend (see :mod:`repro.engine.backend`): ``"packed"``
grades faults on the compiled bit-parallel engine (64 patterns per machine
word, cone-restricted re-evaluation, real fault dropping, and an automatic
lanes/words execution-mode switch for wide pattern sets — see
:mod:`repro.engine.fault` and ``REPRO_FAULT_MODE``), ``"sharded"`` fans that
out across worker processes, and ``"naive"`` keeps the original
dict-walking implementation as the reference oracle.  All produce
bit-identical results; the default is resolved through the backend registry
(``REPRO_BACKEND`` environment variable, ``packed`` otherwise).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.atpg.faults import StuckAtFault
from repro.circuit.netlist import Circuit
from repro.cubes.cube import TestSet
from repro.engine.backend import SimulationBackend, get_backend
from repro.engine.fault import FaultSimulationResult, resolve_fault_mode

__all__ = ["FaultSimulationResult", "FaultSimulator"]


class FaultSimulator:
    """Serial-fault / parallel-pattern stuck-at fault simulator.

    Args:
        circuit: circuit under test (validated and compiled once).
        backend: backend name (``"packed"``, ``"naive"``) or a
            :class:`~repro.engine.backend.SimulationBackend` instance; the
            registry default applies when omitted.
        fault_mode: force the packed grading mode (``"auto"``/``"lanes"``/
            ``"words"``/``"faults"``) on backends that grade through the
            packed kernels; ``None`` keeps the backend's own resolution
            (``REPRO_FAULT_MODE``, else per-shape ``auto``).  The naive
            reference has a single kernel and ignores the knob.
    """

    def __init__(
        self,
        circuit: Circuit,
        backend: Union[str, SimulationBackend, None] = None,
        fault_mode: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.backend = get_backend(backend)
        self._impl = self.backend.fault_simulator(circuit)
        if fault_mode is not None and hasattr(self._impl, "mode"):
            self._impl.mode = resolve_fault_mode(fault_mode)

    @property
    def last_run_stats(self) -> dict:
        """Work counters of the most recent :meth:`run` (see engine docs)."""
        return dict(self._impl.last_run_stats)

    # -- public API -------------------------------------------------------------
    def run(
        self,
        patterns: TestSet,
        faults: Sequence[StuckAtFault],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults``.

        Args:
            patterns: fully specified pattern set over the circuit's test pins.
            faults: faults to grade.
            drop_detected: drop each fault once detected — later pattern
                blocks skip its cone entirely.  Detection results (including
                the first-detecting pattern index) are identical either way;
                the flag only controls whether the redundant work is done.

        Returns:
            A :class:`FaultSimulationResult`.
        """
        return self._impl.run(patterns, faults, drop_detected=drop_detected)

    def detects(self, pattern_bits: np.ndarray, fault: StuckAtFault) -> bool:
        """``True`` when a single fully specified pattern detects ``fault``."""
        patterns = TestSet.from_matrix(np.asarray(pattern_bits).reshape(1, -1))
        result = self.run(patterns, [fault])
        return fault in result.detected

    def coverage_of(self, patterns: TestSet, faults: Optional[Sequence[StuckAtFault]] = None) -> float:
        """Convenience wrapper returning only the coverage figure."""
        from repro.atpg.collapse import collapse_faults

        fault_list = list(faults) if faults is not None else collapse_faults(self.circuit)
        return self.run(patterns, fault_list).coverage
