"""Structural equivalence fault collapsing.

Two faults are equivalent when every test for one detects the other; keeping
one representative per equivalence class shrinks the ATPG workload without
changing coverage.  The classic gate-local rules are applied, restricted to
gate inputs that do not fan out (a fanout stem fault is not equivalent to a
fault seen through only one of its branches):

==========  ==========================================================
gate        equivalence
==========  ==========================================================
AND         output sa0  ≡  each (fanout-free) input sa0
NAND        output sa1  ≡  each (fanout-free) input sa0
OR          output sa1  ≡  each (fanout-free) input sa1
NOR         output sa0  ≡  each (fanout-free) input sa1
NOT / BUF   both output faults ≡ the corresponding input faults
==========  ==========================================================

The implementation is a union–find over (net, value) pairs; the returned
representatives are the lexicographically smallest member of each class so
the result is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.atpg.faults import StuckAtFault, full_fault_list
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.cubes.bits import ONE, ZERO

FaultKey = Tuple[str, int]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[FaultKey, FaultKey] = {}

    def find(self, key: FaultKey) -> FaultKey:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, a: FaultKey, b: FaultKey) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        # Keep the lexicographically smaller root for determinism.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a


def collapse_faults(
    circuit: Circuit,
    faults: Sequence[StuckAtFault] = (),
) -> List[StuckAtFault]:
    """Collapse a fault list into equivalence-class representatives.

    Args:
        circuit: the circuit the faults live on.
        faults: the fault list to collapse; defaults to the full stem fault
            universe of the circuit.

    Returns:
        One representative :class:`StuckAtFault` per equivalence class, in
        deterministic (sorted) order.
    """
    fault_list = list(faults) if faults else full_fault_list(circuit)
    fanout_counts = circuit.fanout_counts()
    uf = _UnionFind()

    for gate in circuit.gates.values():
        if gate.gate_type.is_sequential or gate.gate_type.is_source:
            continue
        out = gate.output
        for net in gate.inputs:
            if fanout_counts.get(net, 0) != 1:
                continue
            if gate.gate_type is GateType.AND:
                uf.union((out, ZERO), (net, ZERO))
            elif gate.gate_type is GateType.NAND:
                uf.union((out, ONE), (net, ZERO))
            elif gate.gate_type is GateType.OR:
                uf.union((out, ONE), (net, ONE))
            elif gate.gate_type is GateType.NOR:
                uf.union((out, ZERO), (net, ONE))
            elif gate.gate_type is GateType.BUF:
                uf.union((out, ZERO), (net, ZERO))
                uf.union((out, ONE), (net, ONE))
            elif gate.gate_type is GateType.NOT:
                uf.union((out, ZERO), (net, ONE))
                uf.union((out, ONE), (net, ZERO))

    representatives: Dict[FaultKey, StuckAtFault] = {}
    for fault in fault_list:
        root = uf.find((fault.net, fault.stuck_value))
        current = representatives.get(root)
        if current is None or (fault.net, fault.stuck_value) < (current.net, current.stuck_value):
            representatives[root] = fault
    return sorted(representatives.values())


def collapse_ratio(circuit: Circuit) -> float:
    """Fraction of the full fault universe that survives collapsing."""
    full = full_fault_list(circuit)
    if not full:
        return 1.0
    return len(collapse_faults(circuit, full)) / len(full)
