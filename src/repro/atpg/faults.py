"""Single stuck-at fault model.

Faults are modelled on *nets* (stems): a net is permanently tied to 0 or 1
regardless of what its driver computes.  The fault universe of a circuit is
every net of the full-scan combinational view (primary inputs, flip-flop
outputs and gate outputs) times the two stuck values, which is the standard
stem fault list used when branch faults are folded into their stems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuit.netlist import Circuit
from repro.cubes.bits import ONE, ZERO


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """A single stuck-at fault.

    Attributes:
        net: the faulty net (identified by its driver name).
        stuck_value: 0 for stuck-at-0, 1 for stuck-at-1.
    """

    net: str
    stuck_value: int

    def __post_init__(self) -> None:
        if self.stuck_value not in (ZERO, ONE):
            raise ValueError("stuck_value must be 0 or 1")

    @property
    def name(self) -> str:
        """Conventional fault name, e.g. ``"G17/sa0"``."""
        return f"{self.net}/sa{self.stuck_value}"

    @property
    def activation_value(self) -> int:
        """The good-machine value required at the fault site to excite the fault."""
        return ONE - self.stuck_value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def full_fault_list(circuit: Circuit) -> List[StuckAtFault]:
    """Enumerate the uncollapsed stem fault universe of a circuit.

    Faults on flip-flop *outputs* are included (they are pseudo-primary
    inputs of the combinational view); faults on the DFF gates themselves are
    not modelled separately — they are equivalent to faults on their output
    nets in the full-scan methodology.
    """
    nets: List[str] = list(circuit.primary_inputs)
    for gate in circuit.gates.values():
        nets.append(gate.output)
    faults: List[StuckAtFault] = []
    for net in nets:
        faults.append(StuckAtFault(net=net, stuck_value=ZERO))
        faults.append(StuckAtFault(net=net, stuck_value=ONE))
    return faults
