"""Test-generation driver: PODEM over a collapsed fault list with fault dropping.

This is the offline replacement for the paper's TetraMax run: it walks the
collapsed fault list in deterministic order, generates a cube per undetected
fault, and fault-simulates a randomly filled copy of each new cube to drop
every other fault it happens to detect.  The order in which cubes are emitted
*is* the "tool ordering" used by Table II of the paper.

Each drop sweep grades one filled cube against *all* remaining faults — the
shape where pattern-parallel kernels degenerate to one fault at a time.
Under the packed backends the sweep therefore runs the fault-parallel
fault-word kernel (``mode="auto"`` resolves to ``"faults"`` for this shape;
see :func:`~repro.engine.fault.packed_first_detects_faults`), grading 64
remaining faults per machine word per cube instead of looping the python
interpreter over every fault.

Generation can fan out across the shared worker pool: the collapsed fault
list is partitioned into chunks and each worker runs the compiled ternary
PODEM engine on its shard (:class:`~repro.engine.sharded.ShardedPodemScheduler`),
with detected-fault drops broadcast between chunk submissions.  Because
per-fault PODEM runs are deterministic and the driver merges strictly in
fault-list order — consuming the dropping RNG in that same order — the
resulting :class:`ATPGResult` is bit-identical to a serial run for any
``jobs`` value, including the inline fallback when no pool is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.atpg.collapse import collapse_faults
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import StuckAtFault
from repro.atpg.podem import PodemEngine
from repro.circuit.netlist import Circuit
from repro.cubes.bits import BIT_DTYPE, X
from repro.cubes.cube import TestCube, TestSet
from repro.cluster.atpg import ClusterPodemScheduler
from repro.engine.backend import SimulationBackend
from repro.engine.sharded import ShardedPodemScheduler, parse_jobs, resolve_jobs


@dataclass
class ATPGResult:
    """Output of a full ATPG run.

    Attributes:
        cubes: the generated test cubes in generation ("tool") order.
        circuit_name: name of the circuit the cubes target.
        detected_faults: faults covered, mapped to the cube index that first
            detects them (via the random-filled copy used for dropping).
        untestable_faults: faults PODEM proved redundant.
        aborted_faults: faults abandoned at the backtrack limit.
        total_faults: size of the collapsed fault list.
    """

    cubes: TestSet
    circuit_name: str
    detected_faults: Dict[StuckAtFault, int] = field(default_factory=dict)
    untestable_faults: List[StuckAtFault] = field(default_factory=list)
    aborted_faults: List[StuckAtFault] = field(default_factory=list)
    total_faults: int = 0

    @property
    def fault_coverage(self) -> float:
        """Detected / total collapsed faults (testable or not)."""
        return len(self.detected_faults) / self.total_faults if self.total_faults else 1.0

    @property
    def test_coverage(self) -> float:
        """Detected / testable faults (untestable faults excluded)."""
        testable = self.total_faults - len(self.untestable_faults)
        return len(self.detected_faults) / testable if testable else 1.0

    @property
    def x_percent(self) -> float:
        """Average percentage of X bits in the cubes (the paper's Table I metric)."""
        return 100.0 * self.cubes.x_fraction


def _random_fill(cube: TestCube, rng: np.random.Generator) -> np.ndarray:
    bits = np.array(cube.bits, dtype=BIT_DTYPE)
    mask = bits == X
    bits[mask] = rng.integers(0, 2, size=int(mask.sum())).astype(BIT_DTYPE)
    return bits


#: Fault lists below this size always generate inline: shipping the compiled
#: program and paying per-chunk IPC cannot amortise over a handful of PODEM
#: runs (the fault-sim analogue is ``ShardedFaultSimulator``'s chunk-plan
#: minimums).  Results are identical either way — this only bounds overhead.
MIN_SHARDED_PODEM_FAULTS = 32


def _podem_scheduler(
    engine: PodemEngine, faults: Sequence[StuckAtFault], jobs: Optional[int]
) -> Optional[ClusterPodemScheduler]:
    """Build a pooled PODEM scheduler, or ``None`` for serial generation.

    Pooled generation engages for an explicit ``jobs`` > 1, or — mirroring
    how fault simulation fans out — automatically when the resolved backend
    is the sharded or cluster one.  It requires the compiled implication
    engine (the workers run it); with the dict reference in effect
    generation stays serial regardless of ``jobs``.  The sharded backend
    schedules on the shared spawn pool; the cluster backend schedules over
    its resolved transport (``REPRO_TRANSPORT``).
    """
    if engine.implementation != "compiled":
        return None
    backend_name = engine.backend.name
    if jobs is None:
        if backend_name not in ("sharded", "cluster"):
            return None
        jobs = resolve_jobs(getattr(engine.backend, "jobs", None))
    else:
        jobs = parse_jobs(jobs)
    if jobs <= 1 or len(faults) < MIN_SHARDED_PODEM_FAULTS:
        return None
    program = engine.program
    kwargs = dict(
        sites=[program.net_index[fault.net] for fault in faults],
        stuck_values=[fault.stuck_value for fault in faults],
        backtrack_limit=engine.backtrack_limit,
        jobs=jobs,
    )
    if backend_name == "cluster":
        scheduler: ClusterPodemScheduler = ClusterPodemScheduler(
            program, transport=getattr(engine.backend, "transport", None), **kwargs
        )
    else:
        scheduler = ShardedPodemScheduler(program, **kwargs)
    return scheduler if scheduler.pooled else None


def generate_test_cubes(
    circuit: Circuit,
    max_faults: Optional[int] = None,
    max_patterns: Optional[int] = None,
    backtrack_limit: int = 100,
    drop_with_fault_sim: bool = True,
    seed: int = 0,
    jobs: Optional[int] = None,
    backend: Union[str, SimulationBackend, None] = None,
    atpg_mode: Optional[str] = None,
    drop_fault_mode: Optional[str] = None,
) -> ATPGResult:
    """Generate a stuck-at test-cube set for ``circuit``.

    Args:
        circuit: circuit under test.
        max_faults: optionally cap the number of target faults (the cap is a
            deterministic stratified sample of the collapsed list, keeping the
            run time of the large benchmarks under control).
        max_patterns: optionally stop once this many cubes were emitted.
        backtrack_limit: PODEM abort threshold per fault.
        drop_with_fault_sim: fault-simulate a random fill of each new cube and
            drop the other faults it detects (the standard ATPG flow).  When
            disabled every target fault gets its own cube.
        seed: seed for the random fill used during dropping.
        jobs: worker processes for cube generation; ``None`` fans out only
            under the sharded or cluster backends (resolving through
            ``REPRO_JOBS``), ``1`` forces a serial run.  Results are
            bit-identical for every value and every cluster transport.
        backend: simulation backend for PODEM and the dropping fault sim
            (registry default when omitted).
        atpg_mode: PODEM implication implementation (``"auto"`` / ``"dict"``
            / ``"compiled"``); ``None`` resolves through ``REPRO_ATPG_MODE``
            and the backend preference.
        drop_fault_mode: grading mode for the dropping fault simulator.
            Each drop sweep grades **one** filled cube against the whole
            remaining fault list — the many-faults/few-patterns shape — so
            under the default ``None`` (env / ``auto``) the packed backends
            collapse this historical one-fault-at-a-time tail with the
            fault-parallel kernel (``"faults"``,
            :func:`~repro.engine.fault.packed_first_detects_faults`).
            Forcing ``"lanes"`` restores the per-fault sweep; results are
            bit-identical either way (the benchmark's PODEM A/B relies on
            that).

    Returns:
        An :class:`ATPGResult` whose ``cubes`` are in generation order.
    """
    faults = collapse_faults(circuit)
    if max_faults is not None and len(faults) > max_faults:
        stride = len(faults) / max_faults
        faults = [faults[int(i * stride)] for i in range(max_faults)]

    engine = PodemEngine(
        circuit, backtrack_limit=backtrack_limit, backend=backend, mode=atpg_mode
    )
    simulator = (
        FaultSimulator(circuit, backend=backend, fault_mode=drop_fault_mode)
        if drop_with_fault_sim
        else None
    )
    scheduler = _podem_scheduler(engine, faults, jobs)
    rng = np.random.default_rng(seed)

    result = ATPGResult(
        cubes=TestSet([]),
        circuit_name=circuit.name,
        total_faults=len(faults),
    )
    cube_list: List[TestCube] = []
    remaining: Dict[StuckAtFault, None] = dict.fromkeys(faults)
    index_of = {fault: index for index, fault in enumerate(faults)}

    for index, fault in enumerate(faults):
        if fault not in remaining:
            continue
        if max_patterns is not None and len(cube_list) >= max_patterns:
            break
        if scheduler is not None:
            podem = engine.result_from_raw(fault, scheduler.fetch(index))
        else:
            podem = engine.generate(fault)
        if podem.status == "untestable":
            result.untestable_faults.append(fault)
            remaining.pop(fault, None)
            continue
        if podem.status == "aborted":
            result.aborted_faults.append(fault)
            remaining.pop(fault, None)
            continue

        cube = podem.cube
        cube_index = len(cube_list)
        cube_list.append(cube)
        result.detected_faults[fault] = cube_index
        remaining.pop(fault, None)

        if simulator is not None and remaining:
            filled = _random_fill(cube, rng)
            batch = TestSet.from_matrix(filled.reshape(1, -1))
            sim = simulator.run(batch, list(remaining.keys()))
            for dropped in sim.detected:
                result.detected_faults[dropped] = cube_index
                remaining.pop(dropped, None)
                if scheduler is not None:
                    scheduler.drop(index_of[dropped])

    result.cubes = TestSet(cube_list) if cube_list else TestSet([])
    return result
