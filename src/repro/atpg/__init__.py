"""ATPG substrate: stuck-at faults, PODEM test generation and fault simulation.

The paper obtains its test cubes from a commercial ATPG tool (TetraMax).
This package is the offline stand-in: it enumerates single stuck-at faults
over the full-scan combinational view of a circuit, collapses equivalent
faults, generates a partially specified test cube per fault with a PODEM
implementation, and fault-simulates candidate patterns (with fault dropping)
to measure coverage.  The important property for the reproduction is that
PODEM leaves unconstrained test pins as X — that is exactly where the
don't-care-dominated cube sets of Table I come from.
"""

from repro.atpg.collapse import collapse_faults
from repro.atpg.fault_sim import FaultSimulationResult, FaultSimulator
from repro.atpg.faults import StuckAtFault, full_fault_list
from repro.atpg.podem import DictPodemEngine, PodemResult, PodemEngine
from repro.atpg.tpg import ATPGResult, generate_test_cubes

__all__ = [
    "StuckAtFault",
    "full_fault_list",
    "collapse_faults",
    "FaultSimulator",
    "FaultSimulationResult",
    "DictPodemEngine",
    "PodemEngine",
    "PodemResult",
    "ATPGResult",
    "generate_test_cubes",
]
