"""PODEM automatic test pattern generation.

PODEM (Path-Oriented DEcision Making) searches the space of *primary input*
assignments only: it picks an objective (activate the fault, then propagate
its effect), backtraces the objective to a test-pin assignment, implies the
consequences by three-valued simulation of a good and a faulty machine, and
backtracks on conflicts.  Unassigned pins stay X, which is what produces the
don't-care-rich cubes the DP-fill paper exploits.

Two implication implementations share the search algorithm:

* :class:`DictPodemEngine` — the original clarity-first reference: each
  implication step re-simulates the whole combinational circuit in
  topological order through per-net dictionaries and scalar
  ``evaluate_ternary`` calls (``O(decisions x gates)`` per fault).  It stays
  registered as the parity oracle of the compiled engine.
* :class:`~repro.engine.ternary.CompiledTernaryPodem` — incremental
  two-plane ternary implication over the compiled array program: each
  decision re-evaluates only the changed pin's fanout cone.  Bit-identical
  cubes, classification and decision/backtrack counters, several times
  faster (see ``BENCH_engine.json``).

:class:`PodemEngine` is the facade everything else uses; it resolves the
implementation through the simulation-backend registry (the ``naive``
backend prefers the dict reference, every compiled backend the ternary
engine) and the ``REPRO_ATPG_MODE`` environment variable forces either one
process-wide.

Generation is only half the ATPG hot path: after each cube the driver
(:func:`~repro.atpg.tpg.generate_test_cubes`) fault-simulates a random fill
of it against every remaining fault to drop collateral detections.  That
post-generation verification sweep grades one pattern against many faults,
which the packed engine now serves with the fault-parallel fault-word
kernel (:func:`~repro.engine.fault.packed_first_detects_faults`) rather
than a per-fault loop — see the driver docs for the A/B knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.atpg.faults import StuckAtFault
from repro.circuit.gates import GateType, controlling_value, evaluate_ternary, inversion_parity
from repro.circuit.netlist import Circuit
from repro.cubes.bits import ONE, X, ZERO
from repro.cubes.cube import TestCube
from repro.engine.backend import SimulationBackend, get_backend
from repro.engine.compile import compile_circuit
from repro.engine.ternary import CompiledTernaryPodem, RawPodemResult, resolve_atpg_mode
from repro.obs import recorder as obs


@dataclass
class PodemResult:
    """Outcome of running PODEM on one fault.

    Attributes:
        fault: the target fault.
        status: ``"detected"`` (cube found), ``"untestable"`` (search space
            exhausted — the fault is redundant), or ``"aborted"`` (backtrack
            limit hit).
        cube: the generated test cube (``None`` unless detected).  Pin order
            follows :attr:`Circuit.combinational_inputs`.
        backtracks: number of backtracks performed.
        decisions: number of pin assignments tried.
    """

    fault: StuckAtFault
    status: str
    cube: Optional[TestCube]
    backtracks: int
    decisions: int

    @property
    def detected(self) -> bool:
        """``True`` when a test cube was found."""
        return self.status == "detected"


def _flush_podem_telemetry(result: PodemResult) -> None:
    """Fold one PODEM outcome into the ``podem.*`` obs counters.

    Counters are recorded at the *consumption* point — where a result is
    handed to the caller — never inside the search itself.  Distributed
    schedulers prefetch speculatively (a dropped fault may run in a worker
    yet never be fetched) and stale-lease retries can execute a task twice;
    counting consumed results keeps ``podem.*`` exactly equal across the
    single-process, sharded and cluster paths, because all of them consume
    the same bit-identical per-fault results exactly once.
    """
    if not obs.enabled():
        return
    obs.add_counters(
        {
            "podem.faults": 1,
            "podem.backtracks": result.backtracks,
            "podem.decisions": result.decisions,
            f"podem.status.{result.status}": 1,
        }
    )


class DictPodemEngine:
    """Reference PODEM engine: full dict-walking re-implication per decision.

    Args:
        circuit: circuit under test (full-scan combinational view).
        backtrack_limit: abort threshold; hard-to-detect or redundant faults
            give up after this many backtracks.
    """

    def __init__(self, circuit: Circuit, backtrack_limit: int = 100) -> None:
        circuit.validate()
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self._order = circuit.topological_order()
        self._pins = circuit.combinational_inputs
        self._pin_set = set(self._pins)
        self._outputs = circuit.combinational_outputs
        self._output_set = set(self._outputs)
        self._fanout = circuit.fanout_map()
        self._levels = circuit.levelize()

    # -- simulation ------------------------------------------------------------
    def _imply(
        self, assignment: Dict[str, int], fault: StuckAtFault
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Three-valued simulation of the good and faulty machines."""
        good: Dict[str, int] = {}
        faulty: Dict[str, int] = {}
        for pin in self._pins:
            value = assignment.get(pin, X)
            good[pin] = value
            faulty[pin] = value
        if fault.net in self._pin_set:
            faulty[fault.net] = fault.stuck_value
        for name in self._order:
            gate = self.circuit.get_gate(name)
            if gate.gate_type is GateType.CONST0:
                good_value, faulty_value = ZERO, ZERO
            elif gate.gate_type is GateType.CONST1:
                good_value, faulty_value = ONE, ONE
            else:
                good_value = evaluate_ternary(gate.gate_type, [good[n] for n in gate.inputs])
                faulty_value = evaluate_ternary(gate.gate_type, [faulty[n] for n in gate.inputs])
            good[name] = good_value
            faulty[name] = faulty_value if name != fault.net else fault.stuck_value
        return good, faulty

    # -- analysis helpers ------------------------------------------------------------
    @staticmethod
    def _has_d(good: Dict[str, int], faulty: Dict[str, int], net: str) -> bool:
        g, f = good[net], faulty[net]
        return g != X and f != X and g != f

    def _detected(self, good: Dict[str, int], faulty: Dict[str, int]) -> bool:
        return any(self._has_d(good, faulty, net) for net in self._outputs)

    def _d_frontier(self, good: Dict[str, int], faulty: Dict[str, int]) -> List[str]:
        frontier: List[str] = []
        for name in self._order:
            gate = self.circuit.get_gate(name)
            if gate.gate_type.is_source:
                continue
            if self._has_d(good, faulty, name):
                continue
            if good[name] != X and faulty[name] != X:
                continue
            if any(self._has_d(good, faulty, net) for net in gate.inputs):
                frontier.append(name)
        return frontier

    def _x_path_exists(self, start: str, good: Dict[str, int], faulty: Dict[str, int]) -> bool:
        """Is there a path of still-undetermined nets from ``start`` to an output?"""
        if start in self._output_set:
            return True
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for reader in self._fanout.get(current, []):
                gate = self.circuit.get_gate(reader)
                if gate.gate_type.is_sequential:
                    # Flip-flop data inputs are observable; reaching the net
                    # feeding one is reaching an output (handled below via
                    # the output-set check on `current`).
                    continue
                if reader in seen:
                    continue
                if good[reader] != X and faulty[reader] != X and not self._has_d(good, faulty, reader):
                    continue
                if reader in self._output_set:
                    return True
                seen.add(reader)
                stack.append(reader)
            if current in self._output_set:
                return True
        return False

    # -- objective and backtrace ------------------------------------------------------
    def _choose_objective(
        self,
        fault: StuckAtFault,
        good: Dict[str, int],
        faulty: Dict[str, int],
    ) -> Optional[Tuple[str, int]]:
        """Return the next (net, value) objective, or None if the branch is dead."""
        site_value = good[fault.net]
        if site_value == X:
            return fault.net, fault.activation_value
        if site_value == fault.stuck_value:
            return None  # fault cannot be excited under the current assignment
        frontier = self._d_frontier(good, faulty)
        if not frontier:
            return None
        # Prefer the frontier gate closest to an observable output (shallowest
        # remaining propagation path): highest level is a decent proxy.
        frontier.sort(key=lambda name: self._levels.get(name, 0), reverse=True)
        for name in frontier:
            if not self._x_path_exists(name, good, faulty):
                continue
            gate = self.circuit.get_gate(name)
            for net in gate.inputs:
                if good[net] == X:
                    try:
                        value = ONE - controlling_value(gate.gate_type)
                    except ValueError:
                        value = ONE  # XOR-like gates: any definite value helps
                    return net, value
        return None

    def _backtrace(
        self, net: str, value: int, good: Dict[str, int]
    ) -> Optional[Tuple[str, int]]:
        """Walk an objective back to an unassigned test pin."""
        current, target = net, value
        guard = 0
        while current not in self._pin_set:
            guard += 1
            if guard > len(self._order) + len(self._pins) + 1:
                return None
            gate = self.circuit.get_gate(current)
            if gate.gate_type.is_source:
                return None
            target = target ^ inversion_parity(gate.gate_type)
            chosen = None
            for candidate in gate.inputs:
                if good[candidate] == X:
                    chosen = candidate
                    break
            if chosen is None:
                return None
            current = chosen
        if good[current] != X:
            return None
        return current, target

    # -- main search --------------------------------------------------------------------
    def generate(self, fault: StuckAtFault) -> PodemResult:
        """Search for a test cube detecting ``fault``."""
        assignment: Dict[str, int] = {}
        decisions: List[List] = []  # [pin, value, exhausted]
        backtracks = 0
        total_decisions = 0

        while True:
            good, faulty = self._imply(assignment, fault)
            if self._detected(good, faulty):
                cube = self._cube_from_assignment(assignment, fault)
                return PodemResult(fault, "detected", cube, backtracks, total_decisions)

            objective = self._choose_objective(fault, good, faulty)
            next_assignment: Optional[Tuple[str, int]] = None
            if objective is not None:
                next_assignment = self._backtrace(objective[0], objective[1], good)

            if next_assignment is None:
                # Dead branch: undo decisions until one still has an untried value.
                while decisions and decisions[-1][2]:
                    pin, __, __ = decisions.pop()
                    assignment.pop(pin, None)
                if not decisions:
                    return PodemResult(fault, "untestable", None, backtracks, total_decisions)
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return PodemResult(fault, "aborted", None, backtracks, total_decisions)
                decisions[-1][1] ^= 1
                decisions[-1][2] = True
                assignment[decisions[-1][0]] = decisions[-1][1]
                continue

            pin, value = next_assignment
            assignment[pin] = value
            decisions.append([pin, value, False])
            total_decisions += 1

    def _cube_from_assignment(self, assignment: Dict[str, int], fault: StuckAtFault) -> TestCube:
        bits = [assignment.get(pin, X) for pin in self._pins]
        return TestCube(bits, name=fault.name)


class PodemEngine:
    """Reusable PODEM engine for one circuit (implementation facade).

    The implication implementation is resolved like the simulation backends:
    an explicit ``mode`` wins, then the ``REPRO_ATPG_MODE`` environment
    variable, then the resolved backend's preference (``naive`` keeps the
    dict reference, the compiled backends use the ternary array engine).
    Either way the results — cubes, classification, counters — are
    bit-identical; only the speed differs.

    Args:
        circuit: circuit under test (full-scan combinational view).
        backtrack_limit: abort threshold per fault.
        backend: backend name or instance (registry default when omitted).
        mode: ``"auto"`` / ``"dict"`` / ``"compiled"``; ``None`` resolves
            through :func:`~repro.engine.ternary.resolve_atpg_mode`.
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 100,
        backend: Union[str, SimulationBackend, None] = None,
        mode: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.backend = get_backend(backend)
        resolved = resolve_atpg_mode(mode)
        if resolved == "auto":
            resolved = getattr(self.backend, "atpg_mode", "compiled")
        self.implementation = resolved
        if resolved == "compiled":
            compiled_program = getattr(self.backend, "compiled_program", None)
            self.program = (
                compiled_program(circuit) if compiled_program else compile_circuit(circuit)
            )
            self._impl = CompiledTernaryPodem(self.program, backtrack_limit=backtrack_limit)
        else:
            self.program = None
            self._impl = DictPodemEngine(circuit, backtrack_limit=backtrack_limit)

    def generate(self, fault: StuckAtFault) -> PodemResult:
        """Search for a test cube detecting ``fault``."""
        if self.implementation == "dict":
            with obs.span(f"atpg/{self.circuit.name}/podem"):
                result = self._impl.generate(fault)
            _flush_podem_telemetry(result)
            return result
        site_row = self.program.net_index[fault.net]
        with obs.span(f"atpg/{self.circuit.name}/podem"):
            raw = self._impl.run(site_row, fault.stuck_value)
        return self.result_from_raw(fault, raw)

    def result_from_raw(self, fault: StuckAtFault, raw: RawPodemResult) -> PodemResult:
        """Wrap a raw compiled-engine result (e.g. from a pool worker)."""
        status, bits, backtracks, decisions = raw
        cube = TestCube(list(bits), name=fault.name) if status == "detected" else None
        result = PodemResult(fault, status, cube, backtracks, decisions)
        _flush_podem_telemetry(result)
        return result
