"""Circuit compilation: from a :class:`Circuit` to a flat array program.

The naive simulators walk gate objects and per-net dictionaries on every
evaluation.  This module compiles a validated circuit **once** into a flat,
levelised program over integer *rows*:

* every net gets a row in a dense value table — test pins (primary inputs
  followed by flip-flop outputs) occupy rows ``0 .. n_inputs-1``, then every
  combinational gate output in topological order;
* every evaluated gate becomes a *node*: an integer opcode, a CSR-style
  fan-in slice (``fanin_ptr`` / ``fanin_idx``) of source rows, and the row it
  writes;
* nodes carry their logic level, and nodes of the same ``(level, opcode,
  arity)`` are pre-grouped so a vectorised evaluator can process a whole
  group with one NumPy call;
* a fan-out map (``reader_lists``: row -> node positions reading it) records
  which nodes read every row — the basis for the cone-restricted fault
  simulator.

Nothing here evaluates anything: the compiled program is consumed by
:mod:`repro.engine.packed` (bit-parallel logic simulation) and
:mod:`repro.engine.fault` (fault simulation).  The design follows the
compile-once / run-tight-loops idiom of optimisation modelling libraries:
simulation never touches gate objects or name dictionaries again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit

# Integer opcodes of the compiled program.  The order groups the "natural"
# function with its inverted twin so ``op | 1`` tests for inversion cheaply.
OP_BUF = 0
OP_NOT = 1
OP_AND = 2
OP_NAND = 3
OP_OR = 4
OP_NOR = 5
OP_XOR = 6
OP_XNOR = 7
OP_CONST0 = 8
OP_CONST1 = 9

_OPCODE_OF: Dict[GateType, int] = {
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_NOT,
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
}

#: Opcodes whose result is the complement of the accumulated reduction.
INVERTING_OPS = frozenset((OP_NOT, OP_NAND, OP_NOR, OP_XNOR))


@dataclass(frozen=True)
class LevelGroup:
    """Nodes of one ``(level, opcode, arity)`` class, for vectorised evaluation.

    Attributes:
        level: logic level shared by every node in the group.
        op: shared opcode.
        out_rows: value-table rows the group writes, shape ``(n,)``.
        in_rows: source rows, shape ``(n, arity)`` (empty for constants).
    """

    level: int
    op: int
    out_rows: np.ndarray
    in_rows: np.ndarray


@dataclass(frozen=True)
class Cone:
    """The downstream combinational cone of one fault site.

    ``positions`` indexes :attr:`CompiledCircuit.node_prog` in topological
    order (node positions are topological by construction, so a plain sort
    suffices); ``detect_rows`` are the observable rows whose faulty value
    must be compared against the good machine (cone outputs that are
    observable).  ``site_observable`` flags whether the fault site itself is
    observable.
    """

    positions: Tuple[int, ...]
    detect_rows: Tuple[int, ...]
    site_observable: bool


@dataclass
class CompiledCircuit:
    """A circuit lowered to flat arrays (see the module docstring).

    Attributes:
        name: source circuit name.
        net_names: row index -> net name (test pins first, then topo order).
        net_index: net name -> row index.
        n_inputs: number of test-pin rows (they are rows ``0..n_inputs-1``).
        node_ops / node_out / node_level: per-node opcode, output row, level
            — the canonical flat-array form of the program (compact,
            picklable; what a future sharded backend would ship to workers).
        fanin_ptr / fanin_idx: CSR fan-in rows per node (same canonical form).
        output_rows: rows of the observable outputs, in
            :attr:`Circuit.combinational_outputs` order (may repeat).
        groups: level/op/arity node groups in evaluation order.
    """

    name: str
    net_names: List[str]
    net_index: Dict[str, int]
    n_inputs: int
    node_ops: np.ndarray
    node_out: np.ndarray
    node_level: np.ndarray
    fanin_ptr: np.ndarray
    fanin_idx: np.ndarray
    output_rows: np.ndarray
    groups: List[LevelGroup]
    # Plain-python mirrors of the arrays above, used by the hot loops: the
    # lane evaluator iterates ``node_prog`` (scalar indexing of python lists
    # beats numpy scalar indexing by ~10x), the cone BFS walks
    # ``reader_lists`` (row -> node positions reading that row), and the
    # ternary PODEM engine uses ``node_levels`` (per-node logic level, for
    # D-frontier ranking) and ``out_node`` (row -> driving node position,
    # ``-1`` for test-pin rows, for objective backtracing).
    node_prog: List[Tuple[int, int, Tuple[int, ...]]] = field(default_factory=list)
    reader_lists: List[List[int]] = field(default_factory=list)
    node_levels: List[int] = field(default_factory=list)
    out_node: List[int] = field(default_factory=list)
    _observable_set: frozenset = frozenset()
    _cone_cache: Dict[int, Cone] = field(default_factory=dict)

    @property
    def n_nets(self) -> int:
        """Total number of value-table rows."""
        return len(self.net_names)

    @property
    def n_nodes(self) -> int:
        """Number of evaluated (combinational) nodes."""
        return int(self.node_ops.shape[0])

    def row_of(self, net: str) -> Optional[int]:
        """Row of ``net``, or ``None`` for unknown nets."""
        return self.net_index.get(net)

    # -- cones ------------------------------------------------------------
    def cone(self, row: int) -> Cone:
        """Downstream cone of the net at ``row`` (cached per compiled circuit).

        The cone holds every combinational node transitively reading ``row``
        (propagation stops at flip-flops, whose data-input nets are already
        observable rows), in topological order.
        """
        cached = self._cone_cache.get(row)
        if cached is not None:
            return cached
        readers = self.reader_lists
        node_prog = self.node_prog
        seen: set = set()
        seen_add = seen.add
        stack = readers[row][:]
        while stack:
            pos = stack.pop()
            if pos in seen:
                continue
            seen_add(pos)
            stack.extend(readers[node_prog[pos][1]])
        positions = tuple(sorted(seen))
        observable = self._observable_set
        detect_rows = tuple(
            out
            for out in (node_prog[pos][1] for pos in positions)
            if out in observable
        )
        cone = Cone(
            positions=positions,
            detect_rows=detect_rows,
            site_observable=row in observable,
        )
        self._cone_cache[row] = cone
        return cone


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile a validated circuit into a :class:`CompiledCircuit`.

    The compilation order matches :class:`~repro.circuit.simulator.LogicSimulator`
    exactly — test pins first, then :meth:`Circuit.topological_order` — so
    value tables produced from the compiled program are row-compatible with
    the naive simulator's net dictionary (same nets, same order).
    """
    circuit.validate()
    inputs = circuit.combinational_inputs
    order = circuit.topological_order()
    levels = circuit.levelize()

    net_names: List[str] = list(inputs) + list(order)
    net_index: Dict[str, int] = {net: row for row, net in enumerate(net_names)}
    n_inputs = len(inputs)

    n_nodes = len(order)
    node_ops = np.zeros(n_nodes, dtype=np.int32)
    node_out = np.zeros(n_nodes, dtype=np.int32)
    node_level = np.zeros(n_nodes, dtype=np.int32)
    fanin_ptr = np.zeros(n_nodes + 1, dtype=np.int32)
    fanin_rows: List[int] = []

    for pos, name in enumerate(order):
        gate = circuit.get_gate(name)
        op = _OPCODE_OF.get(gate.gate_type)
        if op is None:  # pragma: no cover - Circuit.validate forbids this
            raise ValueError(f"cannot compile gate type {gate.gate_type}")
        src = tuple(net_index[net] for net in gate.inputs)
        node_ops[pos] = op
        node_out[pos] = net_index[name]
        node_level[pos] = levels.get(name, 0)
        fanin_ptr[pos + 1] = fanin_ptr[pos] + len(src)
        fanin_rows.extend(src)

    fanin_idx = np.asarray(fanin_rows, dtype=np.int32)
    # The python mirror is *derived* from the canonical arrays so the two
    # program representations cannot drift apart.
    node_prog: List[Tuple[int, int, Tuple[int, ...]]] = [
        (
            int(node_ops[pos]),
            int(node_out[pos]),
            tuple(int(row) for row in fanin_idx[fanin_ptr[pos] : fanin_ptr[pos + 1]]),
        )
        for pos in range(n_nodes)
    ]
    output_rows = np.asarray(
        [net_index[net] for net in circuit.combinational_outputs], dtype=np.int32
    )
    node_levels = [int(node_level[pos]) for pos in range(n_nodes)]
    out_node = [-1] * len(net_names)
    for pos in range(n_nodes):
        out_node[int(node_out[pos])] = pos

    # Level/op/arity groups, in level order (ties broken deterministically).
    buckets: Dict[Tuple[int, int, int], List[int]] = {}
    for pos in range(n_nodes):
        key = (int(node_level[pos]), int(node_ops[pos]), len(node_prog[pos][2]))
        buckets.setdefault(key, []).append(pos)
    groups: List[LevelGroup] = []
    for (level, op, arity) in sorted(buckets):
        positions = buckets[(level, op, arity)]
        out_rows = node_out[positions]
        if arity:
            in_rows = np.asarray(
                [node_prog[pos][2] for pos in positions], dtype=np.int32
            )
        else:
            in_rows = np.zeros((len(positions), 0), dtype=np.int32)
        groups.append(LevelGroup(level=level, op=op, out_rows=out_rows, in_rows=in_rows))

    # Fan-out: row -> node positions reading it (combinational readers only;
    # flip-flops are not nodes, so cone propagation naturally stops there).
    reader_lists: List[List[int]] = [[] for _ in net_names]
    for pos, (_, _, src) in enumerate(node_prog):
        for row in src:
            reader_lists[row].append(pos)

    return CompiledCircuit(
        name=circuit.name,
        net_names=net_names,
        net_index=net_index,
        n_inputs=n_inputs,
        node_ops=node_ops,
        node_out=node_out,
        node_level=node_level,
        fanin_ptr=fanin_ptr,
        fanin_idx=fanin_idx,
        output_rows=output_rows,
        groups=groups,
        node_prog=node_prog,
        reader_lists=reader_lists,
        node_levels=node_levels,
        out_node=out_node,
        _observable_set=frozenset(int(r) for r in output_rows),
    )
