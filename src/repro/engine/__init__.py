"""Compiled bit-packed simulation engine with pluggable backends.

The engine compiles a :class:`~repro.circuit.netlist.Circuit` once into a
flat array program (:mod:`repro.engine.compile`), evaluates it bit-parallel
with 64 patterns per machine word (:mod:`repro.engine.packed`), and grades
fault lists with cone-restricted re-evaluation and real fault dropping
(:mod:`repro.engine.fault`).  :mod:`repro.engine.backend` exposes the
registry through which the ATPG, power and experiment layers pick an
implementation without changing their public APIs.
"""

from repro.engine.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND_NAME,
    NaiveBackend,
    PackedBackend,
    SimulationBackend,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.engine.compile import CompiledCircuit, compile_circuit
from repro.engine.fault import (
    DROP_BLOCK_PATTERNS,
    FAULT_MODE_ENV_VAR,
    FAULT_MODES,
    FAULT_WORD_LANES,
    FAULTS_MODE_MAX_PATTERNS,
    FAULTS_MODE_MIN_FAULTS,
    WORD_DROP_BLOCK_PATTERNS,
    FaultSimulationResult,
    NaiveFaultSimulator,
    PackedFaultSimulator,
    fault_lane_mask,
    fault_mode_uses_words,
    resolve_fault_mode,
    resolve_grading_kernel,
)
from repro.engine.packed import (
    LANE_MODE_MAX_PATTERNS,
    PackedLogicSimulator,
    pack_patterns,
    tail_mask,
    unpack_values,
)
from repro.engine.ternary import (
    ATPG_MODE_ENV_VAR,
    ATPG_MODES,
    CompiledTernaryPodem,
    resolve_atpg_mode,
)
from repro.engine.sharded import (
    JOBS_ENV_VAR,
    ShardedBackend,
    ShardedFaultSimulator,
    ShardedPodemScheduler,
    default_jobs,
    parse_jobs,
    resolve_jobs,
    set_default_jobs,
    shutdown_worker_pool,
    worker_pool,
)

__all__ = [
    "ATPG_MODE_ENV_VAR",
    "ATPG_MODES",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND_NAME",
    "DROP_BLOCK_PATTERNS",
    "FAULT_MODE_ENV_VAR",
    "FAULT_MODES",
    "FAULT_WORD_LANES",
    "FAULTS_MODE_MAX_PATTERNS",
    "FAULTS_MODE_MIN_FAULTS",
    "JOBS_ENV_VAR",
    "LANE_MODE_MAX_PATTERNS",
    "WORD_DROP_BLOCK_PATTERNS",
    "CompiledCircuit",
    "CompiledTernaryPodem",
    "FaultSimulationResult",
    "NaiveBackend",
    "NaiveFaultSimulator",
    "PackedBackend",
    "PackedFaultSimulator",
    "PackedLogicSimulator",
    "ShardedBackend",
    "ShardedFaultSimulator",
    "ShardedPodemScheduler",
    "SimulationBackend",
    "available_backends",
    "compile_circuit",
    "default_backend_name",
    "default_jobs",
    "fault_lane_mask",
    "fault_mode_uses_words",
    "get_backend",
    "pack_patterns",
    "parse_jobs",
    "register_backend",
    "resolve_atpg_mode",
    "resolve_fault_mode",
    "resolve_grading_kernel",
    "resolve_jobs",
    "set_default_backend",
    "set_default_jobs",
    "shutdown_worker_pool",
    "tail_mask",
    "unpack_values",
    "worker_pool",
]
