"""Bit-parallel (pattern-packed) logic simulation over a compiled program.

Patterns are packed 64 per ``uint64`` machine word: bit ``j`` of word ``w``
holds pattern ``w * 64 + j``, so one bitwise instruction evaluates a gate for
64 patterns at once.  :class:`PackedLogicSimulator` exposes the same surface
as :class:`repro.circuit.simulator.LogicSimulator` (``simulate`` /
``observe_outputs`` / ``gate_activity``) and is value-identical to it, which
the engine parity tests assert bit-for-bit.

Two execution strategies share the compiled program:

* ``"lanes"`` — each net's packed words are fused into one arbitrary-width
  python integer ("lane").  CPython big-int bitwise ops run in C over 30-bit
  limbs with ~100 ns dispatch, which beats NumPy's ~1 µs per-call overhead by
  an order of magnitude for the narrow pattern sets (tens to a few thousand
  patterns) ATPG grading uses.  This is the fault-simulation workhorse.
* ``"words"`` — a dense ``(n_nets, n_words)`` ``uint64`` table evaluated with
  vectorised NumPy bitwise ops over the pre-grouped ``(level, op, arity)``
  node classes.  Per-call overhead is amortised across every gate of a
  group, so this wins once pattern sets grow wide (SIMD over many words).

``mode="auto"`` (the default) picks lanes below
:data:`LANE_MODE_MAX_PATTERNS` and words above.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.simulator import check_pattern_matrix
from repro.cubes.cube import TestSet
from repro.engine.compile import (
    CompiledCircuit,
    INVERTING_OPS,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    compile_circuit,
)

#: ``mode="auto"`` switches from big-int lanes to the NumPy word table above
#: this many patterns (lanes win on dispatch overhead, words win on SIMD).
LANE_MODE_MAX_PATTERNS = 4096

WORD_BITS = 64

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def tail_mask(n_patterns: int) -> np.uint64:
    """Valid-bit mask for the last word of an ``n_patterns``-wide table.

    Bit ``j`` is set iff pattern ``(n_words - 1) * 64 + j`` exists; the mask
    is all ones when the pattern count fills its last word exactly.  Every
    word-table consumer ANDs the last word with this before interpreting its
    bits, so garbage produced there (inverting ops complement *all* 64 bits)
    can never be misread as pattern data.
    """
    remainder = n_patterns % WORD_BITS
    if remainder == 0:
        return _ALL_ONES
    return np.uint64((1 << remainder) - 1)


# -- packing ---------------------------------------------------------------
def pack_patterns(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(n_patterns, n_pins)`` bool matrix into uint64 words.

    Returns a ``(n_pins, n_words)`` ``uint64`` array with bit ``j`` of word
    ``w`` holding pattern ``w * 64 + j`` (little-endian bit order).
    """
    n_patterns, n_pins = matrix.shape
    n_words = (n_patterns + WORD_BITS - 1) // WORD_BITS
    packed_bytes = np.packbits(matrix.T, axis=1, bitorder="little")
    padded = np.zeros((n_pins, n_words * 8), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view("<u8")


def unpack_values(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Unpack a ``(rows, n_words)`` uint64 table to ``(rows, n_patterns)`` bool.

    Tail-safe by construction: unpacked column ``j`` is bit ``j % 64`` of
    word ``j // 64``, so the ``:n_patterns`` slice drops exactly the bits
    :func:`tail_mask` would zero — garbage beyond the pattern count never
    reaches the bool matrix, even from a table that escaped the producers'
    masking.
    """
    if words.size == 0:
        return np.zeros((words.shape[0], n_patterns), dtype=bool)
    as_bytes = np.ascontiguousarray(words.astype("<u8", copy=False)).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :n_patterns].astype(bool)


def pack_lanes(matrix: np.ndarray) -> List[int]:
    """Pack each column of a bool matrix into one python big-int lane.

    Bit ``j`` of lane ``p`` is pattern ``j`` of pin ``p`` — the same bit
    order as :func:`pack_patterns`, just without the 64-bit word seams.
    """
    packed_bytes = np.packbits(matrix.T, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed_bytes]


def lanes_to_matrix(lanes: Sequence[int], n_patterns: int) -> np.ndarray:
    """Expand big-int lanes back into a ``(len(lanes), n_patterns)`` bool matrix."""
    n_bytes = max((n_patterns + 7) // 8, 1)
    buffer = bytearray(len(lanes) * n_bytes)
    offset = 0
    for lane in lanes:
        buffer[offset : offset + n_bytes] = lane.to_bytes(n_bytes, "little")
        offset += n_bytes
    as_bytes = np.frombuffer(buffer, dtype=np.uint8).reshape(len(lanes), n_bytes)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :n_patterns].astype(bool)


# -- lane evaluation -------------------------------------------------------
def evaluate_lanes(
    program: CompiledCircuit, input_lanes: Sequence[int], mask: int
) -> List[int]:
    """Evaluate the compiled program over big-int lanes.

    Args:
        program: compiled circuit.
        input_lanes: one lane per test pin (rows ``0..n_inputs-1``).
        mask: ``(1 << n_patterns) - 1``; inverting ops XOR against it so no
            garbage bits ever exist beyond the pattern count.

    Returns:
        One lane per value-table row, in row order.
    """
    values: List[int] = [0] * program.n_nets
    values[: program.n_inputs] = list(input_lanes)
    for op, out, src in program.node_prog:
        if op == OP_AND or op == OP_NAND:
            acc = values[src[0]]
            for row in src[1:]:
                acc &= values[row]
            if op == OP_NAND:
                acc ^= mask
        elif op == OP_OR or op == OP_NOR:
            acc = values[src[0]]
            for row in src[1:]:
                acc |= values[row]
            if op == OP_NOR:
                acc ^= mask
        elif op == OP_XOR or op == OP_XNOR:
            acc = values[src[0]]
            for row in src[1:]:
                acc ^= values[row]
            if op == OP_XNOR:
                acc ^= mask
        elif op == OP_NOT:
            acc = values[src[0]] ^ mask
        elif op == OP_BUF:
            acc = values[src[0]]
        elif op == OP_CONST0:
            acc = 0
        else:  # OP_CONST1
            acc = mask
        values[out] = acc
    return values


# -- word-table evaluation -------------------------------------------------
def evaluate_words(
    program: CompiledCircuit,
    packed_inputs: np.ndarray,
    n_patterns: Optional[int] = None,
) -> np.ndarray:
    """Evaluate the compiled program over a uint64 word table.

    Args:
        program: compiled circuit.
        packed_inputs: ``(n_inputs, n_words)`` uint64 array from
            :func:`pack_patterns`.
        n_patterns: number of patterns the words hold; defaults to the full
            ``n_words * 64``.

    Returns:
        The full ``(n_nets, n_words)`` value table.  Bits beyond
        ``n_patterns`` in the last word are zeroed (:func:`tail_mask`), so
        the table is safe to diff or unpack without further masking.
    """
    n_words = packed_inputs.shape[1]
    table = np.zeros((program.n_nets, n_words), dtype=np.uint64)
    table[: program.n_inputs] = packed_inputs
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    for group in program.groups:
        op = group.op
        if op == OP_CONST0:
            continue  # table rows start zeroed
        if op == OP_CONST1:
            table[group.out_rows] = ones
            continue
        gathered = table[group.in_rows]  # (n_gates, arity, n_words)
        if op in (OP_AND, OP_NAND):
            result = np.bitwise_and.reduce(gathered, axis=1)
        elif op in (OP_OR, OP_NOR):
            result = np.bitwise_or.reduce(gathered, axis=1)
        elif op in (OP_XOR, OP_XNOR):
            result = np.bitwise_xor.reduce(gathered, axis=1)
        else:  # BUF / NOT
            result = gathered[:, 0]
        if op in INVERTING_OPS:
            result = ~result
        table[group.out_rows] = result
    if n_words and n_patterns is not None and n_patterns < n_words * WORD_BITS:
        table[:, -1] &= tail_mask(n_patterns)
    return table


class PackedLogicSimulator:
    """Bit-parallel two-valued simulator (drop-in for ``LogicSimulator``).

    Args:
        circuit: circuit to simulate; compiled once at construction.
        mode: ``"auto"`` (default), ``"lanes"`` or ``"words"`` — see the
            module docstring for the trade-off.
        program: reuse an already-compiled program for ``circuit`` (the
            packed backend shares one per circuit); compiled here if omitted.
    """

    def __init__(
        self,
        circuit: Circuit,
        mode: str = "auto",
        program: Optional[CompiledCircuit] = None,
    ) -> None:
        if mode not in ("auto", "lanes", "words"):
            raise ValueError(f"unknown packed mode {mode!r}")
        self.circuit = circuit
        self.mode = mode
        self.program = program if program is not None else compile_circuit(circuit)

    # -- internals ---------------------------------------------------------
    def _use_lanes(self, n_patterns: int) -> bool:
        if self.mode == "auto":
            return n_patterns <= LANE_MODE_MAX_PATTERNS
        return self.mode == "lanes"

    def _value_matrix(self, patterns: np.ndarray) -> np.ndarray:
        """Full ``(n_nets, n_patterns)`` bool value table for ``patterns``."""
        matrix = check_pattern_matrix(patterns, self.program.n_inputs)
        n_patterns = matrix.shape[0]
        if n_patterns == 0:
            return np.zeros((self.program.n_nets, 0), dtype=bool)
        if self._use_lanes(n_patterns):
            mask = (1 << n_patterns) - 1
            lanes = evaluate_lanes(self.program, pack_lanes(matrix), mask)
            return lanes_to_matrix(lanes, n_patterns)
        table = evaluate_words(self.program, pack_patterns(matrix), n_patterns)
        return unpack_values(table, n_patterns)

    # -- LogicSimulator-compatible surface ---------------------------------
    def simulate(self, patterns: np.ndarray) -> Dict[str, np.ndarray]:
        """Evaluate every net for every pattern (net name -> bool column).

        The returned columns are row views of one dense matrix (already
        contiguous); treat them as read-only.
        """
        values = self._value_matrix(patterns)
        return {net: values[row] for row, net in enumerate(self.program.net_names)}

    def simulate_test_set(self, patterns: TestSet) -> Dict[str, np.ndarray]:
        """Simulate a fully specified :class:`TestSet` (convenience wrapper)."""
        return self.simulate(patterns.matrix)

    def observe_outputs(self, patterns: np.ndarray) -> np.ndarray:
        """Observable responses, one row per pattern (see ``LogicSimulator``)."""
        values = self._value_matrix(patterns)
        return np.ascontiguousarray(values[self.program.output_rows].T)

    def gate_activity(self, patterns: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-net toggle indicators between consecutive patterns."""
        values = self._value_matrix(patterns)
        toggles = values[:, 1:] != values[:, :-1]
        return {net: toggles[row] for row, net in enumerate(self.program.net_names)}

    # -- engine-native fast path -------------------------------------------
    def net_value_matrix(self, patterns: np.ndarray) -> Tuple[List[str], np.ndarray]:
        """All net values as one matrix (``(names, (n_nets, n_patterns))``).

        The row order matches ``LogicSimulator``'s net dictionary order
        (test pins, then topological order), so downstream consumers — the
        switching-activity model in particular — get bit-identical inputs
        from either backend.
        """
        return list(self.program.net_names), self._value_matrix(patterns)
