"""Sharded multi-process fault simulation backend.

The packed engine made a single fault-simulation pass ~10x faster but still
runs on one core.  This module scales it *out*: the memoised
:class:`~repro.engine.compile.CompiledCircuit` — flat arrays and python
lists, cheap to pickle — is shipped to a lazily created, spawn-safe process
pool, and the fault-grading work is partitioned into dynamic chunks that the
pool load-balances across workers.

Two sharding strategies cover the two workload shapes:

* **fault-list chunks** (the default) — the collapsed fault list is split
  into consecutive chunks sized for ``jobs * chunks_per_worker`` outstanding
  work units; each worker grades its chunk over the full pattern set with
  PR 1's block-wise fault dropping intact.  Chunks are disjoint in faults,
  so the merge is a plain scatter.
* **pattern-block shards** — for few-faults/many-patterns shapes (e.g. ATPG
  grading a handful of faults against a large pattern set) the *pattern*
  axis is sharded instead, aligned to :data:`~repro.engine.fault.DROP_BLOCK_PATTERNS`
  boundaries.  Every shard grades all faults over its pattern range; the
  parent merges by taking the **minimum** detecting index per fault, which
  is order-independent and therefore deterministic regardless of worker
  scheduling.  Between chunk submissions the parent *broadcasts* already
  detected faults: a shard starting at pattern ``s`` skips any fault whose
  merged first-detect index is ``< s`` (such a shard could only contribute a
  later index, so skipping never changes the minimum) — this is block-wise
  fault dropping carried across shard boundaries.

Both strategies produce detection maps and first-detecting pattern indices
bit-identical to the ``packed`` and ``naive`` backends (the parity suite in
``tests/test_sharded.py`` asserts this), and both grade in either packed
fault mode: chunk tasks carry a ``fault_mode`` so workers grade on big-int
lanes or on the vectorised uint64 word table (wide pattern sets), resolved
once in the parent exactly like :class:`~repro.engine.fault.PackedFaultSimulator`
resolves it — see :func:`~repro.engine.fault.resolve_fault_mode`.  Work
counters in ``last_run_stats`` additionally expose ``chunks``, the sharding
``mode``, the packed ``fault_mode`` and ``shard_dropped_evaluations``
(faults skipped whole-shard by the broadcast).

The pool is created on first use, sized by (in decreasing precedence) the
explicit ``jobs`` argument, :func:`set_default_jobs`, the ``REPRO_JOBS``
environment variable, and ``os.cpu_count()``; it is shut down cleanly at
interpreter exit.  Whenever a pool cannot be used — ``jobs=1``, running
inside a pool worker already, spawn failure, workers that cannot import the
package — the simulator falls back to the in-process packed implementation,
so results never depend on the environment being pool-friendly.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import uuid
import weakref
from collections import OrderedDict, deque
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.simulator import check_pattern_matrix
from repro.cubes.cube import TestSet
from repro.engine.backend import PackedBackend, available_backends, register_backend
from repro.engine.compile import CompiledCircuit, compile_circuit
from repro.engine.fault import (
    DROP_BLOCK_PATTERNS,
    WORD_DROP_BLOCK_PATTERNS,
    FaultSimulationResult,
    PackedFaultSimulator,
    _assemble,
    _new_stats,
    _unique_faults,
    _validate_run,
    fault_mode_uses_words,
    packed_first_detects,
    packed_first_detects_words,
    resolve_fault_mode,
)
from repro.engine.packed import evaluate_lanes, evaluate_words, pack_lanes, pack_patterns
from repro.engine.ternary import CompiledTernaryPodem, RawPodemResult

#: Environment variable sizing the worker pool (``--jobs`` on the runner).
JOBS_ENV_VAR = "REPRO_JOBS"

#: Target number of work chunks per worker; >1 gives the pool slack to
#: load-balance chunks whose cones differ wildly in size.
CHUNKS_PER_WORKER = 4

#: Never make a fault chunk smaller than this (per-task overhead floor).
MIN_CHUNK_FAULTS = 8

#: Seconds to wait for the pool's import smoke test / one chunk result.
_PING_TIMEOUT = 30.0
_CHUNK_TIMEOUT = 600.0

_default_jobs: Optional[int] = None


def parse_jobs(value: object, source: str = "jobs") -> int:
    """Parse a worker count, rejecting anything but an integer >= 1.

    Worker counts reach the pool from several surfaces (``--jobs``,
    ``REPRO_JOBS``, python callers); validating here gives every one of them
    the same clear error instead of an opaque traceback deep inside pool
    construction (or a silent clamp hiding a typo like ``--jobs -4``).

    Args:
        value: the raw value (string or number).
        source: label naming the offending surface in the error message.

    Raises:
        ValueError: for non-integer or non-positive values.
    """
    try:
        jobs = int(str(value).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a positive integer, got {value!r}"
        ) from None
    if jobs < 1:
        raise ValueError(f"{source} must be a positive integer, got {value!r}")
    return jobs


def default_jobs() -> int:
    """Worker count used when none is requested explicitly."""
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    if env:
        return parse_jobs(env, source=JOBS_ENV_VAR)
    return os.cpu_count() or 1


def set_default_jobs(jobs: Optional[int]) -> Optional[int]:
    """Set (or with ``None`` clear) the process-wide default worker count.

    Returns:
        The previous override, so callers can restore it (the experiment
        runner's ``--jobs`` flag uses this exactly like ``--backend`` uses
        :func:`~repro.engine.backend.set_default_backend`).

    Raises:
        ValueError: for non-integer or non-positive counts.
    """
    global _default_jobs
    previous = _default_jobs
    _default_jobs = parse_jobs(jobs) if jobs is not None else None
    return previous


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count (explicit arg > default > env > cpu count).

    Raises:
        ValueError: for non-integer or non-positive explicit counts.
    """
    if jobs is not None:
        return parse_jobs(jobs)
    return default_jobs()


# -- worker pool -------------------------------------------------------------
_pool = None
_pool_jobs = 0
_pool_broken = False


def _ping() -> int:
    """Pool smoke test: proves workers can import this module."""
    return os.getpid()


def _package_src_dir() -> str:
    """Directory that must be on ``sys.path`` for workers to import repro."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _spawn_main_is_safe() -> bool:
    """Whether spawned children can re-import the parent's ``__main__``.

    Spawn re-runs the parent's main module in every worker; when that module
    has a ``__file__`` that is not a real path (``<stdin>``, interactive
    sessions), every worker dies on startup — detect that here instead of
    burning the ping timeout on a respawn loop.
    """
    import sys

    main_module = sys.modules.get("__main__")
    main_file = getattr(main_module, "__file__", None)
    return main_file is None or os.path.exists(main_file)


def worker_pool(jobs: int):
    """The shared spawn-context process pool, or ``None`` for inline mode.

    ``None`` is returned — and callers must fall back to in-process
    execution — when ``jobs <= 1``, when called from inside a pool worker
    (never nest pools), or when pool creation failed once already.
    """
    global _pool, _pool_jobs, _pool_broken
    jobs = max(1, int(jobs))
    if jobs <= 1 or _pool_broken:
        return None
    if multiprocessing.parent_process() is not None:
        return None
    if _pool is not None and _pool_jobs == jobs:
        return _pool
    if not _spawn_main_is_safe():
        return None
    shutdown_worker_pool()

    # Spawned children re-import this module from scratch; when the package
    # is only importable through the parent's sys.path (the usual
    # ``PYTHONPATH=src`` development setup), export that path to them.
    previous = os.environ.get("PYTHONPATH")
    src_dir = _package_src_dir()
    parts = previous.split(os.pathsep) if previous else []
    if src_dir not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_dir] + parts)
    pool = None
    try:
        pool = multiprocessing.get_context("spawn").Pool(processes=jobs)
        pool.apply_async(_ping).get(timeout=_PING_TIMEOUT)
    except Exception:
        _pool_broken = True
        if pool is not None:
            pool.terminate()
            pool.join()
        return None
    finally:
        if previous is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = previous
    _pool, _pool_jobs = pool, jobs
    return pool


def shutdown_worker_pool() -> None:
    """Terminate the shared pool (registered with :mod:`atexit`)."""
    global _pool, _pool_jobs
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_jobs = 0


def _discard_broken_pool() -> None:
    """Drop the pool after a task failure so the next run starts fresh."""
    global _pool_broken
    shutdown_worker_pool()
    _pool_broken = True


atexit.register(shutdown_worker_pool)


# -- program shipping --------------------------------------------------------
#: id(program) -> (weakref, key, pickled bytes); pickling a compiled program
#: happens once per program, the bytes ride along with every chunk task and
#: workers unpickle once per (worker, key).
_blob_cache: Dict[int, Tuple["weakref.ref", str, bytes]] = {}


def pickled_program(program: CompiledCircuit) -> Tuple[str, bytes]:
    """``(key, blob)`` for shipping ``program`` to workers (memoised)."""
    ident = id(program)
    entry = _blob_cache.get(ident)
    if entry is not None:
        ref, key, blob = entry
        if ref() is program:
            return key, blob
    key = f"{program.name}:{uuid.uuid4().hex}"
    blob = pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL)
    _blob_cache[ident] = (
        weakref.ref(program, lambda _ref, _ident=ident: _blob_cache.pop(_ident, None)),
        key,
        blob,
    )
    return key, blob


# -- worker side -------------------------------------------------------------
_WORKER_CACHE_LIMIT = 8
_worker_programs: "OrderedDict[str, CompiledCircuit]" = OrderedDict()
#: (program_key, patterns_key, fault_mode) -> good-machine lanes or word table.
_worker_good: "OrderedDict[Tuple[str, str, str], object]" = OrderedDict()


def _cache_put(cache: OrderedDict, key, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > _WORKER_CACHE_LIMIT:
        cache.popitem(last=False)


def _worker_program(key: str, blob: bytes) -> CompiledCircuit:
    program = _worker_programs.get(key)
    if program is None:
        program = pickle.loads(blob)
        _cache_put(_worker_programs, key, program)
    return program


def _worker_good_machine(
    program: CompiledCircuit,
    task: Dict[str, object],
) -> object:
    """The cached good machine for a task: big-int lanes or a uint64 table."""
    fault_mode = task["fault_mode"]
    cache_key = (task["program_key"], task["patterns_key"], fault_mode)
    good = _worker_good.get(cache_key)
    if good is None:
        n_patterns = task["n_patterns"]
        if fault_mode == "words":
            good = evaluate_words(program, task["input_words"], n_patterns)
        else:
            mask = (1 << n_patterns) - 1
            good = evaluate_lanes(program, list(task["input_lanes"]), mask)
        _cache_put(_worker_good, cache_key, good)
    return good


#: (program_key, backtrack_limit) -> reusable per-worker ternary PODEM engine.
_worker_podem: "OrderedDict[Tuple[str, int], CompiledTernaryPodem]" = OrderedDict()


def _podem_chunk(task: Dict[str, object]) -> List[RawPodemResult]:
    """Pool task: run compiled PODEM on one chunk of fault sites.

    The engine is cached per (program, backtrack limit); every ``run`` call
    rebuilds its per-fault state from the cached all-X baseline, so results
    are independent of how faults are chunked across workers.
    """
    program = _worker_program(task["program_key"], task["program_blob"])
    key = (task["program_key"], task["backtrack_limit"])
    engine = _worker_podem.get(key)
    if engine is None:
        engine = CompiledTernaryPodem(program, backtrack_limit=task["backtrack_limit"])
        _cache_put(_worker_podem, key, engine)
    return [
        engine.run(site, stuck)
        for site, stuck in zip(task["sites"], task["stuck_values"])
    ]


def _simulate_chunk(task: Dict[str, object]) -> Tuple[List[Optional[int]], Dict[str, int]]:
    """Pool task: grade one chunk of faults over one pattern range."""
    program = _worker_program(task["program_key"], task["program_blob"])
    good = _worker_good_machine(program, task)
    stats = _new_stats()
    first_detects = (
        packed_first_detects_words
        if task["fault_mode"] == "words"
        else packed_first_detects
    )
    first = first_detects(
        program,
        good,
        task["n_patterns"],
        task["sites"],
        task["stuck_values"],
        block_patterns=task["block_patterns"],
        drop_detected=task["drop_detected"],
        pattern_start=task["pattern_start"],
        pattern_stop=task["pattern_stop"],
        stats=stats,
    )
    return first, stats


# -- the simulator -----------------------------------------------------------
class ShardedFaultSimulator:
    """Multi-process fault simulator over the compiled program.

    Args:
        circuit: circuit under test (compiled here if no ``program`` given).
        jobs: worker count; ``None`` resolves through
            :func:`resolve_jobs` at run time.  ``1`` always runs inline.
        block_patterns: fault-dropping block size (also the pattern-shard
            alignment unit); defaults per fault mode like
            :class:`~repro.engine.fault.PackedFaultSimulator`.
        program: reuse an already-compiled program for ``circuit``.
        chunks_per_worker / min_chunk_faults: sharding knobs, mainly for
            tests; the defaults balance load without drowning small runs in
            per-task overhead.
        mode: packed fault-grading mode (``"auto"``/``"lanes"``/``"words"``)
            applied identically in every worker; ``None`` resolves through
            :func:`~repro.engine.fault.resolve_fault_mode`.
    """

    def __init__(
        self,
        circuit: Circuit,
        jobs: Optional[int] = None,
        block_patterns: Optional[int] = None,
        program: Optional[CompiledCircuit] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        min_chunk_faults: int = MIN_CHUNK_FAULTS,
        mode: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.jobs = jobs
        self.mode = resolve_fault_mode(mode)
        self.block_patterns = (
            max(1, int(block_patterns)) if block_patterns is not None else None
        )
        self.program = program if program is not None else compile_circuit(circuit)
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self.min_chunk_faults = max(1, int(min_chunk_faults))
        self._inline: Optional[PackedFaultSimulator] = None
        self.last_run_stats: Dict[str, object] = self._fresh_stats(1)

    @staticmethod
    def _fresh_stats(jobs: int) -> Dict[str, object]:
        stats: Dict[str, object] = _new_stats()
        stats.update(mode="inline", jobs=jobs, chunks=0, shard_dropped_evaluations=0)
        return stats

    def _block_patterns_for(self, use_words: bool) -> int:
        if self.block_patterns is not None:
            return self.block_patterns
        return WORD_DROP_BLOCK_PATTERNS if use_words else DROP_BLOCK_PATTERNS

    # -- planning ----------------------------------------------------------
    def _chunk_plan(
        self, jobs: int, n_faults: int, n_patterns: int, block_patterns: int
    ) -> Optional[Tuple[str, List[Tuple[int, int]]]]:
        """Pick a sharding strategy, or ``None`` when sharding cannot pay."""
        max_chunks = jobs * self.chunks_per_worker
        n_blocks = -(-n_patterns // block_patterns)
        if n_faults < 2 * self.min_chunk_faults:
            # Too few faults to split the fault axis; shard pattern blocks
            # instead when there are enough of them to go around.
            if n_faults and n_blocks >= 4:
                n_shards = min(max_chunks, n_blocks)
                blocks_per_shard = -(-n_blocks // n_shards)
                step = blocks_per_shard * block_patterns
                shards = [
                    (start, min(start + step, n_patterns))
                    for start in range(0, n_patterns, step)
                ]
                if len(shards) > 1:
                    return "pattern-shards", shards
            return None
        chunk = max(self.min_chunk_faults, -(-n_faults // max_chunks))
        chunks = [(lo, min(lo + chunk, n_faults)) for lo in range(0, n_faults, chunk)]
        if len(chunks) > 1:
            return "fault-chunks", chunks
        return None

    # -- execution ---------------------------------------------------------
    def _run_inline(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool,
        stats: Dict[str, object],
    ) -> FaultSimulationResult:
        if self._inline is None:
            self._inline = PackedFaultSimulator(
                self.circuit,
                block_patterns=self.block_patterns,
                program=self.program,
                mode=self.mode,
            )
        result = self._inline.run(patterns, faults, drop_detected=drop_detected)
        for key, value in self._inline.last_run_stats.items():
            stats[key] = value
        stats["mode"] = "inline"
        return result

    def _run_sharded(
        self,
        pool,
        mode: str,
        chunks: List[Tuple[int, int]],
        jobs: int,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool,
        stats: Dict[str, object],
        use_words: bool,
        block_patterns: int,
    ) -> FaultSimulationResult:
        program = self.program
        n_patterns = len(patterns)
        n_faults = len(faults)
        matrix = check_pattern_matrix(patterns.matrix, program.n_inputs)
        patterns_key = blake2b(
            matrix.tobytes() + repr(matrix.shape).encode(), digest_size=16
        ).hexdigest()
        program_key, program_blob = pickled_program(program)
        sites = [program.row_of(f.net) for f in faults]
        stuck_values = [1 if f.stuck_value else 0 for f in faults]
        first: List[Optional[int]] = [None] * n_faults
        stats["mode"] = mode
        stats["fault_mode"] = "words" if use_words else "lanes"

        base_task = {
            "program_key": program_key,
            "program_blob": program_blob,
            "patterns_key": patterns_key,
            "fault_mode": stats["fault_mode"],
            "n_patterns": n_patterns,
            "block_patterns": block_patterns,
            "drop_detected": drop_detected,
        }
        # Ship the packed inputs in whichever representation the workers will
        # grade on; every chunk of one run reuses a single cached good
        # machine per worker either way.
        if use_words:
            base_task["input_words"] = pack_patterns(matrix)
        else:
            base_task["input_lanes"] = pack_lanes(matrix)

        def submit(chunk: Tuple[int, int]):
            if mode == "fault-chunks":
                lo, hi = chunk
                positions = list(range(lo, hi))
                task = dict(
                    base_task,
                    sites=sites[lo:hi],
                    stuck_values=stuck_values[lo:hi],
                    pattern_start=0,
                    pattern_stop=n_patterns,
                )
            else:
                start, stop = chunk
                if drop_detected:
                    # Broadcast: skip faults already detected strictly before
                    # this shard's range — they could only re-detect later,
                    # which never changes the min-merge below.
                    positions = [
                        index
                        for index in range(n_faults)
                        if first[index] is None or first[index] >= start
                    ]
                else:
                    positions = list(range(n_faults))
                stats["shard_dropped_evaluations"] += n_faults - len(positions)
                if not positions:
                    return positions, None  # whole shard dropped: no task
                task = dict(
                    base_task,
                    sites=[sites[index] for index in positions],
                    stuck_values=[stuck_values[index] for index in positions],
                    pattern_start=start,
                    pattern_stop=stop,
                )
            stats["chunks"] += 1
            return positions, pool.apply_async(_simulate_chunk, (task,))

        max_inflight = jobs + 2
        inflight = deque()
        pending = deque(chunks)
        while pending or inflight:
            while pending and len(inflight) < max_inflight:
                positions, handle = submit(pending.popleft())
                if positions:
                    inflight.append((positions, handle))
            if not inflight:
                break  # every remaining shard was dropped whole
            positions, handle = inflight.popleft()
            chunk_first, chunk_stats = handle.get(timeout=_CHUNK_TIMEOUT)
            for index, found in zip(positions, chunk_first):
                if found is not None and (first[index] is None or found < first[index]):
                    first[index] = found
            for key in ("blocks", "cone_evaluations", "dropped_block_evaluations"):
                stats[key] += chunk_stats[key]
        return _assemble(faults, first, n_patterns)

    # -- public API --------------------------------------------------------
    def run(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults``.

        Results (detection map, first-detecting indices, fault order) are
        bit-identical to the ``packed`` and ``naive`` backends; only the
        execution strategy differs.
        """
        jobs = resolve_jobs(self.jobs)
        stats = self.last_run_stats = self._fresh_stats(jobs)
        early = _validate_run(patterns, self.program.n_inputs, faults)
        if early is not None:
            return early
        faults = _unique_faults(faults)
        n_patterns = len(patterns)
        use_words = fault_mode_uses_words(self.mode, n_patterns)
        block_patterns = self._block_patterns_for(use_words)
        plan = (
            self._chunk_plan(jobs, len(faults), n_patterns, block_patterns)
            if jobs > 1
            else None
        )
        pool = worker_pool(jobs) if plan is not None else None
        if pool is None:
            return self._run_inline(patterns, faults, drop_detected, stats)
        mode, chunks = plan
        try:
            return self._run_sharded(
                pool,
                mode,
                chunks,
                jobs,
                patterns,
                faults,
                drop_detected,
                stats,
                use_words,
                block_patterns,
            )
        except Exception:
            # A broken pool (dead workers, import failures, timeouts) must
            # never cost correctness: drop it and redo the run in process.
            _discard_broken_pool()
            return self._run_inline(patterns, faults, drop_detected, stats)


class ShardedPodemScheduler:
    """Prefetches per-fault compiled-PODEM results from the worker pool.

    The ATPG driver walks the collapsed fault list in order, dropping faults
    that earlier cubes already detect; per-fault PODEM runs are independent
    and deterministic, so they can be generated speculatively ahead of the
    merge.  The scheduler ships fault chunks to the shared pool, *broadcasts*
    drops between submissions (a chunk submitted after a fault was dropped
    simply omits it — exactly like the fault-sim chunk tasks skip detected
    faults), and hands results back strictly in fault-list order, so the
    driver's output is bit-identical to a serial run for any worker count.

    Whenever the pool cannot be used (``jobs=1``, nested workers, spawn
    failure, a worker dying mid-run) the scheduler degrades to running the
    same compiled engine inline, result for result.

    Args:
        program: compiled circuit shipped to workers (pickled once).
        sites: fault-site row per fault, in fault-list order.
        stuck_values: stuck value (0/1) per fault, aligned with ``sites``.
        backtrack_limit: PODEM abort threshold (applied identically in every
            worker and in the inline fallback).
        jobs: worker count; ``None`` resolves through :func:`resolve_jobs`.
        chunks_per_worker: chunk-sizing knob, as for fault simulation.
    """

    def __init__(
        self,
        program: CompiledCircuit,
        sites: Sequence[int],
        stuck_values: Sequence[int],
        backtrack_limit: int,
        jobs: Optional[int] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
    ) -> None:
        self.program = program
        self.sites = list(sites)
        self.stuck_values = [1 if value else 0 for value in stuck_values]
        self.backtrack_limit = int(backtrack_limit)
        self.jobs = resolve_jobs(jobs)
        self._engine: Optional[CompiledTernaryPodem] = None
        self._buffer: Dict[int, RawPodemResult] = {}
        self._dropped: set = set()
        self._inflight: deque = deque()
        self._pending: deque = deque()
        self.stats: Dict[str, object] = {
            "mode": "inline",
            "jobs": self.jobs,
            "chunks": 0,
            "dropped_submissions": 0,
        }
        n_faults = len(self.sites)
        self._pool = worker_pool(self.jobs) if n_faults > 1 else None
        if self._pool is None:
            return
        chunk = max(1, -(-n_faults // (self.jobs * max(1, int(chunks_per_worker)))))
        chunks = [(lo, min(lo + chunk, n_faults)) for lo in range(0, n_faults, chunk)]
        if len(chunks) <= 1:
            self._pool = None  # a single chunk gains nothing from shipping
            return
        self._pending = deque(chunks)
        self.stats["mode"] = "sharded"
        program_key, program_blob = pickled_program(program)
        self._base_task = {
            "program_key": program_key,
            "program_blob": program_blob,
            "backtrack_limit": self.backtrack_limit,
        }

    @property
    def pooled(self) -> bool:
        """Whether results are (still) coming from the worker pool."""
        return self._pool is not None

    def drop(self, index: int) -> None:
        """Broadcast that the fault at ``index`` no longer needs a cube."""
        self._dropped.add(index)

    def _run_inline(self, index: int) -> RawPodemResult:
        if self._engine is None:
            self._engine = CompiledTernaryPodem(
                self.program, backtrack_limit=self.backtrack_limit
            )
        return self._engine.run(self.sites[index], self.stuck_values[index])

    def _pump(self) -> None:
        """Submit pending chunks (minus dropped faults) and collect one result."""
        max_inflight = self.jobs + 1
        while self._pending and len(self._inflight) < max_inflight:
            lo, hi = self._pending.popleft()
            positions = [i for i in range(lo, hi) if i not in self._dropped]
            self.stats["dropped_submissions"] += (hi - lo) - len(positions)
            if not positions:
                continue
            task = dict(
                self._base_task,
                sites=[self.sites[i] for i in positions],
                stuck_values=[self.stuck_values[i] for i in positions],
            )
            self.stats["chunks"] += 1
            self._inflight.append((positions, self._pool.apply_async(_podem_chunk, (task,))))
        if not self._inflight:
            raise RuntimeError("PODEM scheduler has no pending work for the requested fault")
        positions, handle = self._inflight.popleft()
        for index, raw in zip(positions, handle.get(timeout=_CHUNK_TIMEOUT)):
            self._buffer[index] = raw

    def fetch(self, index: int) -> RawPodemResult:
        """The PODEM result for the fault at ``index`` (blocking).

        The driver fetches in increasing index order and never fetches a
        dropped fault, so the result is either buffered already or owed by a
        pending/in-flight chunk.  Any pool failure degrades to the inline
        engine for this and all later fetches — already-buffered results
        stay valid because per-fault runs are deterministic.
        """
        buffered = self._buffer.pop(index, None)
        if buffered is not None:
            return buffered
        if self._pool is None:
            return self._run_inline(index)
        try:
            while index not in self._buffer:
                self._pump()
            return self._buffer.pop(index)
        except Exception:
            _discard_broken_pool()
            self._pool = None
            self._inflight.clear()
            self._pending.clear()
            self.stats["mode"] = "inline"  # visible, like the fault-sim fallback
            return self._run_inline(index)


class ShardedBackend(PackedBackend):
    """Backend pairing the packed logic simulator with sharded fault grading.

    Logic simulation stays in process (it is one compiled pass — shipping it
    out would cost more than it saves); fault simulation fans out through
    :class:`ShardedFaultSimulator`.  The compiled-program memoisation is
    inherited from :class:`~repro.engine.backend.PackedBackend`, so parent
    and workers agree on a single program per circuit.
    """

    name = "sharded"

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__()
        self.jobs = jobs

    def fault_simulator(self, circuit: Circuit) -> ShardedFaultSimulator:
        return ShardedFaultSimulator(
            circuit, jobs=self.jobs, program=self.compiled_program(circuit)
        )


if "sharded" not in available_backends():
    register_backend(ShardedBackend())
