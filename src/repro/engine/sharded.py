"""Sharded multi-process fault simulation backend.

The packed engine made a single fault-simulation pass ~10x faster but still
runs on one core.  This module scales it *out*: the memoised
:class:`~repro.engine.compile.CompiledCircuit` — flat arrays and python
lists, cheap to pickle — is shipped to a lazily created, spawn-safe process
pool, and the fault-grading work is partitioned into dynamic chunks that the
pool load-balances across workers.

Since the cluster subsystem landed, this backend is the *mp-pinned* face of
the shared distributed-execution machinery: the sharding plan, task
encoding and deterministic merges live in :mod:`repro.cluster.protocol`,
the scheduling loop in :mod:`repro.cluster.fault_sim`, and this module
contributes the spawn-pool transport binding plus the ``"sharded"`` backend
registration.  The ``cluster`` backend runs the *same* plan over pluggable
transports (``REPRO_BACKEND=cluster``); results are bit-identical across
all of them.

Two sharding strategies cover the two workload shapes
(:func:`~repro.cluster.protocol.plan_chunks` picks one):

* **fault-list chunks** (the default) — the collapsed fault list is split
  into consecutive chunks; each worker grades its chunk over the full
  pattern set with PR 1's block-wise fault dropping intact.  Chunks are
  disjoint in faults, so the merge is a plain scatter.  Chunk sizes
  *adapt*: completed chunks report their ``cone_evaluations`` and
  subsequent chunks are sized to carry constant estimated work rather than
  constant fault count (:class:`~repro.cluster.protocol.AdaptiveChunker`;
  force the old equal-count plan with ``REPRO_CHUNK_PLAN=static``).
* **pattern-block shards** — for few-faults/many-patterns shapes the
  *pattern* axis is sharded instead, aligned to fault-dropping block
  boundaries.  Every shard grades all faults over its pattern range; the
  parent merges by taking the **minimum** detecting index per fault, which
  is order-independent and therefore deterministic regardless of worker
  scheduling.  Between chunk submissions the parent *broadcasts* already
  detected faults so later shards skip them whole.

Both strategies produce detection maps and first-detecting pattern indices
bit-identical to the ``packed`` and ``naive`` backends (the parity suite in
``tests/test_sharded.py`` asserts this), and both grade on any packed
kernel (big-int lanes, the vectorised uint64 word table, or the
fault-parallel fault-word kernel), resolved once in the parent from the
full run shape exactly like
:class:`~repro.engine.fault.PackedFaultSimulator` resolves it — chunks
never re-resolve, so chunking cannot change the kernel.

The pool lifecycle lives in :mod:`repro.engine.pool`: created on first use,
sized by ``jobs``/:func:`set_default_jobs`/``REPRO_JOBS``/``os.cpu_count()``,
shut down at interpreter exit.  Whenever a pool cannot be used — ``jobs=1``,
running inside a pool worker already, spawn failure, workers that cannot
import the package — the simulator falls back to the in-process packed
implementation, so results never depend on the environment being
pool-friendly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.cluster.atpg import ClusterPodemScheduler
from repro.cluster.fault_sim import ClusterFaultSimulator
from repro.cluster.protocol import (
    CHUNKS_PER_WORKER,
    MIN_CHUNK_FAULTS,
    pickled_program,
)
from repro.cluster.transport import MpTransport, TransportError
from repro.engine.backend import PackedBackend, available_backends, register_backend
from repro.engine.compile import CompiledCircuit
from repro.engine.pool import (
    JOBS_ENV_VAR,
    default_jobs,
    discard_broken_pool as _discard_broken_pool,
    parse_jobs,
    resolve_jobs,
    set_default_jobs,
    shutdown_worker_pool,
    worker_pool,
)

__all__ = [
    "CHUNKS_PER_WORKER",
    "JOBS_ENV_VAR",
    "MIN_CHUNK_FAULTS",
    "ShardedBackend",
    "ShardedFaultSimulator",
    "ShardedPodemScheduler",
    "default_jobs",
    "parse_jobs",
    "pickled_program",
    "resolve_jobs",
    "set_default_jobs",
    "shutdown_worker_pool",
    "worker_pool",
]

class ShardedFaultSimulator(ClusterFaultSimulator):
    """Multi-process fault simulator over the compiled program.

    The planning/scheduling/merging flow is inherited from
    :class:`~repro.cluster.fault_sim.ClusterFaultSimulator`; this subclass
    pins the transport to the shared spawn pool (resolved through this
    module's :func:`worker_pool`, which tests monkeypatch to force the
    inline path) and poisons that pool when a run fails, exactly like the
    PODEM scheduler pair.

    Args:
        circuit: circuit under test (compiled here if no ``program`` given).
        jobs: worker count; ``None`` resolves through
            :func:`resolve_jobs` at run time.  ``1`` always runs inline.
        block_patterns: fault-dropping block size (also the pattern-shard
            alignment unit); defaults per fault mode like
            :class:`~repro.engine.fault.PackedFaultSimulator`.
        program: reuse an already-compiled program for ``circuit``.
        chunks_per_worker / min_chunk_faults: sharding knobs, mainly for
            tests; the defaults balance load without drowning small runs in
            per-task overhead.
        mode: packed fault-grading mode (``"auto"``/``"lanes"``/``"words"``/
            ``"faults"``) applied identically in every worker; ``None``
            resolves through :func:`~repro.engine.fault.resolve_fault_mode`.
        chunk_plan: fault-chunk sizing — ``"adaptive"`` (default) sizes
            chunks from measured cone cost, ``"static"`` forces the fixed
            equal-count plan; ``None`` resolves through ``REPRO_CHUNK_PLAN``.
    """

    def __init__(
        self,
        circuit: Circuit,
        jobs: Optional[int] = None,
        block_patterns: Optional[int] = None,
        program: Optional[CompiledCircuit] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        min_chunk_faults: int = MIN_CHUNK_FAULTS,
        mode: Optional[str] = None,
        chunk_plan: Optional[str] = None,
    ) -> None:
        super().__init__(
            circuit,
            transport=None,
            jobs=jobs,
            block_patterns=block_patterns,
            program=program,
            chunks_per_worker=chunks_per_worker,
            min_chunk_faults=min_chunk_faults,
            mode=mode,
            chunk_plan=chunk_plan,
        )

    def _resolve_transport(self, jobs: int) -> MpTransport:
        pool = worker_pool(jobs)
        if pool is None:
            raise TransportError("worker pool unavailable (jobs<=1 or spawn failed)")
        return MpTransport(pool=pool, jobs=jobs)

    def _discard_failed(self, transport) -> None:
        # A broken pool (dead workers, import failures, timeouts) must
        # never cost correctness: drop it so the next run starts fresh.
        _discard_broken_pool()

    def _next_rung(self, current_name: str) -> None:
        # The sharded backend IS the mp rung: a broken pool falls straight
        # to inline, exactly as it did before the degradation ladder.
        return None


class ShardedPodemScheduler(ClusterPodemScheduler):
    """Prefetches per-fault compiled-PODEM results from the worker pool.

    The transport-generic scheduling — chunking, drop broadcasts between
    submissions, strict fault-order hand-back, inline degradation — lives
    in :class:`~repro.cluster.atpg.ClusterPodemScheduler`; this subclass
    pins the transport to the shared spawn pool (resolved through this
    module's :func:`worker_pool`, which tests monkeypatch to force the
    inline path) and poisons that pool on failure exactly like the fault
    simulator does.

    Args:
        program: compiled circuit shipped to workers (pickled once).
        sites: fault-site row per fault, in fault-list order.
        stuck_values: stuck value (0/1) per fault, aligned with ``sites``.
        backtrack_limit: PODEM abort threshold (applied identically in every
            worker and in the inline fallback).
        jobs: worker count; ``None`` resolves through :func:`resolve_jobs`.
        chunks_per_worker: chunk-sizing knob, as for fault simulation.
    """

    POOLED_MODE = "sharded"

    def __init__(
        self,
        program: CompiledCircuit,
        sites: Sequence[int],
        stuck_values: Sequence[int],
        backtrack_limit: int,
        jobs: Optional[int] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
    ) -> None:
        super().__init__(
            program,
            sites,
            stuck_values,
            backtrack_limit,
            jobs=jobs,
            chunks_per_worker=chunks_per_worker,
        )

    def _make_transport(self, jobs: int):
        pool = worker_pool(jobs)
        if pool is None:
            return None
        return MpTransport(pool=pool, jobs=jobs)

    def _failed(self) -> None:
        _discard_broken_pool()

    def _next_rung(self, current_name) -> None:
        # The sharded backend IS the mp rung: a broken pool falls straight
        # to inline, exactly as it did before the degradation ladder.
        return None


class ShardedBackend(PackedBackend):
    """Backend pairing the packed logic simulator with sharded fault grading.

    Logic simulation stays in process (it is one compiled pass — shipping it
    out would cost more than it saves); fault simulation fans out through
    :class:`ShardedFaultSimulator`.  The compiled-program memoisation is
    inherited from :class:`~repro.engine.backend.PackedBackend`, so parent
    and workers agree on a single program per circuit.
    """

    name = "sharded"

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__()
        self.jobs = jobs

    def fault_simulator(self, circuit: Circuit) -> ShardedFaultSimulator:
        return ShardedFaultSimulator(
            circuit, jobs=self.jobs, program=self.compiled_program(circuit)
        )


if "sharded" not in available_backends():
    register_backend(ShardedBackend())
