"""Simulation backend registry.

A *backend* bundles a logic-simulator and a fault-simulator factory under a
name.  Consumers (``FaultSimulator``, ``PowerEstimator``, the experiment
runner) resolve a backend by name through :func:`get_backend` instead of
hard-wiring a simulator class, so swapping the whole simulation substrate —
or registering a new one, e.g. a future multi-process sharded engine — is a
one-line change that leaves every public API untouched.

Resolution order for the backend name:

1. the explicit ``name`` argument (or a ready :class:`SimulationBackend`
   instance, passed through unchanged);
2. the process-wide default set with :func:`set_default_backend`
   (the experiment runner's ``--backend`` flag uses this);
3. the ``REPRO_BACKEND`` environment variable;
4. ``"packed"`` — the compiled bit-parallel engine.

The ``"naive"`` backend is the original dict-walking reference
implementation; it stays registered both as the parity oracle for the
engine tests and as an escape hatch (``REPRO_BACKEND=naive``).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Union

from repro import envvars
from repro.circuit.netlist import Circuit
from repro.circuit.simulator import LogicSimulator
from repro.engine.compile import CompiledCircuit, compile_circuit
from repro.engine.fault import NaiveFaultSimulator, PackedFaultSimulator
from repro.engine.packed import PackedLogicSimulator

#: Environment variable overriding the default backend name.
BACKEND_ENV_VAR = envvars.BACKEND.name

DEFAULT_BACKEND_NAME = "packed"


class SimulationBackend:
    """Factory pair for one simulation implementation.

    Subclasses set :attr:`name` and implement the two factories; instances
    are registered once and shared process-wide, so any state they keep must
    be a pure cache (idempotent and safe to share between callers).
    """

    name: str = "?"

    #: PODEM implication implementation the backend prefers when
    #: ``REPRO_ATPG_MODE`` is ``auto`` (see :mod:`repro.engine.ternary`):
    #: every compiled backend uses the ternary array engine, the naive
    #: backend keeps the dict reference as the oracle.
    atpg_mode: str = "compiled"

    def logic_simulator(self, circuit: Circuit):
        """Build a logic simulator (``simulate``/``observe_outputs``/... surface)."""
        raise NotImplementedError

    def fault_simulator(self, circuit: Circuit):
        """Build a fault simulator (``run(patterns, faults, drop_detected)``)."""
        raise NotImplementedError


class NaiveBackend(SimulationBackend):
    """The original pure-NumPy, dict-per-net reference implementation."""

    name = "naive"
    atpg_mode = "dict"

    def logic_simulator(self, circuit: Circuit) -> LogicSimulator:
        return LogicSimulator(circuit)

    def fault_simulator(self, circuit: Circuit) -> NaiveFaultSimulator:
        return NaiveFaultSimulator(circuit)


class PackedBackend(SimulationBackend):
    """Compiled bit-packed engine (64 patterns per machine word).

    Each circuit is compiled exactly once per process: the compiled program
    (and with it the fault-cone cache) is shared by every simulator built
    for that circuit.  The cache holds circuits weakly and is invalidated
    through :meth:`Circuit.structure_token`, so mutating a netlist after
    simulating it triggers a clean recompile instead of stale results.
    """

    name = "packed"

    def __init__(self) -> None:
        self._programs: "weakref.WeakKeyDictionary[Circuit, Tuple[object, CompiledCircuit]]" = (
            weakref.WeakKeyDictionary()
        )

    def compiled_program(self, circuit: Circuit) -> CompiledCircuit:
        """The process-wide compiled program for ``circuit`` (memoised)."""
        entry = self._programs.get(circuit)
        if entry is not None:
            token, program = entry
            if circuit.structure_token() is token:
                return program
        program = compile_circuit(circuit)
        self._programs[circuit] = (circuit.structure_token(), program)
        return program

    def logic_simulator(self, circuit: Circuit) -> PackedLogicSimulator:
        return PackedLogicSimulator(circuit, program=self.compiled_program(circuit))

    def fault_simulator(self, circuit: Circuit) -> PackedFaultSimulator:
        return PackedFaultSimulator(circuit, program=self.compiled_program(circuit))


_REGISTRY: Dict[str, SimulationBackend] = {}
_default_name: Optional[str] = None


def register_backend(backend: SimulationBackend, overwrite: bool = False) -> None:
    """Register a backend under ``backend.name``.

    Args:
        backend: the backend instance (must be stateless / reusable).
        overwrite: allow replacing an existing registration.

    Raises:
        ValueError: when the name is taken and ``overwrite`` is false.
    """
    if backend.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def default_backend_name() -> str:
    """The name used when no backend is requested explicitly."""
    if _default_name is not None:
        return _default_name
    return envvars.BACKEND.read() or DEFAULT_BACKEND_NAME


def set_default_backend(name: Optional[str]) -> Optional[str]:
    """Set (or with ``None`` clear) the process-wide default backend.

    Returns:
        The previous override (``None`` if none was set), so callers can
        restore it: ``previous = set_default_backend("naive"); ...;
        set_default_backend(previous)``.

    Raises:
        KeyError: for unregistered names.
    """
    global _default_name
    if name is not None and name not in _REGISTRY:
        raise KeyError(f"unknown backend {name!r}; registered: {available_backends()}")
    previous = _default_name
    _default_name = name
    return previous


def get_backend(name: Union[str, SimulationBackend, None] = None) -> SimulationBackend:
    """Resolve a backend (see the module docstring for the resolution order).

    Raises:
        KeyError: for unregistered names.
    """
    if isinstance(name, SimulationBackend):
        return name
    key = name or default_backend_name()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown backend {key!r}; registered: {available_backends()}"
        ) from None


register_backend(NaiveBackend())
register_backend(PackedBackend())
