"""Fault simulation engines (naive and bit-packed) with real fault dropping.

Both engines are *serial in faults, parallel in patterns* and share the same
observable-difference detection semantics as the original
``repro.atpg.fault_sim`` implementation:

* the good machine is evaluated once for the whole pattern batch;
* each fault is re-evaluated only over its downstream combinational cone
  with the fault site forced to the stuck value;
* a fault is detected at the first pattern where any observable net (primary
  output or flip-flop data input) differs from the good machine.

**Fault dropping** is implemented by processing the pattern set in blocks of
:data:`DROP_BLOCK_PATTERNS` patterns: once a fault is detected in a block it
is dropped, i.e. its cone is never re-simulated for the remaining blocks.
Because blocks are processed in pattern order, the recorded first-detecting
index is identical with and without dropping — dropping only removes work.
Per-run counters (``last_run_stats``) expose how much was skipped, which the
engine tests use to assert the dropping is real rather than decorative.

The simulators accept any fault objects exposing ``net`` and ``stuck_value``
attributes (:class:`repro.atpg.faults.StuckAtFault` in practice); keeping
this module free of ``repro.atpg`` imports lets the higher ATPG layer build
on the engine without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuit.gates import GateType, evaluate_bool
from repro.circuit.netlist import Circuit
from repro.circuit.simulator import LogicSimulator, check_pattern_matrix
from repro.cubes.cube import TestSet
from repro.engine.compile import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    compile_circuit,
)
from repro.engine.packed import evaluate_lanes, pack_lanes

#: Patterns per fault-dropping block.  Two packed words: wide enough that the
#: per-block bookkeeping is negligible, narrow enough that a fault detected
#: by the early patterns skips most of a large pattern set.
DROP_BLOCK_PATTERNS = 128


@dataclass
class FaultSimulationResult:
    """Outcome of fault-simulating a pattern set against a fault list.

    Attributes:
        detected: mapping from fault to the index of the first detecting
            pattern (iteration order follows the input fault list).
        undetected: faults no pattern detected, in input order.
        n_patterns: number of patterns simulated.
    """

    detected: Dict[object, int] = field(default_factory=dict)
    undetected: List[object] = field(default_factory=list)
    n_patterns: int = 0

    @property
    def coverage(self) -> float:
        """Fault coverage over the supplied fault list (1.0 when empty)."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    @property
    def detected_count(self) -> int:
        """Number of detected faults."""
        return len(self.detected)


def _new_stats() -> Dict[str, int]:
    return {"blocks": 0, "cone_evaluations": 0, "dropped_block_evaluations": 0}


def _validate_run(
    patterns: TestSet, n_test_pins: int, faults: Sequence[object]
) -> Optional[FaultSimulationResult]:
    """Shared run() preamble; returns an early result for empty pattern sets."""
    if not patterns.is_fully_specified():
        raise ValueError("fault simulation requires fully specified patterns")
    n_patterns = len(patterns)
    if n_patterns == 0:
        # An empty pattern set detects nothing; there is no pin width to check.
        return FaultSimulationResult(n_patterns=0, undetected=list(faults))
    if patterns.n_pins != n_test_pins:
        raise ValueError(
            f"patterns have {patterns.n_pins} pins, circuit expects {n_test_pins}"
        )
    return None


def _assemble(
    faults: Sequence[object],
    first_detect: List[Optional[int]],
    n_patterns: int,
) -> FaultSimulationResult:
    """Build a result in input fault order (identical across backends)."""
    result = FaultSimulationResult(n_patterns=n_patterns)
    for fault, index in zip(faults, first_detect):
        if index is None:
            result.undetected.append(fault)
        else:
            result.detected[fault] = index
    return result


def _blocks(n_patterns: int, block: int) -> List[range]:
    return [range(s, min(s + block, n_patterns)) for s in range(0, n_patterns, block)]


class NaiveFaultSimulator:
    """Reference fault simulator: per-net dict cone walk on bool arrays.

    This is the original ``FaultSimulator`` algorithm, restructured into
    pattern blocks so fault dropping actually skips work (the historical
    ``drop_detected`` flag was a no-op).  Results are bit-identical to the
    unblocked implementation.
    """

    def __init__(self, circuit: Circuit, block_patterns: int = DROP_BLOCK_PATTERNS) -> None:
        circuit.validate()
        self.circuit = circuit
        self.block_patterns = max(1, int(block_patterns))
        self._logic = LogicSimulator(circuit)
        self._order_rank = {net: i for i, net in enumerate(circuit.topological_order())}
        self._fanout = circuit.fanout_map()
        self._output_set = set(circuit.combinational_outputs)
        self._cone_cache: Dict[str, List[str]] = {}
        self.last_run_stats: Dict[str, int] = _new_stats()

    # -- internals ---------------------------------------------------------
    def _downstream_cone(self, net: str) -> List[str]:
        """Combinational gates reachable from ``net``, in topological order."""
        cached = self._cone_cache.get(net)
        if cached is not None:
            return cached
        seen: set = set()
        stack = [net]
        while stack:
            current = stack.pop()
            for reader in self._fanout.get(current, []):
                if reader in seen:
                    continue
                if self.circuit.get_gate(reader).gate_type.is_sequential:
                    continue
                seen.add(reader)
                stack.append(reader)
        cone = sorted(seen, key=lambda name: self._order_rank.get(name, 0))
        self._cone_cache[net] = cone
        return cone

    def _simulate_fault_block(
        self,
        fault: object,
        good_block: Dict[str, np.ndarray],
        width: int,
    ) -> np.ndarray:
        """Boolean array marking the block patterns that detect ``fault``."""
        forced = np.full(width, bool(fault.stuck_value))
        faulty: Dict[str, np.ndarray] = {fault.net: forced}
        detected = np.zeros(width, dtype=bool)
        if fault.net in self._output_set:
            detected |= good_block[fault.net] != forced
        for name in self._downstream_cone(fault.net):
            gate = self.circuit.get_gate(name)
            if gate.gate_type is GateType.CONST0:
                value = np.zeros(width, dtype=bool)
            elif gate.gate_type is GateType.CONST1:
                value = np.ones(width, dtype=bool)
            else:
                inputs = [faulty.get(net, good_block[net]) for net in gate.inputs]
                value = evaluate_bool(gate.gate_type, inputs)
            faulty[name] = value
            if name in self._output_set:
                detected |= value != good_block[name]
        return detected

    # -- public API --------------------------------------------------------
    def run(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults`` (see module docs)."""
        stats = self.last_run_stats = _new_stats()
        early = _validate_run(patterns, self.circuit.n_test_pins, faults)
        if early is not None:
            return early
        n_patterns = len(patterns)
        good_values = self._logic.simulate(patterns.matrix)
        first_detect: List[Optional[int]] = [None] * len(faults)

        # Blocking only exists to give dropping something to skip; without
        # dropping a single full-width pass avoids the per-block overhead
        # (results are block-size-invariant either way).
        block_size = self.block_patterns if drop_detected else n_patterns
        for block in _blocks(n_patterns, block_size):
            stats["blocks"] += 1
            start, width = block.start, len(block)
            good_block = {
                net: arr[start : block.stop] for net, arr in good_values.items()
            }
            pending = 0
            for index, fault in enumerate(faults):
                if first_detect[index] is not None:
                    if drop_detected:
                        stats["dropped_block_evaluations"] += 1
                        continue
                stats["cone_evaluations"] += 1
                detecting = self._simulate_fault_block(fault, good_block, width)
                hits = np.flatnonzero(detecting)
                if hits.size:
                    if first_detect[index] is None:
                        first_detect[index] = start + int(hits[0])
                else:
                    pending += 1
            if drop_detected and pending == 0:
                break
        return _assemble(faults, first_detect, n_patterns)


def _lowest_bit(value: int) -> int:
    """Index of the least-significant set bit of a positive big-int."""
    return (value & -value).bit_length() - 1


def packed_first_detects(
    program,
    good: Sequence[int],
    n_patterns: int,
    sites: Sequence[Optional[int]],
    stuck_values: Sequence[int],
    block_patterns: int = DROP_BLOCK_PATTERNS,
    drop_detected: bool = True,
    pattern_start: int = 0,
    pattern_stop: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
) -> List[Optional[int]]:
    """First-detecting pattern index per fault site over a pattern range.

    This is the work unit shared by :class:`PackedFaultSimulator` (which runs
    it over the full pattern range) and the sharded backend's worker
    processes (which run it over fault-list chunks or pattern-block shards
    and merge the results deterministically).

    Args:
        program: compiled circuit.
        good: good-machine value lanes for **all** ``n_patterns`` patterns
            (one big-int lane per value-table row).
        n_patterns: total pattern count the lanes cover.
        sites: fault-site row per fault (``None`` for unknown nets, which are
            never detected).
        stuck_values: stuck value (0/1) per fault, aligned with ``sites``.
        block_patterns: patterns per fault-dropping block.
        drop_detected: skip a fault's cone in blocks after its detecting one.
        pattern_start / pattern_stop: half-open pattern range to simulate
            (defaults to the full range).  Returned indices stay absolute.
        stats: optional counter dict updated in place (``blocks``,
            ``cone_evaluations``, ``dropped_block_evaluations``).

    Returns:
        One entry per fault: the absolute index of the first detecting
        pattern inside the range, or ``None``.
    """
    if stats is None:
        stats = _new_stats()
    if pattern_stop is None:
        pattern_stop = n_patterns
    n_faults = len(sites)
    first_detect: List[Optional[int]] = [None] * n_faults
    range_width = pattern_stop - pattern_start
    if range_width <= 0 or n_faults == 0:
        return first_detect

    # Blocking only pays off when dropping can skip later blocks; run a
    # single full-width pass otherwise (results are block-size-invariant).
    block_size = max(1, int(block_patterns)) if drop_detected else range_width
    blocks = [
        range(s, min(s + block_size, pattern_stop))
        for s in range(pattern_start, pattern_stop, block_size)
    ]
    # Pre-serialise the good lanes when blocks fall on byte boundaries:
    # slicing a byte window per block is O(block) per net instead of the
    # O(n_patterns) a full-lane `>> start` costs, keeping good-block
    # extraction linear in the pattern count across all blocks.
    byte_aligned = block_size % 8 == 0 and pattern_start % 8 == 0 and len(blocks) > 1
    if byte_aligned:
        total_bytes = (n_patterns + 7) // 8
        good_bytes = [lane.to_bytes(total_bytes, "little") for lane in good]

    stuck_flags = [bool(value) for value in stuck_values]
    for block in blocks:
        stats["blocks"] += 1
        start, width = block.start, len(block)
        block_mask = (1 << width) - 1
        if byte_aligned:
            lo, hi = start // 8, (block.stop + 7) // 8
            good_block = [
                int.from_bytes(raw[lo:hi], "little") & block_mask
                for raw in good_bytes
            ]
        elif start:
            good_block = [(lane >> start) & block_mask for lane in good]
        else:
            good_block = [lane & block_mask for lane in good]
        pending = 0
        for index in range(n_faults):
            row = sites[index]
            if row is None:
                continue
            if first_detect[index] is not None:
                if drop_detected:
                    stats["dropped_block_evaluations"] += 1
                    continue
            cone = program.cone(row)
            if not cone.detect_rows and not cone.site_observable:
                continue  # structurally unobservable: undetected, no work
            stats["cone_evaluations"] += 1
            forced = block_mask if stuck_flags[index] else 0
            diff = (good_block[row] ^ forced) if cone.site_observable else 0
            faulty: Dict[int, int] = {row: forced}
            fget = faulty.get
            node_prog = program.node_prog
            # Inline opcode dispatch: this duplicates evaluate_lanes on
            # purpose (the faulty-dict overlay lookup per source is the
            # hot path; an indirection-parameterised shared interpreter
            # measurably slows it).  Any opcode change must be mirrored
            # in evaluate_lanes/evaluate_words; the every-gate-type
            # parity tests in tests/test_engine.py catch divergence.
            for pos in cone.positions:
                op, out, src = node_prog[pos]
                if op == OP_AND or op == OP_NAND:
                    acc = fget(src[0])
                    if acc is None:
                        acc = good_block[src[0]]
                    for r in src[1:]:
                        v = fget(r)
                        acc &= good_block[r] if v is None else v
                    if op == OP_NAND:
                        acc ^= block_mask
                elif op == OP_OR or op == OP_NOR:
                    acc = fget(src[0])
                    if acc is None:
                        acc = good_block[src[0]]
                    for r in src[1:]:
                        v = fget(r)
                        acc |= good_block[r] if v is None else v
                    if op == OP_NOR:
                        acc ^= block_mask
                elif op == OP_XOR or op == OP_XNOR:
                    acc = fget(src[0])
                    if acc is None:
                        acc = good_block[src[0]]
                    for r in src[1:]:
                        v = fget(r)
                        acc ^= good_block[r] if v is None else v
                    if op == OP_XNOR:
                        acc ^= block_mask
                elif op == OP_NOT:
                    v = fget(src[0])
                    acc = (good_block[src[0]] if v is None else v) ^ block_mask
                elif op == OP_BUF:
                    v = fget(src[0])
                    acc = good_block[src[0]] if v is None else v
                elif op == OP_CONST0:
                    acc = 0
                else:  # OP_CONST1
                    acc = block_mask
                faulty[out] = acc
            for obs in cone.detect_rows:
                diff |= faulty[obs] ^ good_block[obs]
            if diff:
                if first_detect[index] is None:
                    first_detect[index] = start + _lowest_bit(diff)
            else:
                pending += 1
        if drop_detected and pending == 0:
            break
    return first_detect


class PackedFaultSimulator:
    """Bit-packed fault simulator over the compiled program.

    Good-machine values and faulty cones are evaluated on big-int lanes
    (see :mod:`repro.engine.packed`): the cone of each fault is compiled
    once into flat ``(op, out_row, src_rows)`` triples, and re-evaluating it
    for a 128-pattern block is a handful of C-level big-int bitwise ops —
    no gate objects, no name dictionaries, no NumPy dispatch.
    """

    def __init__(
        self,
        circuit: Circuit,
        block_patterns: int = DROP_BLOCK_PATTERNS,
        program: "Optional[object]" = None,
    ) -> None:
        self.circuit = circuit
        self.block_patterns = max(1, int(block_patterns))
        self.program = program if program is not None else compile_circuit(circuit)
        self.last_run_stats: Dict[str, int] = _new_stats()

    def run(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults`` (see module docs)."""
        program = self.program
        stats = self.last_run_stats = _new_stats()
        early = _validate_run(patterns, program.n_inputs, faults)
        if early is not None:
            return early
        n_patterns = len(patterns)
        matrix = check_pattern_matrix(patterns.matrix, program.n_inputs)
        full_mask = (1 << n_patterns) - 1
        good = evaluate_lanes(program, pack_lanes(matrix), full_mask)

        # Resolve fault sites once; faults on unknown nets can never be
        # detected (matching the naive simulator's empty-cone behaviour).
        sites: List[Optional[int]] = [program.row_of(f.net) for f in faults]
        stuck_values = [1 if f.stuck_value else 0 for f in faults]
        first_detect = packed_first_detects(
            program,
            good,
            n_patterns,
            sites,
            stuck_values,
            block_patterns=self.block_patterns,
            drop_detected=drop_detected,
            stats=stats,
        )
        return _assemble(faults, first_detect, n_patterns)
