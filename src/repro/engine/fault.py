"""Fault simulation engines (naive and bit-packed) with real fault dropping.

Both engines are *serial in faults, parallel in patterns* and share the same
observable-difference detection semantics as the original
``repro.atpg.fault_sim`` implementation:

* the good machine is evaluated once for the whole pattern batch;
* each fault is re-evaluated only over its downstream combinational cone
  with the fault site forced to the stuck value;
* a fault is detected at the first pattern where any observable net (primary
  output or flip-flop data input) differs from the good machine.

**Grading modes.**  Like the packed logic simulator, the packed fault path
has several execution strategies sharing the compiled program and producing
bit-identical results:

* ``"lanes"`` — good machine and faulty cones on arbitrary-width python
  big-ints (:func:`packed_first_detects`).  Minimal per-op dispatch; wins
  for the narrow pattern sets ATPG grading uses.
* ``"words"`` — good machine cached as a dense ``(n_nets, n_words)``
  ``uint64`` table, faulty cones re-simulated word-wise with vectorised
  NumPy bitwise ops and detection words diffed at the observables under an
  explicit last-word mask (:func:`packed_first_detects_words`).  NumPy's
  per-call overhead is amortised over many words, so this wins once pattern
  sets grow wide (thousands of patterns — the fill-sweep / figure-2 shapes).
* ``"faults"`` — the *fault-parallel* dual of lanes: 64 faults per uint64
  word, one bit-lane each (:func:`packed_first_detects_faults`).  Each
  pattern is replayed once through the union of the packed faults' cones
  with every fault site forced in its own lane, and one XOR against the
  broadcast good-machine value recovers all 64 detection bits at once.
  The per-*fault* python loop of lanes becomes a per-*pattern* loop ~64x
  wider per step, which wins the many-faults/few-patterns shapes (PODEM's
  cube-verification drop sweeps grade one pattern against the whole
  remaining fault list).

``mode="auto"`` (the default) picks the kernel from the run shape
(:func:`resolve_grading_kernel`): ``words`` above
:data:`~repro.engine.packed.LANE_MODE_MAX_PATTERNS` patterns exactly like
the logic simulator, ``faults`` for pattern sets at most
:data:`FAULTS_MODE_MAX_PATTERNS` wide against at least
:data:`FAULTS_MODE_MIN_FAULTS` faults, ``lanes`` otherwise; the
``REPRO_FAULT_MODE`` environment variable forces a mode process-wide
(:func:`resolve_fault_mode`).

**Fault dropping** is implemented by processing the pattern set in blocks of
:data:`DROP_BLOCK_PATTERNS` patterns: once a fault is detected in a block it
is dropped, i.e. its cone is never re-simulated for the remaining blocks.
Because blocks are processed in pattern order, the recorded first-detecting
index is identical with and without dropping — dropping only removes work.
Per-run counters (``last_run_stats``) expose how much was skipped, which the
engine tests use to assert the dropping is real rather than decorative.

The simulators accept any fault objects exposing ``net`` and ``stuck_value``
attributes (:class:`repro.atpg.faults.StuckAtFault` in practice); keeping
this module free of ``repro.atpg`` imports lets the higher ATPG layer build
on the engine without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import envvars
from repro.circuit.gates import GateType, evaluate_bool
from repro.circuit.netlist import Circuit
from repro.circuit.simulator import LogicSimulator, check_pattern_matrix
from repro.cubes.cube import TestSet
from repro.obs import recorder as obs
from repro.engine.compile import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    compile_circuit,
)
from repro.engine.packed import (
    LANE_MODE_MAX_PATTERNS,
    WORD_BITS,
    evaluate_lanes,
    evaluate_words,
    pack_lanes,
    pack_patterns,
    tail_mask,
)

#: Patterns per fault-dropping block.  Two packed words: wide enough that the
#: per-block bookkeeping is negligible, narrow enough that a fault detected
#: by the early patterns skips most of a large pattern set.
DROP_BLOCK_PATTERNS = 128

#: Default fault-dropping block in ``"words"`` mode.  NumPy's ~µs per-call
#: dispatch must be amortised over many 64-bit words per cone op, so word
#: blocks are much wider than lane blocks (64 words here; narrower blocks
#: measurably lose to lanes, wider ones starve fault dropping).  Results are
#: block-size-invariant either way — blocking only bounds skippable work.
WORD_DROP_BLOCK_PATTERNS = 4096

#: Faults per packed fault word in ``"faults"`` mode — one bit-lane each.
FAULT_WORD_LANES = WORD_BITS

#: ``auto`` considers the fault-parallel kernel only for pattern sets at
#: most this wide.  The fault-packed word must replay every pattern one at
#: a time, while a lanes cone replay costs roughly the same for 1 pattern
#: as for a whole block — so the measured crossover
#: (``benchmarks/bench_engine.py``, ``fault_parallel`` section) sits at
#: 8–16 patterns: ~1.7x ahead at 8, break-even at 16, behind above.
#: PODEM's drop sweeps (one filled cube vs the remaining list) are the
#: headline shape, at 6–7x.
FAULTS_MODE_MAX_PATTERNS = 8

#: ... and only for fault lists long enough to fill a fault word: below one
#: word of faults the ~64x lane win cannot pay for the per-pattern python
#: loop, and lanes stays ahead.
FAULTS_MODE_MIN_FAULTS = 64

#: Environment variable forcing the packed fault-grading mode process-wide.
FAULT_MODE_ENV_VAR = envvars.FAULT_MODE.name

FAULT_MODES = envvars.FAULT_MODES


def resolve_fault_mode(mode: Optional[str] = None) -> str:
    """Resolve a fault-grading mode (explicit arg > ``REPRO_FAULT_MODE`` > auto).

    Raises:
        ValueError: for names outside :data:`FAULT_MODES`.
    """
    if mode is None:
        mode = envvars.FAULT_MODE.read() or "auto"
    if mode not in FAULT_MODES:
        raise ValueError(f"unknown fault mode {mode!r}; choose from {FAULT_MODES}")
    return mode


def resolve_grading_kernel(mode: str, n_patterns: int, n_faults: int) -> str:
    """The concrete kernel (``lanes``/``words``/``faults``) a run grades on.

    ``auto`` resolves from the run shape: the word table wins wide pattern
    sets, the fault-packed kernel wins many-faults/few-patterns shapes, and
    big-int lanes take everything in between.  Distributed parents resolve
    once with the full run shape and ship the resolved kernel to every
    chunk, so chunking never changes the kernel (or the results).
    """
    if mode != "auto":
        return mode
    if n_patterns > LANE_MODE_MAX_PATTERNS:
        return "words"
    if n_patterns <= FAULTS_MODE_MAX_PATTERNS and n_faults >= FAULTS_MODE_MIN_FAULTS:
        return "faults"
    return "lanes"


def fault_mode_uses_words(mode: str, n_patterns: int) -> bool:
    """Whether ``mode`` grades ``n_patterns`` patterns on the word table.

    Retained shim over :func:`resolve_grading_kernel` for callers that only
    care about the good-machine representation (the word table vs big-int
    lanes; the ``faults`` kernel reads the lanes representation).
    """
    if mode == "auto":
        return n_patterns > LANE_MODE_MAX_PATTERNS
    return mode == "words"


def fault_lane_mask(n_lanes: int) -> int:
    """Valid-lane mask for a fault word holding ``n_lanes`` packed faults.

    The fault-axis dual of :func:`~repro.engine.packed.tail_mask`: the last
    fault word of a run usually holds fewer than
    :data:`FAULT_WORD_LANES` faults, and every detection word must be
    masked to the populated lanes before lanes are mapped back to faults —
    an unmasked tail lane would scatter a detection onto a fault that does
    not exist.  ``n_lanes`` counts the populated lanes of the word; a
    multiple of the word width (including a full word) keeps every lane.
    """
    bits = n_lanes % FAULT_WORD_LANES
    if bits == 0:
        return (1 << FAULT_WORD_LANES) - 1
    return (1 << bits) - 1


@dataclass
class FaultSimulationResult:
    """Outcome of fault-simulating a pattern set against a fault list.

    Duplicate faults in the input list are collapsed to their first
    occurrence — every backend grades a fault once, so ``coverage`` is a
    fraction of *distinct* faults and ``undetected`` never repeats an entry.

    Attributes:
        detected: mapping from fault to the index of the first detecting
            pattern (iteration order follows the input fault list).
        undetected: faults no pattern detected, in input order.
        n_patterns: number of patterns simulated.
    """

    detected: Dict[object, int] = field(default_factory=dict)
    undetected: List[object] = field(default_factory=list)
    n_patterns: int = 0

    @property
    def coverage(self) -> float:
        """Fault coverage over the supplied fault list (1.0 when empty)."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    @property
    def detected_count(self) -> int:
        """Number of detected faults."""
        return len(self.detected)


def _new_stats() -> Dict[str, int]:
    return {
        "blocks": 0,
        "cone_evaluations": 0,
        "dropped_block_evaluations": 0,
        "fault_words": 0,
    }


def _flush_run_telemetry(
    stats: Dict[str, int], result: FaultSimulationResult
) -> None:
    """Fold one completed run into the ``fault_sim.*`` obs counters.

    Kernels accumulate into plain dicts exactly as before (the hot loops
    never touch obs); top-level ``run()`` methods flush once per run, so
    the disabled path costs one predicate and the enabled path a handful
    of dict merges.  Distributed runs flush kernel stats worker-side per
    chunk instead (see :func:`repro.cluster.protocol.simulate_chunk`) and
    only the result-level counters here in the parent, keeping counter
    totals comparable — and for the scheduling-invariant counters
    identical — across backends.
    """
    if not obs.enabled():
        return
    obs.add_counters(stats, prefix="fault_sim.")
    obs.add_counters(
        {
            "fault_sim.runs": 1,
            "fault_sim.patterns": result.n_patterns,
            "fault_sim.faults": result.detected_count + len(result.undetected),
            "fault_sim.detected": result.detected_count,
        }
    )


def _validate_run(
    patterns: TestSet, n_test_pins: int, faults: Sequence[object]
) -> Optional[FaultSimulationResult]:
    """Shared run() preamble; returns an early result for empty pattern sets."""
    if not patterns.is_fully_specified():
        raise ValueError("fault simulation requires fully specified patterns")
    n_patterns = len(patterns)
    if n_patterns == 0:
        # An empty pattern set detects nothing; there is no pin width to check.
        return FaultSimulationResult(
            n_patterns=0, undetected=list(dict.fromkeys(faults))
        )
    if patterns.n_pins != n_test_pins:
        raise ValueError(
            f"patterns have {patterns.n_pins} pins, circuit expects {n_test_pins}"
        )
    return None


def _unique_faults(faults: Sequence[object]) -> List[object]:
    """The fault list with duplicates collapsed to their first occurrence.

    Occurrences of a fault grade identically (same cone, same patterns), so
    every backend dedupes before grading: duplicates cost no cone work, and
    without deduplication the ``detected`` dict would collapse them while
    ``undetected`` repeated them, skewing ``coverage`` by input-list
    bookkeeping.
    """
    return list(dict.fromkeys(faults))


def _assemble(
    faults: Sequence[object],
    first_detect: List[Optional[int]],
    n_patterns: int,
) -> FaultSimulationResult:
    """Build a result in input fault order (identical across backends).

    Callers pass the :func:`_unique_faults` list; the seen-set is a cheap
    backstop keeping results consistent for any direct caller that does not.
    """
    result = FaultSimulationResult(n_patterns=n_patterns)
    seen = set()
    for fault, index in zip(faults, first_detect):
        if fault in seen:
            continue
        seen.add(fault)
        if index is None:
            result.undetected.append(fault)
        else:
            result.detected[fault] = index
    return result


def _blocks(n_patterns: int, block: int) -> List[range]:
    return [range(s, min(s + block, n_patterns)) for s in range(0, n_patterns, block)]


class NaiveFaultSimulator:
    """Reference fault simulator: per-net dict cone walk on bool arrays.

    This is the original ``FaultSimulator`` algorithm, restructured into
    pattern blocks so fault dropping actually skips work (the historical
    ``drop_detected`` flag was a no-op).  Results are bit-identical to the
    unblocked implementation.
    """

    def __init__(self, circuit: Circuit, block_patterns: int = DROP_BLOCK_PATTERNS) -> None:
        circuit.validate()
        self.circuit = circuit
        self.block_patterns = max(1, int(block_patterns))
        self._logic = LogicSimulator(circuit)
        self._order_rank = {net: i for i, net in enumerate(circuit.topological_order())}
        self._fanout = circuit.fanout_map()
        self._output_set = set(circuit.combinational_outputs)
        self._cone_cache: Dict[str, List[str]] = {}
        self._observable_cache: Dict[str, bool] = {}
        self.last_run_stats: Dict[str, int] = _new_stats()

    # -- internals ---------------------------------------------------------
    def _downstream_cone(self, net: str) -> List[str]:
        """Combinational gates reachable from ``net``, in topological order."""
        cached = self._cone_cache.get(net)
        if cached is not None:
            return cached
        seen: set = set()
        stack = [net]
        while stack:
            current = stack.pop()
            for reader in self._fanout.get(current, []):
                if reader in seen:
                    continue
                if self.circuit.get_gate(reader).gate_type.is_sequential:
                    continue
                seen.add(reader)
                stack.append(reader)
        cone = sorted(seen, key=lambda name: self._order_rank.get(name, 0))
        self._cone_cache[net] = cone
        return cone

    def _structurally_observable(self, net: str) -> bool:
        """Whether ``net`` reaches any observable net (or is one itself).

        Faults on structurally unobservable nets can never be detected, so
        they are skipped without cone work — the same skip the packed
        kernels apply (empty ``detect_rows`` and unobservable site), which
        keeps ``cone_evaluations`` aligned across backends.
        """
        cached = self._observable_cache.get(net)
        if cached is None:
            cached = net in self._output_set or any(
                name in self._output_set for name in self._downstream_cone(net)
            )
            self._observable_cache[net] = cached
        return cached

    def _simulate_fault_block(
        self,
        fault: object,
        good_block: Dict[str, np.ndarray],
        width: int,
    ) -> np.ndarray:
        """Boolean array marking the block patterns that detect ``fault``."""
        forced = np.full(width, bool(fault.stuck_value))
        faulty: Dict[str, np.ndarray] = {fault.net: forced}
        detected = np.zeros(width, dtype=bool)
        if fault.net in self._output_set:
            detected |= good_block[fault.net] != forced
        for name in self._downstream_cone(fault.net):
            gate = self.circuit.get_gate(name)
            if gate.gate_type is GateType.CONST0:
                value = np.zeros(width, dtype=bool)
            elif gate.gate_type is GateType.CONST1:
                value = np.ones(width, dtype=bool)
            else:
                inputs = [faulty.get(net, good_block[net]) for net in gate.inputs]
                value = evaluate_bool(gate.gate_type, inputs)
            faulty[name] = value
            if name in self._output_set:
                detected |= value != good_block[name]
        return detected

    # -- public API --------------------------------------------------------
    def run(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults`` (see module docs)."""
        stats = self.last_run_stats = _new_stats()
        early = _validate_run(patterns, self.circuit.n_test_pins, faults)
        if early is not None:
            return early
        faults = _unique_faults(faults)
        n_patterns = len(patterns)
        with obs.span(f"logic_sim/{self.circuit.name}/naive"):
            good_values = self._logic.simulate(patterns.matrix)
        first_detect: List[Optional[int]] = [None] * len(faults)
        observable = [self._structurally_observable(f.net) for f in faults]

        # Blocking only exists to give dropping something to skip; without
        # dropping a single full-width pass avoids the per-block overhead
        # (results are block-size-invariant either way).
        block_size = self.block_patterns if drop_detected else n_patterns
        with obs.span(f"fault_sim/{self.circuit.name}/naive/grade"):
            for block in _blocks(n_patterns, block_size):
                stats["blocks"] += 1
                start, width = block.start, len(block)
                good_block = {
                    net: arr[start : block.stop] for net, arr in good_values.items()
                }
                pending = 0
                for index, fault in enumerate(faults):
                    if first_detect[index] is not None:
                        if drop_detected:
                            stats["dropped_block_evaluations"] += 1
                            continue
                    if not observable[index]:
                        continue  # structurally unobservable: undetected, no work
                    stats["cone_evaluations"] += 1
                    detecting = self._simulate_fault_block(fault, good_block, width)
                    hits = np.flatnonzero(detecting)
                    if hits.size:
                        if first_detect[index] is None:
                            first_detect[index] = start + int(hits[0])
                    else:
                        pending += 1
                if drop_detected and pending == 0:
                    break
        result = _assemble(faults, first_detect, n_patterns)
        _flush_run_telemetry(stats, result)
        return result


def _lowest_bit(value: int) -> int:
    """Index of the least-significant set bit of a positive big-int."""
    return (value & -value).bit_length() - 1


def packed_first_detects(
    program,
    good: Sequence[int],
    n_patterns: int,
    sites: Sequence[Optional[int]],
    stuck_values: Sequence[int],
    block_patterns: int = DROP_BLOCK_PATTERNS,
    drop_detected: bool = True,
    pattern_start: int = 0,
    pattern_stop: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
) -> List[Optional[int]]:
    """First-detecting pattern index per fault site over a pattern range.

    This is the work unit shared by :class:`PackedFaultSimulator` (which runs
    it over the full pattern range) and the sharded backend's worker
    processes (which run it over fault-list chunks or pattern-block shards
    and merge the results deterministically).

    Args:
        program: compiled circuit.
        good: good-machine value lanes for **all** ``n_patterns`` patterns
            (one big-int lane per value-table row).
        n_patterns: total pattern count the lanes cover.
        sites: fault-site row per fault (``None`` for unknown nets, which are
            never detected).
        stuck_values: stuck value (0/1) per fault, aligned with ``sites``.
        block_patterns: patterns per fault-dropping block.
        drop_detected: skip a fault's cone in blocks after its detecting one.
        pattern_start / pattern_stop: half-open pattern range to simulate
            (defaults to the full range).  Returned indices stay absolute.
        stats: optional counter dict updated in place (``blocks``,
            ``cone_evaluations``, ``dropped_block_evaluations``).

    Returns:
        One entry per fault: the absolute index of the first detecting
        pattern inside the range, or ``None``.
    """
    if stats is None:
        stats = _new_stats()
    if pattern_stop is None:
        pattern_stop = n_patterns
    n_faults = len(sites)
    first_detect: List[Optional[int]] = [None] * n_faults
    range_width = pattern_stop - pattern_start
    if range_width <= 0 or n_faults == 0:
        return first_detect

    # Blocking only pays off when dropping can skip later blocks; run a
    # single full-width pass otherwise (results are block-size-invariant).
    block_size = max(1, int(block_patterns)) if drop_detected else range_width
    blocks = [
        range(s, min(s + block_size, pattern_stop))
        for s in range(pattern_start, pattern_stop, block_size)
    ]
    # Pre-serialise the good lanes when blocks fall on byte boundaries:
    # slicing a byte window per block is O(block) per net instead of the
    # O(n_patterns) a full-lane `>> start` costs, keeping good-block
    # extraction linear in the pattern count across all blocks.
    byte_aligned = block_size % 8 == 0 and pattern_start % 8 == 0 and len(blocks) > 1
    if byte_aligned:
        total_bytes = (n_patterns + 7) // 8
        good_bytes = [lane.to_bytes(total_bytes, "little") for lane in good]

    stuck_flags = [bool(value) for value in stuck_values]
    for block in blocks:
        stats["blocks"] += 1
        start, width = block.start, len(block)
        block_mask = (1 << width) - 1
        if byte_aligned:
            lo, hi = start // 8, (block.stop + 7) // 8
            good_block = [
                int.from_bytes(raw[lo:hi], "little") & block_mask
                for raw in good_bytes
            ]
        elif start:
            good_block = [(lane >> start) & block_mask for lane in good]
        else:
            good_block = [lane & block_mask for lane in good]
        pending = 0
        for index in range(n_faults):
            row = sites[index]
            if row is None:
                continue
            if first_detect[index] is not None:
                if drop_detected:
                    stats["dropped_block_evaluations"] += 1
                    continue
            cone = program.cone(row)
            if not cone.detect_rows and not cone.site_observable:
                continue  # structurally unobservable: undetected, no work
            stats["cone_evaluations"] += 1
            forced = block_mask if stuck_flags[index] else 0
            diff = (good_block[row] ^ forced) if cone.site_observable else 0
            faulty: Dict[int, int] = {row: forced}
            fget = faulty.get
            node_prog = program.node_prog
            # Inline opcode dispatch: this duplicates evaluate_lanes on
            # purpose (the faulty-dict overlay lookup per source is the
            # hot path; an indirection-parameterised shared interpreter
            # measurably slows it).  Any opcode change must be mirrored
            # in evaluate_lanes/evaluate_words; the every-gate-type
            # parity tests in tests/test_engine.py catch divergence.
            for pos in cone.positions:
                op, out, src = node_prog[pos]
                if op == OP_AND or op == OP_NAND:
                    acc = fget(src[0])
                    if acc is None:
                        acc = good_block[src[0]]
                    for r in src[1:]:
                        v = fget(r)
                        acc &= good_block[r] if v is None else v
                    if op == OP_NAND:
                        acc ^= block_mask
                elif op == OP_OR or op == OP_NOR:
                    acc = fget(src[0])
                    if acc is None:
                        acc = good_block[src[0]]
                    for r in src[1:]:
                        v = fget(r)
                        acc |= good_block[r] if v is None else v
                    if op == OP_NOR:
                        acc ^= block_mask
                elif op == OP_XOR or op == OP_XNOR:
                    acc = fget(src[0])
                    if acc is None:
                        acc = good_block[src[0]]
                    for r in src[1:]:
                        v = fget(r)
                        acc ^= good_block[r] if v is None else v
                    if op == OP_XNOR:
                        acc ^= block_mask
                elif op == OP_NOT:
                    v = fget(src[0])
                    acc = (good_block[src[0]] if v is None else v) ^ block_mask
                elif op == OP_BUF:
                    v = fget(src[0])
                    acc = good_block[src[0]] if v is None else v
                elif op == OP_CONST0:
                    acc = 0
                else:  # OP_CONST1
                    acc = block_mask
                faulty[out] = acc
            for obs in cone.detect_rows:
                diff |= faulty[obs] ^ good_block[obs]
            if diff:
                if first_detect[index] is None:
                    first_detect[index] = start + _lowest_bit(diff)
            else:
                pending += 1
        if drop_detected and pending == 0:
            break
    return first_detect


def packed_first_detects_words(
    program,
    good: np.ndarray,
    n_patterns: int,
    sites: Sequence[Optional[int]],
    stuck_values: Sequence[int],
    block_patterns: int = WORD_DROP_BLOCK_PATTERNS,
    drop_detected: bool = True,
    pattern_start: int = 0,
    pattern_stop: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
) -> List[Optional[int]]:
    """Word-table counterpart of :func:`packed_first_detects`.

    The good machine is a cached ``(n_nets, n_words)`` ``uint64`` table
    (:func:`~repro.engine.packed.evaluate_words`); each fault's cone is
    re-simulated word-wise with vectorised NumPy bitwise ops over the block's
    word slice, and detection words are diffed at the observable rows under
    an explicit validity mask — :func:`~repro.engine.packed.tail_mask` for
    the last word plus range masks for non-word-aligned shard boundaries —
    so tail garbage can never read as a detection.  Same arguments, return
    value and fault-dropping semantics as the lanes version; first-detect
    indices are bit-identical.

    Args:
        good: good-machine word table covering all ``n_patterns`` patterns.
        block_patterns: rounded up to whole 64-pattern words; word blocks
            default much wider than lane blocks (NumPy dispatch amortises
            across the words of a block).
        (remaining arguments: see :func:`packed_first_detects`)
    """
    if stats is None:
        stats = _new_stats()
    if pattern_stop is None:
        pattern_stop = n_patterns
    n_faults = len(sites)
    first_detect: List[Optional[int]] = [None] * n_faults
    if pattern_stop - pattern_start <= 0 or n_faults == 0:
        return first_detect

    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    word_lo = pattern_start // WORD_BITS
    word_hi = -(-pattern_stop // WORD_BITS)
    # Per-word validity masks over [pattern_start, pattern_stop): interior
    # words are fully valid; the boundary words mask off out-of-range bits
    # (the global tail is one such boundary whenever pattern_stop ==
    # n_patterns does not fill its last word).
    valid = np.full(word_hi - word_lo, ones, dtype=np.uint64)
    head_bits = pattern_start - word_lo * WORD_BITS
    if head_bits:
        valid[0] &= np.uint64(~((1 << head_bits) - 1) & 0xFFFFFFFFFFFFFFFF)
    if pattern_stop < word_hi * WORD_BITS:
        valid[-1] &= tail_mask(pattern_stop)

    block_words = -(-max(1, int(block_patterns)) // WORD_BITS)
    if not drop_detected:
        block_words = word_hi - word_lo  # single full-width pass
    stuck_flags = [bool(value) for value in stuck_values]
    node_prog = program.node_prog
    for block_lo in range(word_lo, word_hi, block_words):
        block_hi = min(block_lo + block_words, word_hi)
        stats["blocks"] += 1
        width = block_hi - block_lo
        good_block = good[:, block_lo:block_hi]
        valid_block = valid[block_lo - word_lo : block_hi - word_lo]
        forced_zeros = np.zeros(width, dtype=np.uint64)
        forced_ones = np.full(width, ones, dtype=np.uint64)
        pending = 0
        for index in range(n_faults):
            row = sites[index]
            if row is None:
                continue
            if first_detect[index] is not None:
                if drop_detected:
                    stats["dropped_block_evaluations"] += 1
                    continue
            cone = program.cone(row)
            if not cone.detect_rows and not cone.site_observable:
                continue  # structurally unobservable: undetected, no work
            stats["cone_evaluations"] += 1
            forced = forced_ones if stuck_flags[index] else forced_zeros
            faulty: Dict[int, np.ndarray] = {row: forced}
            fget = faulty.get
            # Overlay values are either fresh arrays or read-only views of
            # the good table / forced constants; every in-place op below
            # runs only after `fresh` proves the accumulator was allocated
            # by this gate, so shared storage is never mutated.  Opcode
            # dispatch mirrors packed_first_detects (see the note there).
            for pos in cone.positions:
                op, out, src = node_prog[pos]
                if op == OP_AND or op == OP_NAND:
                    v = fget(src[0])
                    acc = good_block[src[0]] if v is None else v
                    fresh = False
                    for r in src[1:]:
                        v = fget(r)
                        operand = good_block[r] if v is None else v
                        if fresh:
                            np.bitwise_and(acc, operand, out=acc)
                        else:
                            acc = acc & operand
                            fresh = True
                    if op == OP_NAND:
                        acc = (
                            np.bitwise_xor(acc, ones, out=acc)
                            if fresh
                            else acc ^ ones
                        )
                elif op == OP_OR or op == OP_NOR:
                    v = fget(src[0])
                    acc = good_block[src[0]] if v is None else v
                    fresh = False
                    for r in src[1:]:
                        v = fget(r)
                        operand = good_block[r] if v is None else v
                        if fresh:
                            np.bitwise_or(acc, operand, out=acc)
                        else:
                            acc = acc | operand
                            fresh = True
                    if op == OP_NOR:
                        acc = (
                            np.bitwise_xor(acc, ones, out=acc)
                            if fresh
                            else acc ^ ones
                        )
                elif op == OP_XOR or op == OP_XNOR:
                    v = fget(src[0])
                    acc = good_block[src[0]] if v is None else v
                    fresh = False
                    for r in src[1:]:
                        v = fget(r)
                        operand = good_block[r] if v is None else v
                        if fresh:
                            np.bitwise_xor(acc, operand, out=acc)
                        else:
                            acc = acc ^ operand
                            fresh = True
                    if op == OP_XNOR:
                        acc = (
                            np.bitwise_xor(acc, ones, out=acc)
                            if fresh
                            else acc ^ ones
                        )
                elif op == OP_NOT:
                    v = fget(src[0])
                    acc = (good_block[src[0]] if v is None else v) ^ ones
                elif op == OP_BUF:
                    v = fget(src[0])
                    acc = good_block[src[0]] if v is None else v
                elif op == OP_CONST0:
                    acc = forced_zeros
                else:  # OP_CONST1
                    acc = forced_ones
                faulty[out] = acc
            diff = (good_block[row] ^ forced) if cone.site_observable else None
            for obs in cone.detect_rows:
                delta = faulty[obs] ^ good_block[obs]
                if diff is None:
                    diff = delta
                else:
                    np.bitwise_or(diff, delta, out=diff)
            np.bitwise_and(diff, valid_block, out=diff)
            nonzero = np.nonzero(diff)[0]
            if nonzero.size:
                if first_detect[index] is None:
                    word = int(nonzero[0])
                    bits = int(diff[word])
                    first_detect[index] = (block_lo + word) * WORD_BITS + (
                        (bits & -bits).bit_length() - 1
                    )
            else:
                pending += 1
        if drop_detected and pending == 0:
            break
    return first_detect


def packed_first_detects_faults(
    program,
    good: Sequence[int],
    n_patterns: int,
    sites: Sequence[Optional[int]],
    stuck_values: Sequence[int],
    block_patterns: int = DROP_BLOCK_PATTERNS,
    drop_detected: bool = True,
    pattern_start: int = 0,
    pattern_stop: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
) -> List[Optional[int]]:
    """Fault-parallel counterpart of :func:`packed_first_detects`.

    Instead of packing patterns into lanes and looping over faults, this
    kernel packs up to :data:`FAULT_WORD_LANES` faults into one big-int word
    (one bit-lane per fault) and loops over patterns: each pattern is
    replayed once through the union of the packed faults' cones with every
    fault site forced to its stuck value *in its own lane only*, and a
    single XOR against the broadcast good-machine value yields the
    detection bit of all packed faults at once.  A lane can only diverge
    from the good machine inside its own fault's cone, so diffing the union
    of the detect rows attributes detections to the right lanes by
    construction.  Because patterns are visited in ascending order, the
    first pattern whose diff word sets a lane *is* that fault's
    first-detecting pattern — bit-identical to the lanes/words kernels.

    Fault sites driven by gates inside the union cone (one packed fault
    upstream of another's site) are re-forced lane-wise after the driving
    gate writes, and detection words are masked with
    :func:`fault_lane_mask` so the unpopulated tail lanes of the last fault
    word can never scatter onto nonexistent faults.

    Fault dropping works on the same :data:`DROP_BLOCK_PATTERNS` blocks as
    the lanes kernel — ``cone_evaluations`` counts one per still-undetected
    fault per block, identical across kernels and chunkings — and a fully
    detected fault word stops replaying patterns immediately.

    Args: see :func:`packed_first_detects`; ``good`` is the same big-int
    lanes representation, ``stats`` additionally accumulates
    ``fault_words``.
    """
    if stats is None:
        stats = _new_stats()
    if pattern_stop is None:
        pattern_stop = n_patterns
    n_faults = len(sites)
    first_detect: List[Optional[int]] = [None] * n_faults
    range_width = pattern_stop - pattern_start
    if range_width <= 0 or n_faults == 0:
        return first_detect

    # Only gradeable faults occupy lanes; unknown nets and structurally
    # unobservable sites are undetected with no work, as in every kernel.
    gradeable: List[int] = []
    for index in range(n_faults):
        row = sites[index]
        if row is None:
            continue
        cone = program.cone(row)
        if not cone.detect_rows and not cone.site_observable:
            continue  # structurally unobservable: undetected, no work
        gradeable.append(index)
    if not gradeable:
        return first_detect

    block_size = max(1, int(block_patterns)) if drop_detected else range_width
    blocks = [
        range(s, min(s + block_size, pattern_stop))
        for s in range(pattern_start, pattern_stop, block_size)
    ]
    # Same pre-serialisation trick as the lanes kernel: byte-window slices
    # keep good-block extraction linear in the pattern count across blocks.
    byte_aligned = block_size % 8 == 0 and pattern_start % 8 == 0 and len(blocks) > 1
    if byte_aligned:
        total_bytes = (n_patterns + 7) // 8
        good_bytes = [lane.to_bytes(total_bytes, "little") for lane in good]

    stuck_flags = [bool(value) for value in stuck_values]
    node_prog = program.node_prog
    full = fault_lane_mask(FAULT_WORD_LANES)
    # `blocks` reports pattern blocks processed, like the pattern-packed
    # kernels: the word that survives furthest defines how much of the
    # pattern axis was walked (a no-drop run is one full-width block).
    blocks_processed = 0
    for word_lo in range(0, len(gradeable), FAULT_WORD_LANES):
        word = gradeable[word_lo : word_lo + FAULT_WORD_LANES]
        stats["fault_words"] += 1
        # Per-site lane masks: `keep` clears exactly the lanes whose fault
        # lives on the row (their good bits are replaced by `stuck`).
        site_lanes: Dict[int, int] = {}
        stuck: Dict[int, int] = {}
        union_positions: set = set()
        union_detects: set = set()
        observable_rows: set = set()
        for lane, index in enumerate(word):
            row = sites[index]
            site_lanes[row] = site_lanes.get(row, 0) | (1 << lane)
            if stuck_flags[index]:
                stuck[row] = stuck.get(row, 0) | (1 << lane)
            else:
                stuck.setdefault(row, 0)
            cone = program.cone(row)
            union_positions.update(cone.positions)
            union_detects.update(cone.detect_rows)
            if cone.site_observable:
                observable_rows.add(row)
        keep = {row: full ^ lanes for row, lanes in site_lanes.items()}
        # Node positions are topological by construction, so the sorted
        # union replays every packed cone in one consistent pass.
        positions = [node_prog[pos] for pos in sorted(union_positions)]
        check_rows = sorted(union_detects | observable_rows)
        needed = set(check_rows) | set(site_lanes)
        for _op, _out, src in positions:
            needed.update(src)
        needed_rows = sorted(needed)

        undet = fault_lane_mask(len(word))
        word_blocks = 0
        for block in blocks:
            word_blocks += 1
            active = bin(undet).count("1")
            stats["cone_evaluations"] += active
            stats["dropped_block_evaluations"] += len(word) - active
            start, width = block.start, len(block)
            block_mask = (1 << width) - 1
            if byte_aligned:
                lo, hi = start // 8, (block.stop + 7) // 8
                good_block = {
                    row: int.from_bytes(good_bytes[row][lo:hi], "little")
                    & block_mask
                    for row in needed_rows
                }
            elif start:
                good_block = {
                    row: (good[row] >> start) & block_mask for row in needed_rows
                }
            else:
                good_block = {row: good[row] & block_mask for row in needed_rows}
            for offset in range(width):
                # Broadcast each needed good bit across all fault lanes,
                # then force the fault sites lane-wise.
                gcast = {
                    row: -((bits >> offset) & 1) & full
                    for row, bits in good_block.items()
                }
                vals = dict(gcast)
                for row, keep_lanes in keep.items():
                    vals[row] = (gcast[row] & keep_lanes) | stuck[row]
                # Inline opcode dispatch, mirroring packed_first_detects
                # (see the note there); operands always resolve through
                # `vals`, which overlays faulty values on the broadcasts.
                for op, out, src in positions:
                    if op == OP_AND or op == OP_NAND:
                        acc = vals[src[0]]
                        for r in src[1:]:
                            acc &= vals[r]
                        if op == OP_NAND:
                            acc ^= full
                    elif op == OP_OR or op == OP_NOR:
                        acc = vals[src[0]]
                        for r in src[1:]:
                            acc |= vals[r]
                        if op == OP_NOR:
                            acc ^= full
                    elif op == OP_XOR or op == OP_XNOR:
                        acc = vals[src[0]]
                        for r in src[1:]:
                            acc ^= vals[r]
                        if op == OP_XNOR:
                            acc ^= full
                    elif op == OP_NOT:
                        acc = vals[src[0]] ^ full
                    elif op == OP_BUF:
                        acc = vals[src[0]]
                    elif op == OP_CONST0:
                        acc = 0
                    else:  # OP_CONST1
                        acc = full
                    keep_lanes = keep.get(out)
                    if keep_lanes is not None:
                        # The gate drives another packed fault's site:
                        # re-force those lanes so the stuck value survives.
                        acc = (acc & keep_lanes) | stuck[out]
                    vals[out] = acc
                diff = 0
                for row in check_rows:
                    diff |= vals[row] ^ gcast[row]
                # fault_lane_mask discipline: `undet` never leaves the
                # populated lanes, so tail-lane garbage cannot record.
                new = diff & undet
                if new:
                    pattern_index = start + offset
                    while new:
                        lane = _lowest_bit(new)
                        first_detect[word[lane]] = pattern_index
                        new &= new - 1
                    undet &= full ^ diff
                    if drop_detected and not undet:
                        break
            if drop_detected and not undet:
                break
        blocks_processed = max(blocks_processed, word_blocks)
    stats["blocks"] += blocks_processed
    return first_detect


class PackedFaultSimulator:
    """Bit-packed fault simulator over the compiled program.

    The cone of each fault is compiled once into flat ``(op, out_row,
    src_rows)`` triples and re-evaluated per fault-dropping block, either on
    big-int lanes (a handful of C-level big-int bitwise ops per block — no
    gate objects, no name dictionaries, no NumPy dispatch) or on the NumPy
    uint64 word table for wide pattern sets; see the module docstring for
    the mode trade-off.

    Args:
        circuit: circuit under test (compiled here if no ``program`` given).
        block_patterns: fault-dropping block size; defaults per kernel
            (:data:`DROP_BLOCK_PATTERNS` for lanes/faults,
            :data:`WORD_DROP_BLOCK_PATTERNS` for words).
        program: reuse an already-compiled program for ``circuit``.
        mode: ``"auto"``, ``"lanes"``, ``"words"`` or ``"faults"``; ``None``
            resolves through :func:`resolve_fault_mode` (``REPRO_FAULT_MODE``).
    """

    def __init__(
        self,
        circuit: Circuit,
        block_patterns: Optional[int] = None,
        program: "Optional[object]" = None,
        mode: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.mode = resolve_fault_mode(mode)
        self.block_patterns = (
            max(1, int(block_patterns)) if block_patterns is not None else None
        )
        self.program = program if program is not None else compile_circuit(circuit)
        self.last_run_stats: Dict[str, int] = _new_stats()

    def _block_patterns_for(self, kernel: str) -> int:
        if self.block_patterns is not None:
            return self.block_patterns
        return WORD_DROP_BLOCK_PATTERNS if kernel == "words" else DROP_BLOCK_PATTERNS

    def run(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults`` (see module docs)."""
        program = self.program
        stats = self.last_run_stats = _new_stats()
        early = _validate_run(patterns, program.n_inputs, faults)
        if early is not None:
            return early
        faults = _unique_faults(faults)
        n_patterns = len(patterns)
        matrix = check_pattern_matrix(patterns.matrix, program.n_inputs)
        kernel = resolve_grading_kernel(self.mode, n_patterns, len(faults))
        stats["fault_mode"] = kernel

        # Resolve fault sites once; faults on unknown nets can never be
        # detected (matching the naive simulator's empty-cone behaviour).
        sites: List[Optional[int]] = [program.row_of(f.net) for f in faults]
        stuck_values = [1 if f.stuck_value else 0 for f in faults]
        if kernel == "words":
            with obs.span(f"logic_sim/{program.name}/words"):
                good_table = evaluate_words(
                    program, pack_patterns(matrix), n_patterns
                )
            with obs.span(f"fault_sim/{program.name}/words/grade"):
                first_detect = packed_first_detects_words(
                    program,
                    good_table,
                    n_patterns,
                    sites,
                    stuck_values,
                    block_patterns=self._block_patterns_for(kernel),
                    drop_detected=drop_detected,
                    stats=stats,
                )
        else:
            # The lanes and faults kernels share the big-int good machine.
            full_mask = (1 << n_patterns) - 1
            with obs.span(f"logic_sim/{program.name}/{kernel}"):
                good = evaluate_lanes(program, pack_lanes(matrix), full_mask)
            grade = (
                packed_first_detects_faults
                if kernel == "faults"
                else packed_first_detects
            )
            with obs.span(f"fault_sim/{program.name}/{kernel}/grade"):
                first_detect = grade(
                    program,
                    good,
                    n_patterns,
                    sites,
                    stuck_values,
                    block_patterns=self._block_patterns_for(kernel),
                    drop_detected=drop_detected,
                    stats=stats,
                )
        result = _assemble(faults, first_detect, n_patterns)
        _flush_run_telemetry(stats, result)
        return result
