"""Compiled three-valued (0/1/X) implication engine for PODEM.

The dict-walking PODEM reference (:class:`repro.atpg.podem.DictPodemEngine`)
re-simulates the *entire* circuit through per-net dictionaries and scalar
``evaluate_ternary`` calls on every decision and every backtrack.  This
module lowers the whole implication machinery onto the compiled array
program of :mod:`repro.engine.compile`:

* ternary values are held in a **two-plane code** — bit 0 means "can be 0",
  bit 1 means "can be 1" — so ``0b01`` is logic 0, ``0b10`` is logic 1 and
  ``0b11`` is X.  Under this encoding Kleene ternary logic is plain integer
  bit twiddling: ``AND(a, b) = (a & b & 2) | ((a | b) & 1)``,
  ``OR(a, b) = ((a | b) & 2) | (a & b & 1)``, ``NOT(a)`` swaps the planes.
* the good and faulty machines are two flat per-row lists over the compiled
  program; the fault site row is forced to the stuck code exactly like the
  packed fault simulator forces its lanes.
* implication is **incremental**: assigning (or retracting) one test pin
  re-evaluates only that pin's fanout cone — the same cached
  :meth:`~repro.engine.compile.CompiledCircuit.cone` indices the fault
  simulator uses — instead of the whole circuit.
* the D-frontier is extracted array-wise from the *fault cone* only (a D can
  only originate at the fault site, so no gate outside the cone ever
  qualifies), and X-path reachability is one reverse-topological sweep over
  the cone instead of a breadth-first search per frontier gate.

The decision procedure itself (:meth:`CompiledTernaryPodem.run`) mirrors the
dict reference step for step — same objective selection, same backtrace,
same backtrack bookkeeping — so the generated cubes, the
detected/untestable/aborted classification and even the decision/backtrack
counters are bit-identical; ``tests/test_ternary.py`` asserts this on every
benchmark profile.  The engine works purely on rows and integers (no
:mod:`repro.atpg` types), so the sharded backend can ship it to worker
processes alongside the compiled program.

The ``(backtracks, decisions)`` pair still rides in the raw result tuple —
it is both the backtrack-limit input and part of the cross-process payload
— but it is no longer the telemetry channel: :mod:`repro.obs` records the
``podem.*`` counters at the point a result is *consumed*
(:meth:`repro.atpg.podem.PodemEngine.result_from_raw`), never here inside
the search.  Distributed schedulers prefetch speculatively and stale-lease
retries may run a fault twice, so recording inside ``run()`` would
double-count; recording at consumption keeps the counters exactly equal
across the single-process, sharded and cluster paths.

A generated cube is not the end of the pipeline: the ATPG driver
immediately fault-simulates a filled copy of it against the remaining fault
list (fault dropping).  That verification sweep is a one-pattern/many-fault
shape, the exact dual of what this engine optimises, and it is served by
the fault-parallel grading kernel
(:func:`~repro.engine.fault.packed_first_detects_faults`) which packs 64
remaining faults per machine word — so both halves of the PODEM loop now
run wide instead of one-at-a-time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import envvars
from repro.engine.compile import (
    CompiledCircuit,
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
)

#: Environment variable forcing the PODEM implication implementation
#: process-wide (``dict`` keeps the reference oracle, ``compiled`` forces
#: this engine even under the naive backend).
ATPG_MODE_ENV_VAR = envvars.ATPG_MODE.name

ATPG_MODES = envvars.ATPG_MODES

#: Two-plane ternary codes: bit 0 = "can be 0", bit 1 = "can be 1".
T_ZERO = 0b01
T_ONE = 0b10
T_X = 0b11

#: Cube-bit (0/1/2) -> ternary code; inverse of :data:`_BIT_OF_CODE`.
_CODE_OF_BIT = (T_ZERO, T_ONE, T_X)
#: Ternary code -> cube bit (codes are 1..3; index 0 is unused).
_BIT_OF_CODE = (None, 0, 1, 2)

#: Raw engine result: ``(status, cube_bits, backtracks, decisions)`` with
#: ``cube_bits`` a 0/1/2 list over the test-pin rows (``None`` unless
#: detected).  This is what pool workers pickle back to the parent.
RawPodemResult = Tuple[str, Optional[List[int]], int, int]


def resolve_atpg_mode(mode: Optional[str] = None) -> str:
    """Resolve a PODEM mode (explicit arg > ``REPRO_ATPG_MODE`` > auto).

    Raises:
        ValueError: for names outside :data:`ATPG_MODES`.
    """
    if mode is None:
        mode = envvars.ATPG_MODE.read() or "auto"
    if mode not in ATPG_MODES:
        raise ValueError(f"unknown ATPG mode {mode!r}; choose from {ATPG_MODES}")
    return mode


def code_of_bit(bit: int) -> int:
    """Ternary code for a cube bit (0 -> ``T_ZERO``, 1 -> ``T_ONE``, 2/X -> ``T_X``)."""
    return _CODE_OF_BIT[bit]


def bit_of_code(code: int) -> int:
    """Cube bit (0/1/2) for a ternary code."""
    return _BIT_OF_CODE[code]


class CompiledTernaryPodem:
    """PODEM over the compiled program with incremental ternary implication.

    One engine instance serves any number of faults on its circuit: state is
    rebuilt per fault from a cached all-X good-machine baseline, then every
    decision/backtrack updates only the changed pin's fanout cone.

    Args:
        program: compiled circuit (shared with the packed fault simulator,
            so the per-row cone cache is shared too).
        backtrack_limit: abort threshold, as in the dict reference.
    """

    def __init__(self, program: CompiledCircuit, backtrack_limit: int = 100) -> None:
        self.program = program
        self.backtrack_limit = backtrack_limit
        self._node_prog = program.node_prog
        self._n_inputs = program.n_inputs
        self._observable = program._observable_set
        self._levels = program.node_levels
        self._out_node = program.out_node
        self._base_good: Optional[List[int]] = None
        # Per-fault state, (re)built by reset().
        self._good: List[int] = []
        self._faulty: List[int] = []
        self._d_rows: Set[int] = set()
        self._site_row = -1
        self._stuck_bit = 0
        self._stuck_code = T_ZERO
        self._site_cone = None

    # -- kernel ------------------------------------------------------------
    def _eval_single(self, positions, vals: List[int]) -> None:
        """Evaluate ``positions`` (topological) on one machine's value list.

        Inline opcode dispatch on purpose, mirroring ``packed_first_detects``
        (see the note there): the two-plane ops are a handful of integer
        instructions each, and routing them through a shared helper
        measurably slows the hot path.  The fault site row is forced to the
        stuck code, matching how the dict reference overrides the faulty
        machine at the site.
        """
        node_prog = self._node_prog
        site = self._site_row
        stuck = self._stuck_code
        for pos in positions:
            op, out, src = node_prog[pos]
            if op == OP_AND or op == OP_NAND:
                a = vals[src[0]]
                for r in src[1:]:
                    b = vals[r]
                    a = (a & b & 2) | ((a | b) & 1)
                if op == OP_NAND:
                    a = ((a & 1) << 1) | (a >> 1)
            elif op == OP_OR or op == OP_NOR:
                a = vals[src[0]]
                for r in src[1:]:
                    b = vals[r]
                    a = ((a | b) & 2) | (a & b & 1)
                if op == OP_NOR:
                    a = ((a & 1) << 1) | (a >> 1)
            elif op == OP_XOR or op == OP_XNOR:
                a = vals[src[0]]
                for r in src[1:]:
                    b = vals[r]
                    a = 3 if (a == 3 or b == 3) else 1 + ((a ^ b) >> 1)
                if op == OP_XNOR:
                    a = ((a & 1) << 1) | (a >> 1)
            elif op == OP_NOT:
                a = vals[src[0]]
                a = ((a & 1) << 1) | (a >> 1)
            elif op == OP_BUF:
                a = vals[src[0]]
            elif op == OP_CONST0:
                a = T_ZERO
            else:  # OP_CONST1
                a = T_ONE
            vals[out] = a if out != site else stuck

    def _eval_pair(self, positions) -> None:
        """Evaluate ``positions`` on the good and faulty machines together.

        Also maintains the detected-output set: any written row that is
        observable has its D membership refreshed.
        """
        node_prog = self._node_prog
        good = self._good
        faulty = self._faulty
        site = self._site_row
        stuck = self._stuck_code
        observable = self._observable
        d_rows = self._d_rows
        for pos in positions:
            op, out, src = node_prog[pos]
            if op == OP_AND or op == OP_NAND:
                g = good[src[0]]
                f = faulty[src[0]]
                for r in src[1:]:
                    b = good[r]
                    g = (g & b & 2) | ((g | b) & 1)
                    b = faulty[r]
                    f = (f & b & 2) | ((f | b) & 1)
                if op == OP_NAND:
                    g = ((g & 1) << 1) | (g >> 1)
                    f = ((f & 1) << 1) | (f >> 1)
            elif op == OP_OR or op == OP_NOR:
                g = good[src[0]]
                f = faulty[src[0]]
                for r in src[1:]:
                    b = good[r]
                    g = ((g | b) & 2) | (g & b & 1)
                    b = faulty[r]
                    f = ((f | b) & 2) | (f & b & 1)
                if op == OP_NOR:
                    g = ((g & 1) << 1) | (g >> 1)
                    f = ((f & 1) << 1) | (f >> 1)
            elif op == OP_XOR or op == OP_XNOR:
                g = good[src[0]]
                f = faulty[src[0]]
                for r in src[1:]:
                    b = good[r]
                    g = 3 if (g == 3 or b == 3) else 1 + ((g ^ b) >> 1)
                    b = faulty[r]
                    f = 3 if (f == 3 or b == 3) else 1 + ((f ^ b) >> 1)
                if op == OP_XNOR:
                    g = ((g & 1) << 1) | (g >> 1)
                    f = ((f & 1) << 1) | (f >> 1)
            elif op == OP_NOT:
                g = good[src[0]]
                g = ((g & 1) << 1) | (g >> 1)
                f = faulty[src[0]]
                f = ((f & 1) << 1) | (f >> 1)
            elif op == OP_BUF:
                g = good[src[0]]
                f = faulty[src[0]]
            elif op == OP_CONST0:
                g = f = T_ZERO
            else:  # OP_CONST1
                g = f = T_ONE
            if out == site:
                f = stuck
            good[out] = g
            faulty[out] = f
            if out in observable:
                if (g ^ f) == 3:
                    d_rows.add(out)
                else:
                    d_rows.discard(out)

    # -- per-fault state ---------------------------------------------------
    def reset(self, site_row: int, stuck_value: int) -> None:
        """Rebuild the implication state for one fault, all pins at X.

        Args:
            site_row: value-table row of the fault site.
            stuck_value: 0 or 1.
        """
        program = self.program
        if self._base_good is None:
            base = [T_X] * program.n_nets
            self._site_row = -1  # no forcing during the baseline pass
            self._eval_single(range(len(self._node_prog)), base)
            self._base_good = base
        self._site_row = site_row
        self._stuck_bit = 1 if stuck_value else 0
        self._stuck_code = T_ONE if stuck_value else T_ZERO
        self._site_cone = program.cone(site_row)
        good = self._good = list(self._base_good)
        faulty = self._faulty = list(self._base_good)
        faulty[site_row] = self._stuck_code
        self._eval_single(self._site_cone.positions, faulty)
        d_rows = self._d_rows = set()
        for row in self._observable:
            if (good[row] ^ faulty[row]) == 3:
                d_rows.add(row)

    def assign(self, pin_row: int, value: Optional[int]) -> None:
        """Set a test pin to 0/1 (or back to X with ``None``) and re-imply.

        Only the pin's fanout cone is re-evaluated; everything else is
        untouched by construction.
        """
        code = T_X if value is None else _CODE_OF_BIT[value]
        self._good[pin_row] = code
        self._faulty[pin_row] = self._stuck_code if pin_row == self._site_row else code
        if pin_row in self._observable:
            if (self._good[pin_row] ^ self._faulty[pin_row]) == 3:
                self._d_rows.add(pin_row)
            else:
                self._d_rows.discard(pin_row)
        self._eval_pair(self.program.cone(pin_row).positions)

    @property
    def detected(self) -> bool:
        """Whether any observable row currently carries a D."""
        return bool(self._d_rows)

    def machine_codes(self) -> Tuple[List[int], List[int]]:
        """Copies of the (good, faulty) per-row ternary codes (for tests)."""
        return list(self._good), list(self._faulty)

    # -- analysis ----------------------------------------------------------
    def d_frontier(self) -> List[int]:
        """Node positions whose output is still X/X but an input carries a D.

        Restricted to the fault cone — a D can only originate at the fault
        site, so nothing outside the cone ever qualifies; the relative order
        is topological, matching the dict reference's full-circuit walk.
        """
        node_prog = self._node_prog
        good = self._good
        faulty = self._faulty
        frontier: List[int] = []
        for pos in self._site_cone.positions:
            _, out, src = node_prog[pos]
            g = good[out]
            f = faulty[out]
            if (g ^ f) == 3:
                continue  # output already carries the D
            if g != 3 and f != 3:
                continue  # fully specified without a D: the path died here
            for r in src:
                if (good[r] ^ faulty[r]) == 3:
                    frontier.append(pos)
                    break
        return frontier

    def _x_path_reach(self) -> Set[int]:
        """Rows (within the fault cone) from which an X-path reaches an output.

        One reverse-topological sweep replaces the reference's per-gate BFS:
        a row reaches an output iff it is observable itself, or some reader's
        output row is still *unblocked* (X in either machine, or carrying a
        D) and reaches an output.
        """
        node_prog = self._node_prog
        good = self._good
        faulty = self._faulty
        observable = self._observable
        readers = self.program.reader_lists
        reach: Set[int] = set()
        for pos in reversed(self._site_cone.positions):
            out = node_prog[pos][1]
            if out in observable:
                reach.add(out)
                continue
            for reader_pos in readers[out]:
                o = node_prog[reader_pos][1]
                if o in reach:
                    g = good[o]
                    f = faulty[o]
                    if g == 3 or f == 3 or (g ^ f) == 3:
                        reach.add(out)
                        break
        return reach

    def choose_objective(self) -> Optional[Tuple[int, int]]:
        """Next ``(row, value)`` objective, or ``None`` for a dead branch."""
        good = self._good
        site = self._site_row
        site_code = good[site]
        if site_code == T_X:
            return site, 1 - self._stuck_bit
        if site_code == self._stuck_code:
            return None  # fault cannot be excited under the current assignment
        frontier = self.d_frontier()
        if not frontier:
            return None
        frontier.sort(key=self._levels.__getitem__, reverse=True)
        reach = self._x_path_reach()
        node_prog = self._node_prog
        for pos in frontier:
            op, out, src = node_prog[pos]
            if out not in reach:
                continue
            for r in src:
                if good[r] == T_X:
                    if op == OP_OR or op == OP_NOR:
                        value = 0  # non-controlling value of OR-like gates
                    else:
                        value = 1  # AND-like gates, and XOR-like "any definite value"
                    return r, value
        return None

    def backtrace(self, row: int, value: int) -> Optional[Tuple[int, int]]:
        """Walk an objective back to an unassigned test pin, as the reference does."""
        good = self._good
        node_prog = self._node_prog
        out_node = self._out_node
        current, target = row, value
        guard = 0
        limit = len(node_prog) + self._n_inputs + 1
        while current >= self._n_inputs:
            guard += 1
            if guard > limit:
                return None
            op, _, src = node_prog[out_node[current]]
            if op == OP_CONST0 or op == OP_CONST1:
                return None
            if op == OP_NOT or op == OP_NAND or op == OP_NOR or op == OP_XNOR:
                target ^= 1
            chosen = -1
            for r in src:
                if good[r] == T_X:
                    chosen = r
                    break
            if chosen < 0:
                return None
            current = chosen
        if good[current] != T_X:
            return None
        return current, target

    # -- main search -------------------------------------------------------
    def run(self, site_row: int, stuck_value: int) -> RawPodemResult:
        """Search for a test cube detecting a stuck-at fault.

        The control flow is a line-for-line mirror of the dict reference's
        ``generate`` loop, with the full re-implication replaced by the
        incremental cone updates of :meth:`assign`.

        Returns:
            ``(status, cube_bits, backtracks, decisions)`` with ``status``
            one of ``"detected"`` / ``"untestable"`` / ``"aborted"`` and
            ``cube_bits`` a 0/1/2 list over the test-pin rows (``None``
            unless detected).
        """
        self.reset(site_row, stuck_value)
        assignment: Dict[int, int] = {}
        decisions: List[List[int]] = []  # [pin_row, value, exhausted]
        backtracks = 0
        total_decisions = 0

        while True:
            if self._d_rows:
                bits = [2] * self._n_inputs
                for pin, value in assignment.items():
                    bits[pin] = value
                return "detected", bits, backtracks, total_decisions

            objective = self.choose_objective()
            next_assignment: Optional[Tuple[int, int]] = None
            if objective is not None:
                next_assignment = self.backtrace(objective[0], objective[1])

            if next_assignment is None:
                # Dead branch: undo decisions until one still has an untried value.
                while decisions and decisions[-1][2]:
                    pin, __, __ = decisions.pop()
                    assignment.pop(pin, None)
                    self.assign(pin, None)
                if not decisions:
                    return "untestable", None, backtracks, total_decisions
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return "aborted", None, backtracks, total_decisions
                decisions[-1][1] ^= 1
                decisions[-1][2] = True
                assignment[decisions[-1][0]] = decisions[-1][1]
                self.assign(decisions[-1][0], decisions[-1][1])
                continue

            pin, value = next_assignment
            assignment[pin] = value
            decisions.append([pin, value, False])
            total_decisions += 1
            self.assign(pin, value)
