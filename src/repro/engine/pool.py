"""Worker-count resolution and the shared spawn-safe process pool.

Every multi-process execution path in the package — the sharded fault-sim
backend, sharded PODEM generation, the experiment runner's parallel cells and
the cluster executor's ``mp`` transport — sizes itself through the same
resolution chain (explicit argument > :func:`set_default_jobs` >
``REPRO_JOBS`` > ``os.cpu_count()``) and shares one lazily created
spawn-context pool.  Keeping the lifecycle here, below both
:mod:`repro.engine.sharded` and :mod:`repro.cluster`, lets either layer use
the pool without importing the other.

The pool is created on first use and shut down cleanly at interpreter exit.
Whenever a pool cannot be used — ``jobs=1``, running inside a pool worker
already, spawn failure, workers that cannot import the package — callers
receive ``None`` and must fall back to in-process execution, so results
never depend on the environment being pool-friendly.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from typing import Optional

from repro import envvars
from repro.envvars import parse_jobs
from repro.obs import recorder as obs

#: Environment variable sizing the worker pool (``--jobs`` on the runner).
JOBS_ENV_VAR = envvars.JOBS.name

#: Seconds to wait for the pool's import smoke test / one chunk result.
PING_TIMEOUT = 30.0
CHUNK_TIMEOUT = 600.0

_default_jobs: Optional[int] = None


def default_jobs() -> int:
    """Worker count used when none is requested explicitly."""
    if _default_jobs is not None:
        return _default_jobs
    env = envvars.JOBS.read()
    if env is not None:
        return env
    return os.cpu_count() or 1


def set_default_jobs(jobs: Optional[int]) -> Optional[int]:
    """Set (or with ``None`` clear) the process-wide default worker count.

    Returns:
        The previous override, so callers can restore it (the experiment
        runner's ``--jobs`` flag uses this exactly like ``--backend`` uses
        :func:`~repro.engine.backend.set_default_backend`).

    Raises:
        ValueError: for non-integer or non-positive counts.
    """
    global _default_jobs
    previous = _default_jobs
    _default_jobs = parse_jobs(jobs) if jobs is not None else None
    return previous


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count (explicit arg > default > env > cpu count).

    Raises:
        ValueError: for non-integer or non-positive explicit counts.
    """
    if jobs is not None:
        return parse_jobs(jobs)
    return default_jobs()


# -- worker pool -------------------------------------------------------------
_pool = None
_pool_jobs = 0
_pool_broken = False


def _ping() -> int:
    """Pool smoke test: proves workers can import this module."""
    return os.getpid()


def package_src_dir() -> str:
    """Directory that must be on ``sys.path`` for workers to import repro."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _spawn_main_is_safe() -> bool:
    """Whether spawned children can re-import the parent's ``__main__``.

    Spawn re-runs the parent's main module in every worker; when that module
    has a ``__file__`` that is not a real path (``<stdin>``, interactive
    sessions), every worker dies on startup — detect that here instead of
    burning the ping timeout on a respawn loop.
    """
    import sys

    main_module = sys.modules.get("__main__")
    main_file = getattr(main_module, "__file__", None)
    return main_file is None or os.path.exists(main_file)


def worker_pool(jobs: int):
    """The shared spawn-context process pool, or ``None`` for inline mode.

    ``None`` is returned — and callers must fall back to in-process
    execution — when ``jobs <= 1``, when called from inside a pool worker
    (never nest pools), or when pool creation failed once already.
    """
    global _pool, _pool_jobs, _pool_broken
    jobs = max(1, int(jobs))
    if jobs <= 1 or _pool_broken:
        return None
    if multiprocessing.parent_process() is not None:
        return None
    if _pool is not None and _pool_jobs == jobs:
        return _pool
    if not _spawn_main_is_safe():
        return None
    shutdown_worker_pool()

    # Spawned children re-import this module from scratch; when the package
    # is only importable through the parent's sys.path (the usual
    # ``PYTHONPATH=src`` development setup), export that path to them.
    previous = os.environ.get("PYTHONPATH")
    src_dir = package_src_dir()
    parts = previous.split(os.pathsep) if previous else []
    if src_dir not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_dir] + parts)
    pool = None
    try:
        pool = multiprocessing.get_context("spawn").Pool(processes=jobs)
        pool.apply_async(_ping).get(timeout=PING_TIMEOUT)
    except Exception as err:
        obs.event("pool_unavailable", detail=repr(err))
        _pool_broken = True
        if pool is not None:
            pool.terminate()
            pool.join()
        return None
    finally:
        if previous is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = previous
    _pool, _pool_jobs = pool, jobs
    return pool


def shutdown_worker_pool() -> None:
    """Terminate the shared pool (registered with :mod:`atexit`)."""
    global _pool, _pool_jobs
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_jobs = 0


def discard_broken_pool() -> None:
    """Drop the pool after a task failure so the next run starts fresh."""
    global _pool_broken
    shutdown_worker_pool()
    _pool_broken = True


atexit.register(shutdown_worker_pool)
