"""Capacitance-weighted switching activity.

Given an ordered, filled pattern set, the logic simulator tells us which nets
toggle at each pattern boundary; weighting each toggle by the net's extracted
capacitance gives the switched capacitance per capture cycle, the quantity
dynamic power is proportional to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuit.netlist import Circuit
from repro.circuit.simulator import check_pattern_matrix
from repro.cubes.cube import TestSet
from repro.engine.backend import get_backend
from repro.power.capacitance import CapacitanceModel, extract_capacitances


@dataclass
class SwitchingActivity:
    """Per-boundary switching activity of a pattern set on a circuit.

    Attributes:
        circuit_name: circuit the activity belongs to.
        toggles_per_boundary: number of nets toggling at each boundary.
        switched_capacitance_ff: capacitance-weighted toggles per boundary (fF).
        input_toggles_per_boundary: test-pin toggles per boundary (the
            quantity DP-fill optimises), for correlation studies.
    """

    circuit_name: str
    toggles_per_boundary: np.ndarray
    switched_capacitance_ff: np.ndarray
    input_toggles_per_boundary: np.ndarray

    @property
    def peak_toggles(self) -> int:
        """Largest per-boundary circuit toggle count."""
        return int(self.toggles_per_boundary.max()) if self.toggles_per_boundary.size else 0

    @property
    def peak_switched_capacitance_ff(self) -> float:
        """Largest per-boundary switched capacitance (fF)."""
        return float(self.switched_capacitance_ff.max()) if self.switched_capacitance_ff.size else 0.0

    @property
    def total_switched_capacitance_ff(self) -> float:
        """Total switched capacitance over the whole test (fF)."""
        return float(self.switched_capacitance_ff.sum())

    def input_circuit_correlation(self) -> float:
        """Pearson correlation between input toggles and circuit toggles.

        The paper's argument (via ref. [20]) is that this correlation is
        strong, which is why minimising input toggles reduces circuit power.
        Returns 0.0 when either series is constant.
        """
        a = self.input_toggles_per_boundary.astype(np.float64)
        b = self.toggles_per_boundary.astype(np.float64)
        if a.size < 2 or a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])


def weighted_switching_activity(
    circuit: Circuit,
    patterns: TestSet,
    capacitance: Optional[CapacitanceModel] = None,
    simulator: Optional[object] = None,
) -> SwitchingActivity:
    """Compute per-boundary (capture-cycle) switching activity.

    Args:
        circuit: circuit under test.
        patterns: ordered, fully specified pattern set over the test pins.
        capacitance: per-net capacitances; extracted with defaults if omitted.
        simulator: optionally reuse a prebuilt logic simulator — any engine
            backend simulator or the naive ``LogicSimulator`` (the experiment
            harness evaluates many fills on the same circuit).  When omitted,
            one is resolved through the backend registry.  Simulators
            exposing ``net_value_matrix`` (both built-in backends do) skip
            the per-net dictionary round trip entirely.

    Raises:
        ValueError: if the pattern set still contains X bits.
    """
    if not patterns.is_fully_specified():
        raise ValueError("switching activity requires fully specified patterns")
    if len(patterns) <= 1:
        # No boundaries: skip the simulation entirely, but validate the
        # circuit and the pattern shape the same way a full run would.
        circuit.validate()
        check_pattern_matrix(patterns.matrix, circuit.n_test_pins)
        empty = np.zeros(0)
        return SwitchingActivity(circuit.name, empty.astype(np.int64), empty, empty.astype(np.int64))
    capacitance = capacitance or extract_capacitances(circuit)
    if simulator is None:
        simulator = get_backend().logic_simulator(circuit)

    matrix_getter = getattr(simulator, "net_value_matrix", None)
    if matrix_getter is not None:
        nets, value_matrix = matrix_getter(patterns.matrix)
    else:  # third-party simulator: fall back to the net dictionary surface
        values = simulator.simulate(patterns.matrix)
        nets = list(values.keys())
        value_matrix = np.vstack([values[net] for net in nets])

    toggle_matrix = value_matrix[:, 1:] != value_matrix[:, :-1]
    caps = capacitance.as_array(nets)

    toggles_per_boundary = toggle_matrix.sum(axis=0).astype(np.int64)
    switched_cap = (toggle_matrix * caps[:, None]).sum(axis=0)

    pin_matrix = patterns.matrix
    input_toggles = np.count_nonzero(pin_matrix[1:] != pin_matrix[:-1], axis=1).astype(np.int64)

    return SwitchingActivity(
        circuit_name=circuit.name,
        toggles_per_boundary=toggles_per_boundary,
        switched_capacitance_ff=switched_cap,
        input_toggles_per_boundary=input_toggles,
    )
