"""Capture-power estimation.

Dynamic power of a CMOS net is ``0.5 * C * Vdd^2 * f`` per transition, so
the per-cycle power of a capture event is a capacitance-weighted count of the
nets that toggle.  The package provides:

* :mod:`capacitance` — a synthetic "extraction" producing per-net
  capacitances from fan-out and deterministic wire-length variation (the
  stand-in for the paper's SoCEncounter place-and-route + RC extraction),
* :mod:`switching` — capacitance-weighted switching-activity computation on
  top of the pattern-parallel logic simulator,
* :mod:`estimator` — the peak/average power report used by Table VI.
"""

from repro.power.capacitance import CapacitanceModel, TechnologyParameters, extract_capacitances
from repro.power.estimator import PowerEstimator, PowerReport
from repro.power.switching import SwitchingActivity, weighted_switching_activity

__all__ = [
    "TechnologyParameters",
    "CapacitanceModel",
    "extract_capacitances",
    "SwitchingActivity",
    "weighted_switching_activity",
    "PowerEstimator",
    "PowerReport",
]
