"""Synthetic interconnect-capacitance extraction.

The paper extracts interconnect capacitances from a placed-and-routed 45 nm
layout.  Offline, the reproduction models the two dominant contributions per
net with technology-flavoured constants:

* **gate-input load** — every fan-out pin adds one gate-input capacitance;
* **wire load** — wirelength grows roughly with fan-out (a net that feeds
  many pins must physically span them), with a deterministic per-net
  variation standing in for placement spread.

Absolute accuracy is not the goal; what Table VI needs is a per-net weight
that is positive, fan-out-correlated and fixed across the techniques being
compared, so the *ranking* of techniques is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class TechnologyParameters:
    """Technology constants used by the capacitance and power models.

    The defaults are representative of a generic 45 nm standard-cell library
    (the paper's node): femtofarad-scale pin and wire capacitances, 1.1 V
    supply and a 500 MHz at-speed capture clock.

    Attributes:
        gate_input_cap_ff: capacitance of one gate input pin, in fF.
        wire_cap_per_fanout_ff: incremental wire capacitance per fan-out, in fF.
        base_wire_cap_ff: minimum wire capacitance of any routed net, in fF.
        wire_variation: relative spread of the per-net wire-length lottery.
        supply_voltage: Vdd in volts.
        clock_frequency_hz: at-speed capture clock frequency.
    """

    gate_input_cap_ff: float = 1.8
    wire_cap_per_fanout_ff: float = 1.1
    base_wire_cap_ff: float = 0.9
    wire_variation: float = 0.35
    supply_voltage: float = 1.1
    clock_frequency_hz: float = 500e6

    def __post_init__(self) -> None:
        if min(self.gate_input_cap_ff, self.wire_cap_per_fanout_ff, self.base_wire_cap_ff) <= 0:
            raise ValueError("capacitance constants must be positive")
        if not 0.0 <= self.wire_variation < 1.0:
            raise ValueError("wire_variation must be in [0, 1)")
        if self.supply_voltage <= 0 or self.clock_frequency_hz <= 0:
            raise ValueError("supply voltage and clock frequency must be positive")


@dataclass
class CapacitanceModel:
    """Per-net capacitances of one circuit (in femtofarads)."""

    circuit_name: str
    technology: TechnologyParameters
    net_capacitance_ff: Dict[str, float]

    @property
    def total_capacitance_ff(self) -> float:
        """Sum of all net capacitances."""
        return float(sum(self.net_capacitance_ff.values()))

    def capacitance_of(self, net: str) -> float:
        """Capacitance of one net in fF."""
        return self.net_capacitance_ff[net]

    def as_array(self, nets) -> np.ndarray:
        """Capacitances of ``nets`` as an array, in the given order."""
        return np.array([self.net_capacitance_ff[n] for n in nets], dtype=np.float64)


def extract_capacitances(
    circuit: Circuit,
    technology: TechnologyParameters = TechnologyParameters(),
    seed: int = 0,
) -> CapacitanceModel:
    """Produce a deterministic synthetic capacitance model for ``circuit``.

    Args:
        circuit: the circuit whose nets are to be "extracted".
        technology: technology constants.
        seed: seed of the per-net wire-length variation (deterministic, so the
            same circuit always gets the same extraction — comparisons between
            fills/orderings see identical weights).
    """
    rng = np.random.default_rng(seed)
    fanout = circuit.fanout_counts()
    capacitances: Dict[str, float] = {}
    for net in circuit.nets():
        readers = max(1, fanout.get(net, 0))
        gate_load = technology.gate_input_cap_ff * readers
        wire_lottery = 1.0 + technology.wire_variation * (2.0 * rng.random() - 1.0)
        wire_load = (
            technology.base_wire_cap_ff
            + technology.wire_cap_per_fanout_ff * (readers ** 1.15)
        ) * wire_lottery
        capacitances[net] = gate_load + wire_load
    return CapacitanceModel(
        circuit_name=circuit.name,
        technology=technology,
        net_capacitance_ff=capacitances,
    )
