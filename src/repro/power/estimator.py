"""Peak and average capture-power estimation (the paper's Table VI metric).

Dynamic power dissipated in one capture cycle is

``P = 0.5 * Vdd^2 * f_clk * C_switched``

where ``C_switched`` is the capacitance-weighted toggle count of that cycle.
The estimator evaluates this for every pattern boundary of a filled test set
and reports the peak (the paper's metric), the average and the underlying
activity, so the experiment harness can reproduce Table VI and the
input-vs-circuit-toggle correlation argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.circuit.netlist import Circuit
from repro.cubes.cube import TestSet
from repro.engine.backend import SimulationBackend, get_backend
from repro.power.capacitance import CapacitanceModel, TechnologyParameters, extract_capacitances
from repro.power.switching import SwitchingActivity, weighted_switching_activity


@dataclass
class PowerReport:
    """Capture-power figures for one filled pattern set on one circuit.

    Attributes:
        circuit_name: circuit under test.
        peak_power_uw: maximum per-capture-cycle dynamic power, in microwatts.
        average_power_uw: mean per-capture-cycle dynamic power, in microwatts.
        peak_boundary: index of the boundary where the peak occurs (-1 when
            there are no boundaries).
        activity: the underlying switching activity.
    """

    circuit_name: str
    peak_power_uw: float
    average_power_uw: float
    peak_boundary: int
    activity: SwitchingActivity

    @property
    def peak_input_toggles(self) -> int:
        """Peak test-pin toggles of the same pattern set (for correlation tables)."""
        profile = self.activity.input_toggles_per_boundary
        return int(profile.max()) if profile.size else 0


class PowerEstimator:
    """Reusable power estimator for one circuit.

    Building the estimator extracts capacitances and compiles the logic
    simulator once; :meth:`estimate` can then be called for every
    fill/ordering combination cheaply, which is what the Table VI sweep does.

    Args:
        circuit: circuit under test.
        technology: technology constants (45 nm-flavoured defaults).
        seed: seed of the synthetic capacitance extraction.
        backend: simulation backend name (or instance) used for the
            underlying logic simulation; the registry default applies when
            omitted.  Both built-in backends produce bit-identical power
            figures.
    """

    def __init__(
        self,
        circuit: Circuit,
        technology: TechnologyParameters = TechnologyParameters(),
        seed: int = 0,
        backend: Union[str, SimulationBackend, None] = None,
    ) -> None:
        self.circuit = circuit
        self.technology = technology
        self.capacitance: CapacitanceModel = extract_capacitances(circuit, technology, seed=seed)
        self._simulator = get_backend(backend).logic_simulator(circuit)

    def estimate(self, patterns: TestSet) -> PowerReport:
        """Estimate capture power for an ordered, filled pattern set."""
        activity = weighted_switching_activity(
            self.circuit, patterns, capacitance=self.capacitance, simulator=self._simulator
        )
        switched_farads = activity.switched_capacitance_ff * 1e-15
        power_watts = (
            0.5
            * self.technology.supply_voltage ** 2
            * self.technology.clock_frequency_hz
            * switched_farads
        )
        power_uw = power_watts * 1e6
        if power_uw.size:
            peak_index = int(np.argmax(power_uw))
            peak = float(power_uw[peak_index])
            average = float(power_uw.mean())
        else:
            peak_index, peak, average = -1, 0.0, 0.0
        return PowerReport(
            circuit_name=self.circuit.name,
            peak_power_uw=peak,
            average_power_uw=average,
            peak_boundary=peak_index,
            activity=activity,
        )
