"""Scan-chain construction and shift-order bookkeeping.

In a full-scan design every flip-flop is replaced by a scan cell; the cells
are stitched into one or more shift registers (scan chains).  For this
reproduction the interesting consequences are:

* a test cube's flip-flop portion must be *shifted* in, one bit per clock,
  so the shift order determines shift-power (the MT-fill baseline minimises
  exactly this), and
* the scan configuration defines the mapping between cube bit positions and
  physical cells, which the test-application model uses to compute per-cycle
  toggle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class ScanChain:
    """One scan chain: an ordered list of scan-cell (flip-flop) names.

    The first entry is closest to the scan-in pin (it receives the *last*
    shifted bit); the last entry drives scan-out.
    """

    name: str
    cells: tuple

    def __len__(self) -> int:
        return len(self.cells)

    def shift_sequence(self, cell_values: Dict[str, int]) -> List[int]:
        """Values that must be presented at scan-in, in shift order.

        Bit ``i`` of the returned list is shifted in on cycle ``i``; after
        ``len(self)`` cycles cell ``j`` holds ``cell_values[self.cells[j]]``.
        """
        return [int(cell_values[cell]) for cell in reversed(self.cells)]

    def shift_transitions(self, cell_values: Dict[str, int]) -> int:
        """Number of transitions seen at scan-in while loading these values.

        This is the classic weighted-transition metric's unweighted core and
        is what MT-fill minimises.
        """
        sequence = self.shift_sequence(cell_values)
        return int(np.count_nonzero(np.diff(np.asarray(sequence))))


@dataclass
class ScanConfiguration:
    """A circuit's complete scan configuration.

    Attributes:
        circuit_name: the circuit the chains belong to.
        chains: the scan chains; together they cover every flip-flop exactly once.
        cell_to_chain: mapping from cell name to (chain index, position).
    """

    circuit_name: str
    chains: List[ScanChain]
    cell_to_chain: Dict[str, tuple] = field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        """Total number of scan cells."""
        return sum(len(chain) for chain in self.chains)

    @property
    def max_chain_length(self) -> int:
        """Length of the longest chain (the shift-cycle count per pattern)."""
        return max((len(chain) for chain in self.chains), default=0)

    def shift_cycles_per_pattern(self) -> int:
        """Shift cycles needed to load one pattern (all chains shift in parallel)."""
        return self.max_chain_length


def build_scan_chains(
    circuit: Circuit,
    n_chains: int = 1,
    order: str = "insertion",
    seed: int = 0,
) -> ScanConfiguration:
    """Stitch the circuit's flip-flops into scan chains.

    Args:
        circuit: the circuit to scan-insert.
        n_chains: number of balanced chains to build.
        order: ``"insertion"`` keeps the netlist flip-flop order (a stand-in
            for a layout-driven stitching), ``"random"`` shuffles it with
            ``seed`` (useful for studying the sensitivity of shift power to
            stitching order).
        seed: RNG seed for ``order="random"``.

    Returns:
        A :class:`ScanConfiguration` covering every flip-flop exactly once.
    """
    if n_chains < 1:
        raise ValueError("n_chains must be at least 1")
    if order not in ("insertion", "random"):
        raise ValueError("order must be 'insertion' or 'random'")
    cells = [ff.output for ff in circuit.flip_flops]
    if order == "random":
        rng = np.random.default_rng(seed)
        cells = [cells[i] for i in rng.permutation(len(cells))]

    chains: List[ScanChain] = []
    cell_to_chain: Dict[str, tuple] = {}
    n_chains = min(n_chains, max(len(cells), 1))
    for index in range(n_chains):
        members = cells[index::n_chains]
        chain = ScanChain(name=f"chain{index}", cells=tuple(members))
        for position, cell in enumerate(members):
            cell_to_chain[cell] = (index, position)
        chains.append(chain)
    return ScanConfiguration(circuit_name=circuit.name, chains=chains, cell_to_chain=cell_to_chain)
