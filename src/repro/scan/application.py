"""Scan test application: shift/launch/capture scheduling for LOS and LOC.

The paper's setting is Launch-Off-Shift (LOS) at-speed testing with a DFT
scheme that *preserves the combinational state* between the capture of one
pattern and the launch of the next (first-level hold, ref. [18] of the
paper).  Under that assumption the combinational inputs step directly from
filled pattern ``i`` to filled pattern ``i + 1``, so the capture-cycle
switching activity of the circuit is driven exactly by the adjacent-pattern
Hamming distance that DP-fill minimises.

:class:`ScanTestApplication` turns an ordered, filled pattern set into a
per-cycle activity trace:

* capture cycles — one per pattern boundary, with the input-toggle count and
  (optionally) the circuit-level switching activity between the two patterns;
* shift cycles — per-pattern scan-in transition counts, which is the shift
  power that MT-fill style fills target (reported for completeness; the
  paper's objective is the capture peak).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.circuit.netlist import Circuit
from repro.cubes.cube import TestSet
from repro.cubes.metrics import toggle_profile
from repro.engine.backend import get_backend
from repro.scan.chain import ScanConfiguration, build_scan_chains


@dataclass(frozen=True)
class CaptureCycle:
    """Activity of one launch/capture event (pattern boundary).

    Attributes:
        boundary: index ``j`` of the boundary between pattern ``j`` and ``j+1``.
        input_toggles: number of test pins changing across the boundary.
        circuit_toggles: number of internal nets changing (only populated when
            the application was run with circuit simulation enabled).
    """

    boundary: int
    input_toggles: int
    circuit_toggles: Optional[int] = None


@dataclass
class TestApplicationResult:
    """Full per-cycle activity trace of applying a pattern set.

    Attributes:
        scheme: ``"LOS"`` or ``"LOC"``.
        capture_cycles: one entry per pattern boundary.
        shift_transitions: per-pattern scan-in transition counts.
        shift_cycles_per_pattern: scan length (shift cycles needed per pattern).
    """

    scheme: str
    capture_cycles: List[CaptureCycle] = field(default_factory=list)
    shift_transitions: List[int] = field(default_factory=list)
    shift_cycles_per_pattern: int = 0

    @property
    def peak_capture_input_toggles(self) -> int:
        """Maximum input-toggle count over all capture cycles."""
        return max((c.input_toggles for c in self.capture_cycles), default=0)

    @property
    def peak_capture_circuit_toggles(self) -> int:
        """Maximum circuit-toggle count over all capture cycles (0 if not simulated)."""
        return max((c.circuit_toggles or 0 for c in self.capture_cycles), default=0)

    @property
    def total_shift_transitions(self) -> int:
        """Total scan-in transitions over the whole test (shift-power proxy)."""
        return int(sum(self.shift_transitions))

    @property
    def test_cycles(self) -> int:
        """Total tester cycles: shifts for every pattern plus one capture each."""
        return len(self.shift_transitions) * (self.shift_cycles_per_pattern + 1)


class ScanTestApplication:
    """Applies an ordered, filled pattern set through the scan infrastructure.

    Args:
        circuit: circuit under test.
        scan_config: scan-chain configuration; a single balanced chain is
            built automatically when omitted.
        scheme: ``"LOS"`` (the paper's setting) or ``"LOC"``.  Both schemes
            produce the same *capture* boundary activity under the
            state-preservation assumption; LOC additionally marks that the
            launch comes from functional operation, which matters only for
            delay-fault coverage accounting, not for power.
        state_preserving_dft: model the first-level-hold DFT of the paper.
            When disabled, the combinational inputs are assumed to be
            disturbed by the shift process between captures, and capture
            activity is computed against the shifted-in state instead, which
            is the pessimistic conventional scheme.
    """

    def __init__(
        self,
        circuit: Circuit,
        scan_config: Optional[ScanConfiguration] = None,
        scheme: str = "LOS",
        state_preserving_dft: bool = True,
    ) -> None:
        if scheme not in ("LOS", "LOC"):
            raise ValueError("scheme must be 'LOS' or 'LOC'")
        self.circuit = circuit
        self.scheme = scheme
        self.state_preserving_dft = state_preserving_dft
        self.scan_config = scan_config or build_scan_chains(circuit)
        self._simulator: Optional[object] = None

    def _circuit_toggles(self, patterns: TestSet) -> np.ndarray:
        if self._simulator is None:
            # Resolved through the backend registry so the packed engine
            # serves scan-application traces too (REPRO_BACKEND overrides).
            self._simulator = get_backend().logic_simulator(self.circuit)
        matrix_getter = getattr(self._simulator, "net_value_matrix", None)
        if matrix_getter is not None:
            _, values = matrix_getter(patterns.matrix)
            if values.size == 0:
                return np.zeros(max(len(patterns) - 1, 0), dtype=np.int64)
            return (values[:, 1:] != values[:, :-1]).sum(axis=0).astype(np.int64)
        activity = self._simulator.gate_activity(patterns.matrix)
        if not activity:
            return np.zeros(max(len(patterns) - 1, 0), dtype=np.int64)
        stacked = np.vstack([arr for arr in activity.values()])
        return stacked.sum(axis=0).astype(np.int64)

    def _shift_transitions(self, patterns: TestSet) -> List[int]:
        ff_names = [ff.output for ff in self.circuit.flip_flops]
        if not ff_names:
            return [0] * len(patterns)
        pin_order = self.circuit.combinational_inputs
        ff_positions = {name: pin_order.index(name) for name in ff_names}
        totals: List[int] = []
        for cube in patterns:
            cell_values = {name: cube[ff_positions[name]] for name in ff_names}
            totals.append(
                sum(chain.shift_transitions(cell_values) for chain in self.scan_config.chains)
            )
        return totals

    def apply(self, patterns: TestSet, simulate_circuit: bool = False) -> TestApplicationResult:
        """Apply a filled pattern set and return its activity trace.

        Args:
            patterns: ordered, fully specified patterns over the circuit's
                test pins.
            simulate_circuit: also simulate the netlist to obtain per-boundary
                circuit-toggle counts (needed for the power model; off by
                default because it is the expensive part).

        Raises:
            ValueError: if the patterns are not fully specified or have the
                wrong width.
        """
        if not patterns.is_fully_specified():
            raise ValueError("scan application requires fully specified (filled) patterns")
        if patterns.n_pins != self.circuit.n_test_pins:
            raise ValueError(
                f"patterns have {patterns.n_pins} pins, circuit expects {self.circuit.n_test_pins}"
            )

        if self.state_preserving_dft:
            input_profile = toggle_profile(patterns)
        else:
            # Without state preservation the state part of each boundary is
            # measured against the shifted-in successor state directly after
            # shifting, i.e. the same Hamming distance — plus every shift
            # cycle disturbs the logic.  The conventional model charges the
            # boundary with the full pin count as a pessimistic bound.
            base = toggle_profile(patterns)
            input_profile = np.minimum(base + self.circuit.n_flip_flops, patterns.n_pins)

        circuit_profile: Optional[np.ndarray] = None
        if simulate_circuit:
            circuit_profile = self._circuit_toggles(patterns)

        capture_cycles = [
            CaptureCycle(
                boundary=j,
                input_toggles=int(input_profile[j]),
                circuit_toggles=int(circuit_profile[j]) if circuit_profile is not None else None,
            )
            for j in range(len(input_profile))
        ]
        return TestApplicationResult(
            scheme=self.scheme,
            capture_cycles=capture_cycles,
            shift_transitions=self._shift_transitions(patterns),
            shift_cycles_per_pattern=self.scan_config.shift_cycles_per_pattern(),
        )
