"""Scan / DFT substrate.

Models the part of the flow between "a set of filled test patterns" and "what
the silicon actually sees": scan chains that shift pattern bits into the
flip-flops, the Launch-Off-Shift (LOS) and Launch-Off-Capture (LOC) at-speed
schemes, and the state-preserving DFT assumption (first-level hold) under
which the combinational logic sees the test patterns back to back — the
assumption that makes the peak-input-toggle objective meaningful for
sequential circuits.
"""

from repro.scan.chain import ScanChain, ScanConfiguration, build_scan_chains
from repro.scan.application import (
    CaptureCycle,
    ScanTestApplication,
    TestApplicationResult,
)

__all__ = [
    "ScanChain",
    "ScanConfiguration",
    "build_scan_chains",
    "ScanTestApplication",
    "CaptureCycle",
    "TestApplicationResult",
]
