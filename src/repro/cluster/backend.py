"""The ``cluster`` simulation backend: shard work units over a transport.

Registers ``"cluster"`` in the engine's backend registry so every existing
surface — ``FaultSimulator``, ``PowerEstimator``, ``generate_test_cubes``,
the experiment runner — can fan work out over a cluster transport with
nothing but ``REPRO_BACKEND=cluster`` (and optionally
``REPRO_TRANSPORT=local|mp|queue[:spool]``).  Logic simulation stays in
process (one compiled pass — shipping it out would cost more than it
saves); fault simulation fans out through
:class:`~repro.cluster.fault_sim.ClusterFaultSimulator`, and the ATPG
driver picks up :class:`~repro.cluster.atpg.ClusterPodemScheduler` for
cube generation.  The compiled-program memoisation is inherited from
:class:`~repro.engine.backend.PackedBackend`, so parent and workers agree
on a single program per circuit.
"""

from __future__ import annotations

from typing import Optional

from repro.circuit.netlist import Circuit
from repro.cluster.fault_sim import ClusterFaultSimulator
from repro.engine.backend import PackedBackend, available_backends, register_backend


class ClusterBackend(PackedBackend):
    """Backend pairing the packed logic simulator with cluster fault grading.

    Args:
        transport: transport spec pinned for every simulator this backend
            builds; ``None`` resolves per run (``REPRO_TRANSPORT`` /
            runner ``--transport``).
        jobs: worker count pinned likewise (``None``: ``REPRO_JOBS``).
    """

    name = "cluster"

    def __init__(
        self, transport: Optional[str] = None, jobs: Optional[int] = None
    ) -> None:
        super().__init__()
        self.transport = transport
        self.jobs = jobs

    def fault_simulator(self, circuit: Circuit) -> ClusterFaultSimulator:
        return ClusterFaultSimulator(
            circuit,
            transport=self.transport,
            jobs=self.jobs,
            program=self.compiled_program(circuit),
        )


if "cluster" not in available_backends():
    register_backend(ClusterBackend())
