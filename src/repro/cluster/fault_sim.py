"""Transport-driven fault simulation over the compiled program.

:func:`run_fault_plan` executes a sharding plan from
:func:`repro.cluster.protocol.plan_chunks` over any transport: it is the
single scheduling/merging path behind both the ``sharded`` backend (mp
transport over the shared pool) and the ``cluster`` backend (any
transport), so the detected-fault broadcast, the deterministic min-merge
and the adaptive chunk sizing exist exactly once.

:class:`ClusterFaultSimulator` is the ``cluster`` backend's fault
simulator: resolve a transport, run the plan, fall back to the in-process
packed implementation whenever the transport cannot be built or fails
mid-run — results are bit-identical to ``packed``/``naive`` in every case,
for any worker count, any task arrival order, and any number of retried
tasks.
"""

from __future__ import annotations

import traceback
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sanitizer import shadow_for
from repro.circuit.netlist import Circuit
from repro.circuit.simulator import check_pattern_matrix
from repro.cluster.executor import stream_tasks
from repro.cluster.protocol import (
    CHUNKS_PER_WORKER,
    MIN_CHUNK_FAULTS,
    AdaptiveChunker,
    in_worker_context,
    merge_chunk_stats,
    min_merge,
    plan_chunks,
    resolve_chunk_plan,
    simulate_base_task,
    simulate_task,
)
from repro.cluster.checkpoint import resolve_journal, task_key
from repro.cluster.transport import (
    QuarantineError,
    Transport,
    TransportError,
    degraded_transport_name,
    discard_transport,
    resolve_transport,
)
from repro.cubes.cube import TestSet
from repro.engine.compile import CompiledCircuit, compile_circuit
from repro.engine.fault import (
    DROP_BLOCK_PATTERNS,
    WORD_DROP_BLOCK_PATTERNS,
    FaultSimulationResult,
    PackedFaultSimulator,
    _assemble,
    _new_stats,
    _unique_faults,
    _validate_run,
    resolve_fault_mode,
    resolve_grading_kernel,
)
from repro.engine.pool import CHUNK_TIMEOUT, resolve_jobs
from repro.obs import recorder as obs


def _chunk_units(chunker: AdaptiveChunker) -> Iterator[Tuple[int, int]]:
    """Adaptive chunk bounds as a lazy unit stream (sized at submission)."""
    while True:
        bounds = chunker.next_bounds()
        if bounds is None:
            return
        yield bounds


def run_fault_plan(
    transport: Transport,
    program: CompiledCircuit,
    plan: Tuple[str, List[Tuple[int, int]]],
    patterns: TestSet,
    sites: Sequence[int],
    stuck_values: Sequence[int],
    fault_kernel: str,
    block_patterns: int,
    drop_detected: bool,
    stats: Dict[str, object],
    chunker: Optional[AdaptiveChunker] = None,
    max_inflight: Optional[int] = None,
    timeout: float = CHUNK_TIMEOUT,
    journal=None,
    journal_salt: str = "",
) -> List[Optional[int]]:
    """Execute one sharding plan over ``transport``; first-detect per fault.

    Fault chunks merge by scatter (disjoint positions), pattern shards by
    the order-independent min-merge; with ``drop_detected`` the parent
    broadcasts already-detected faults into every later-built shard task.
    When ``chunker`` is given, fault-chunk bounds come from it lazily —
    sized by the cone-evaluation feedback of whatever chunks completed
    before each submission — instead of from the static plan.
    ``fault_kernel`` is the resolved grading kernel every chunk runs
    (``"lanes"``/``"words"``/``"faults"``, see
    :func:`~repro.engine.fault.resolve_grading_kernel`).
    """
    mode, chunks = plan
    n_patterns = len(patterns)
    n_faults = len(sites)
    matrix = check_pattern_matrix(patterns.matrix, program.n_inputs)
    base_task = simulate_base_task(
        program, matrix, n_patterns, fault_kernel, block_patterns, drop_detected
    )
    first: List[Optional[int]] = [None] * n_faults
    # REPRO_SANITIZE=1: shadow-record every merged envelope and re-merge in
    # adversarial orders after the run; order dependence aborts the run.
    shadow = shadow_for(
        n_faults, min_merge, label=f"fault_plan/{program.name}/{mode}"
    )
    stats["mode"] = mode
    stats["fault_mode"] = base_task["fault_mode"]
    if max_inflight is None:
        # Fallback only — callers should size the window from the resolved
        # jobs count: transport.workers is 0 for an external queue spool
        # whose workers join from other hosts.
        max_inflight = max(2, getattr(transport, "workers", 0) + 2)

    if mode == "fault-chunks":
        units: Iterator[Tuple[int, int]] = (
            _chunk_units(chunker) if chunker is not None else iter(chunks)
        )

        def build_task(bounds):
            lo, hi = bounds
            stats["chunks"] += 1
            task = simulate_task(
                base_task, sites[lo:hi], stuck_values[lo:hi], 0, n_patterns
            )
            return task, list(range(lo, hi))

        def on_result(positions, payload):
            chunk_first, chunk_stats = payload
            if shadow is not None:
                shadow.record(positions, chunk_first)
            min_merge(first, positions, chunk_first)
            merge_chunk_stats(stats, chunk_stats)
            if chunker is not None:
                chunker.record(len(positions), chunk_stats["cone_evaluations"])

    else:  # pattern-shards

        def build_task(bounds):
            start, stop = bounds
            if drop_detected:
                # Broadcast: skip faults already detected strictly before
                # this shard's range — they could only re-detect later,
                # which never changes the min-merge.
                positions = [
                    index
                    for index in range(n_faults)
                    if first[index] is None or first[index] >= start
                ]
            else:
                positions = list(range(n_faults))
            stats["shard_dropped_evaluations"] += n_faults - len(positions)
            if not positions:
                return None  # whole shard dropped: no task
            stats["chunks"] += 1
            task = simulate_task(
                base_task,
                [sites[index] for index in positions],
                [stuck_values[index] for index in positions],
                start,
                stop,
            )
            return task, positions

        def on_result(positions, payload):
            chunk_first, chunk_stats = payload
            if shadow is not None:
                shadow.record(positions, chunk_first)
            min_merge(first, positions, chunk_first)
            merge_chunk_stats(stats, chunk_stats)

        units = iter(chunks)

    stream_tasks(
        transport,
        units,
        build_task,
        on_result,
        max_inflight,
        timeout,
        journal=journal,
        task_key=(
            (lambda task: task_key(task, salt=journal_salt))
            if journal is not None
            else None
        ),
    )
    if shadow is not None:
        shadow.verify(first)
    return first


class ClusterFaultSimulator:
    """Fault simulator scheduling shard work units over a cluster transport.

    Args:
        circuit: circuit under test (compiled here if no ``program`` given).
        transport: transport spec (``"local"`` / ``"mp"`` / ``"queue[:dir]"``),
            a ready :class:`~repro.cluster.transport.Transport` instance, or
            ``None`` to resolve through ``REPRO_TRANSPORT`` at run time.
        jobs: worker count; ``None`` resolves through
            :func:`~repro.engine.pool.resolve_jobs` at run time.
        block_patterns: fault-dropping block size (also the pattern-shard
            alignment unit); defaults per fault mode like
            :class:`~repro.engine.fault.PackedFaultSimulator`.
        program: reuse an already-compiled program for ``circuit``.
        chunks_per_worker / min_chunk_faults: sharding knobs, mainly for
            tests.
        mode: packed fault-grading mode
            (``"auto"``/``"lanes"``/``"words"``/``"faults"``).
        chunk_plan: ``"adaptive"`` (default; chunk sizes follow measured
            cone cost) or ``"static"`` (the fixed equal-count plan);
            ``None`` resolves through ``REPRO_CHUNK_PLAN``.
        resume: run directory (or :class:`~repro.cluster.checkpoint.RunJournal`)
            to checkpoint completed chunk results into and replay them from;
            forces the static chunk plan so a resumed run re-derives the
            exact same chunk boundaries (adaptive sizing depends on feedback
            arrival timing, which no journal can reproduce).
    """

    def __init__(
        self,
        circuit: Circuit,
        transport=None,
        jobs: Optional[int] = None,
        block_patterns: Optional[int] = None,
        program: Optional[CompiledCircuit] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        min_chunk_faults: int = MIN_CHUNK_FAULTS,
        mode: Optional[str] = None,
        chunk_plan: Optional[str] = None,
        resume=None,
    ) -> None:
        self.circuit = circuit
        self.transport = transport
        self.jobs = jobs
        self.mode = resolve_fault_mode(mode)
        self.resume = resume
        self.chunk_plan = (
            "static" if resume is not None else resolve_chunk_plan(chunk_plan)
        )
        self.block_patterns = (
            max(1, int(block_patterns)) if block_patterns is not None else None
        )
        self.program = program if program is not None else compile_circuit(circuit)
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self.min_chunk_faults = max(1, int(min_chunk_faults))
        self._inline: Optional[PackedFaultSimulator] = None
        self._journal = None  # lazily resolved once; reused across runs
        self.last_run_stats: Dict[str, object] = self._fresh_stats(1)

    @staticmethod
    def _fresh_stats(jobs: int) -> Dict[str, object]:
        stats: Dict[str, object] = _new_stats()
        stats.update(
            mode="inline",
            transport=None,
            jobs=jobs,
            chunks=0,
            shard_dropped_evaluations=0,
            retries=0,
        )
        return stats

    def _block_patterns_for(self, kernel: str) -> int:
        if self.block_patterns is not None:
            return self.block_patterns
        return WORD_DROP_BLOCK_PATTERNS if kernel == "words" else DROP_BLOCK_PATTERNS

    def _run_inline(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool,
        stats: Dict[str, object],
    ) -> FaultSimulationResult:
        if self._inline is None:
            self._inline = PackedFaultSimulator(
                self.circuit,
                block_patterns=self.block_patterns,
                program=self.program,
                mode=self.mode,
            )
        result = self._inline.run(patterns, faults, drop_detected=drop_detected)
        for key, value in self._inline.last_run_stats.items():
            stats[key] = value
        stats["mode"] = "inline"
        return result

    def _resolve_transport(self, jobs: int) -> Transport:
        """Hook: the transport a run schedules on (subclasses pin one).

        Raises:
            TransportError: no transport can be built — run inline.
        """
        if isinstance(self.transport, Transport):
            return self.transport
        return resolve_transport(self.transport, jobs=jobs)

    def _discard_failed(self, transport: Transport) -> None:
        """Hook: drop a transport that failed mid-run."""
        if not isinstance(self.transport, Transport):
            discard_transport(transport)

    def _next_rung(self, current_name: str) -> Optional[str]:
        """Hook: next transport down the degradation ladder, or ``None``.

        Caller-pinned transport instances never degrade — the replacement
        is not this simulator's to choose (and tests rely on a failing
        pinned transport dropping straight to inline).
        """
        if isinstance(self.transport, Transport):
            return None
        return degraded_transport_name(current_name)

    def _make_chunker(
        self, plan: Tuple[str, List[Tuple[int, int]]], n_faults: int
    ) -> Optional[AdaptiveChunker]:
        mode, chunks = plan
        if mode != "fault-chunks" or self.chunk_plan != "adaptive":
            return None
        lo, hi = chunks[0]
        return AdaptiveChunker(
            n_faults, initial_chunk=hi - lo, min_chunk=self.min_chunk_faults
        )

    def run(
        self,
        patterns: TestSet,
        faults: Sequence[object],
        drop_detected: bool = True,
    ) -> FaultSimulationResult:
        """Fault-simulate ``patterns`` against ``faults``.

        Results (detection map, first-detecting indices, fault order) are
        bit-identical to the ``packed`` and ``naive`` backends; only the
        execution strategy differs.
        """
        jobs = resolve_jobs(self.jobs)
        stats = self.last_run_stats = self._fresh_stats(jobs)
        early = _validate_run(patterns, self.program.n_inputs, faults)
        if early is not None:
            return early
        faults = _unique_faults(faults)
        n_patterns = len(patterns)
        kernel = resolve_grading_kernel(self.mode, n_patterns, len(faults))
        block_patterns = self._block_patterns_for(kernel)
        plan = (
            plan_chunks(
                jobs,
                len(faults),
                n_patterns,
                block_patterns,
                chunks_per_worker=self.chunks_per_worker,
                min_chunk_faults=self.min_chunk_faults,
            )
            if jobs > 1 and not in_worker_context()
            else None
        )
        if plan is None:
            return self._run_inline(patterns, faults, drop_detected, stats)
        try:
            transport = self._resolve_transport(jobs)
        except TransportError:
            return self._run_inline(patterns, faults, drop_detected, stats)
        sites = [self.program.row_of(f.net) for f in faults]
        stuck_values = [1 if f.stuck_value else 0 for f in faults]
        if self.resume is not None and self._journal is None:
            self._journal = resolve_journal(self.resume, "fault_sim")
        journal = self._journal
        journal_salt = (
            f"{self.circuit.structure_digest()}|{self.mode}|{drop_detected}"
            if journal is not None
            else ""
        )
        retries_before = getattr(transport, "retries", 0)
        while True:
            try:
                with obs.span(f"fault_sim/{self.program.name}/schedule"):
                    first = run_fault_plan(
                        transport,
                        self.program,
                        plan,
                        patterns,
                        sites,
                        stuck_values,
                        kernel,
                        block_patterns,
                        drop_detected,
                        stats,
                        chunker=self._make_chunker(plan, len(faults)),
                        # Size the submission window from the jobs count, not
                        # the transport's local worker tally — an external
                        # queue spool reports 0 local workers while remote
                        # ones serve it.
                        max_inflight=max(2, jobs + 2),
                        journal=journal,
                        journal_salt=journal_salt,
                    )
                break
            except QuarantineError:
                # The retry/quarantine ladder already ran this task inline
                # and it still failed: no healthier transport can save a
                # poisoned task, so the structured report propagates.
                raise
            except Exception as err:
                # A failed transport must never cost correctness.  Step one
                # rung down the degradation ladder (queue -> mp -> local)
                # and redo the run — min-merge idempotence makes a partial
                # first-detect vector safe to discard — or, off the bottom
                # of the ladder (or for a caller-pinned transport instance,
                # whose replacement is not ours to choose), redo it in
                # process.  The cause is never swallowed either way: the
                # failure goes to the event log with task id, transport
                # name and traceback before the next attempt engages.
                failed_name = getattr(err, "transport", None) or transport.name
                next_name = self._next_rung(transport.name)
                obs.event(
                    "transport_failed",
                    transport=failed_name,
                    task_id=getattr(err, "task_id", None),
                    consumer="fault_sim",
                    fallback=next_name or "inline",
                    error=repr(err),
                    traceback=traceback.format_exc(),
                )
                self._discard_failed(transport)
                if next_name is None:
                    return self._run_inline(patterns, faults, drop_detected, stats)
                obs.event(
                    "transport_degraded",
                    consumer="fault_sim",
                    from_transport=transport.name,
                    to_transport=next_name,
                )
                stats["degraded_from"] = transport.name
                try:
                    transport = resolve_transport(next_name, jobs=jobs)
                except (TransportError, ValueError):
                    return self._run_inline(patterns, faults, drop_detected, stats)
                retries_before = getattr(transport, "retries", 0)
        stats["transport"] = transport.name
        stats["retries"] = getattr(transport, "retries", 0) - retries_before
        if not transport.persistent and not isinstance(self.transport, Transport):
            transport.close()
        result = _assemble(faults, first, n_patterns)
        if obs.enabled():
            # Kernel counters (blocks / cone_evaluations / ...) arrived via
            # the per-task snapshots the transport absorbed; the parent adds
            # only the result-level counters, so nothing double-counts.
            obs.add_counters(
                {
                    "fault_sim.runs": 1,
                    "fault_sim.patterns": result.n_patterns,
                    "fault_sim.faults": result.detected_count
                    + len(result.undetected),
                    "fault_sim.detected": result.detected_count,
                }
            )
        return result
