"""Queue-backed distributed executor for simulation work units.

``repro.cluster`` fans the engine's transport-agnostic work units — fault
chunks, pattern shards, PODEM chunks and experiment-runner cells — out over
pluggable transports:

* ``local`` — in-process execution (tests, semantics oracle);
* ``mp`` — the shared spawn-safe process pool (the sharded backend's pool
  behind the transport interface);
* ``queue`` — a file-backed task queue with lease/heartbeat retry and a
  ``python -m repro.cluster.worker`` entrypoint so workers can join from
  other hosts or containers over a shared filesystem.

Importing this package registers the ``"cluster"`` simulation backend
(``REPRO_BACKEND=cluster``); results are bit-identical to the ``packed``,
``sharded`` and ``naive`` backends for every transport, worker count,
failure pattern and task arrival order — the protocol's merges are
order-independent and idempotent by construction
(:mod:`repro.cluster.protocol`).

The runtime is hardened for real fleets: failing tasks get a bounded retry
budget with backoff and end in an on-disk quarantine plus an inline re-run
(:mod:`repro.cluster.retry`), completed results checkpoint into resumable
run journals (:mod:`repro.cluster.checkpoint`), a sick transport degrades
``queue → mp → local → inline`` instead of hanging, and a seeded chaos
harness (:mod:`repro.cluster.chaos`, ``REPRO_CHAOS``) injects worker
kills, stalls and corrupt results deterministically to prove all of it.
"""

# Fully initialise the engine package first: repro.engine.sharded and the
# cluster submodules import each other's siblings, and this ordering keeps
# every cross-import hitting an already-complete module regardless of
# whether ``repro.engine`` or ``repro.cluster`` is imported first.
import repro.engine  # noqa: F401  (import order, see above)

from repro.cluster.atpg import ClusterPodemScheduler
from repro.cluster.backend import ClusterBackend
from repro.cluster.chaos import (
    CHAOS_ENV_VAR,
    CHAOS_KINDS,
    ChaosInjector,
    parse_chaos_spec,
)
from repro.cluster.checkpoint import (
    MISSING,
    RunJournal,
    program_digest,
    resolve_journal,
    task_key,
)
from repro.cluster.fault_sim import ClusterFaultSimulator, run_fault_plan
from repro.cluster.retry import (
    DEFAULT_TASK_RETRIES,
    TASK_RETRIES_ENV_VAR,
    parse_task_retries,
    resolve_task_retries,
)
from repro.cluster.protocol import (
    CHUNK_PLAN_ENV_VAR,
    CHUNK_PLANS,
    CHUNKS_PER_WORKER,
    MIN_CHUNK_FAULTS,
    WORKER_ENV_VAR,
    AdaptiveChunker,
    execute_task,
    in_worker_context,
    min_merge,
    pickled_program,
    plan_chunks,
    resolve_chunk_plan,
)
from repro.cluster.transport import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_TRANSPORT_NAME,
    LEASE_TIMEOUT_ENV_VAR,
    QUEUE_DIR_ENV_VAR,
    QUEUE_WORKERS_ENV_VAR,
    TRANSPORT_ENV_VAR,
    TRANSPORTS,
    LocalTransport,
    MpTransport,
    QuarantineError,
    QueueTransport,
    Transport,
    TransportError,
    TransportTaskError,
    default_transport_name,
    degraded_transport_name,
    parse_lease_timeout,
    parse_transport_spec,
    resolve_lease_timeout,
    resolve_transport,
    set_default_lease_timeout,
    set_default_transport,
    shutdown_shared_transports,
)

__all__ = [
    "CHAOS_ENV_VAR",
    "CHAOS_KINDS",
    "CHUNK_PLAN_ENV_VAR",
    "CHUNK_PLANS",
    "CHUNKS_PER_WORKER",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_TASK_RETRIES",
    "DEFAULT_TRANSPORT_NAME",
    "LEASE_TIMEOUT_ENV_VAR",
    "MIN_CHUNK_FAULTS",
    "MISSING",
    "QUEUE_DIR_ENV_VAR",
    "QUEUE_WORKERS_ENV_VAR",
    "TASK_RETRIES_ENV_VAR",
    "TRANSPORT_ENV_VAR",
    "TRANSPORTS",
    "WORKER_ENV_VAR",
    "AdaptiveChunker",
    "ChaosInjector",
    "ClusterBackend",
    "ClusterFaultSimulator",
    "ClusterPodemScheduler",
    "LocalTransport",
    "MpTransport",
    "QuarantineError",
    "QueueTransport",
    "RunJournal",
    "Transport",
    "TransportError",
    "TransportTaskError",
    "default_transport_name",
    "degraded_transport_name",
    "execute_task",
    "in_worker_context",
    "min_merge",
    "parse_chaos_spec",
    "parse_lease_timeout",
    "parse_task_retries",
    "parse_transport_spec",
    "pickled_program",
    "plan_chunks",
    "program_digest",
    "resolve_chunk_plan",
    "resolve_journal",
    "resolve_lease_timeout",
    "resolve_task_retries",
    "resolve_transport",
    "run_fault_plan",
    "set_default_lease_timeout",
    "set_default_transport",
    "shutdown_shared_transports",
]
