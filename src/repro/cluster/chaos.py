"""Seeded chaos harness for the cluster runtime.

``REPRO_CHAOS=<seed>:<spec>`` arms a deterministic fault injector inside
spawned queue workers.  The spec is a comma-separated list of
``kind=rate`` pairs, e.g.::

    REPRO_CHAOS="7:kill=0.05,corrupt=0.1,dup=0.1"

Supported kinds, each firing at its configured probability per opportunity:

* ``kill``    — the worker process dies (``os._exit``) right after claiming
  a task, simulating an OOM-kill / preemption mid-lease;
* ``stall``   — the worker's heartbeat freezes long enough for the parent
  to expire the lease, then the task completes anyway (slow-worker /
  duplicate-delivery race);
* ``corrupt`` — the published result envelope is truncated, exercising the
  parent's torn-pickle detection;
* ``dup``     — the result is published but the claim is never released,
  so lease expiry re-runs the task and the parent sees the result twice;
* ``enospc``  — the result write fails as if the disk were full (nothing
  is published, the claim is kept so lease expiry recovers the task).

Decisions are **deterministic**: each is a pure function of
``(seed, kind, key, occurrence)`` hashed through blake2b, so a failing
chaos run replays exactly under the same seed — no real randomness, no
flaky CI.  Injection only engages inside worker processes
(:func:`worker_injector` checks ``REPRO_CLUSTER_WORKER``), keeping the
parent's drain loop and the inline fallback path clean so every run can
still complete correctly.
"""

from __future__ import annotations

from collections import defaultdict
from hashlib import blake2b
from typing import Dict, Optional, Tuple

from repro import envvars

#: Environment variable arming the chaos injector (``seed:spec``).
CHAOS_ENV_VAR = envvars.CHAOS.name

#: Failure kinds the injector understands.
CHAOS_KINDS = ("kill", "stall", "corrupt", "dup", "enospc")


def parse_chaos_spec(value: str) -> Tuple[int, Dict[str, float]]:
    """Parse ``"seed:kill=0.05,corrupt=0.1"`` into ``(seed, rates)``.

    Raises:
        ValueError: for malformed specs, unknown kinds, or rates outside
            ``[0, 1]`` — misconfigured chaos must fail loudly, not silently
            run without faults.
    """
    text = str(value).strip()
    seed_part, sep, spec_part = text.partition(":")
    if not sep:
        raise ValueError(
            f"chaos spec must look like 'seed:kind=rate,...', got {value!r}"
        )
    try:
        seed = int(seed_part.strip())
    except ValueError:
        raise ValueError(f"chaos seed must be an integer, got {seed_part!r}") from None
    rates: Dict[str, float] = {}
    for item in spec_part.split(","):
        item = item.strip()
        if not item:
            continue
        kind, eq, rate_text = item.partition("=")
        kind = kind.strip()
        if not eq or kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos fault {item!r}; kinds are {', '.join(CHAOS_KINDS)}"
            )
        try:
            rate = float(rate_text.strip())
        except ValueError:
            raise ValueError(f"chaos rate must be a float, got {rate_text!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {rate!r}")
        rates[kind] = rate
    if not rates:
        raise ValueError(f"chaos spec names no faults: {value!r}")
    return seed, rates


class ChaosInjector:
    """Deterministic per-opportunity fault decisions for one seed."""

    def __init__(self, seed: int, rates: Dict[str, float]):
        self.seed = int(seed)
        self.rates = dict(rates)
        self._occurrences: Dict[Tuple[str, str], int] = defaultdict(int)

    def should(self, kind: str, key: str) -> bool:
        """Decide whether fault ``kind`` fires at this opportunity.

        ``key`` identifies the opportunity site (usually a task id); an
        occurrence counter distinguishes repeated opportunities at the same
        site, so a retried task does not deterministically die forever.
        """
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        occurrence = self._occurrences[(kind, key)]
        self._occurrences[(kind, key)] += 1
        digest = blake2b(
            f"{self.seed}|{kind}|{key}|{occurrence}".encode(), digest_size=8
        ).digest()
        draw = int.from_bytes(digest, "big") / float(1 << 64)
        return draw < rate

    def corrupt_bytes(self, blob: bytes, key: str) -> bytes:
        """Deterministically truncate a result envelope for ``key``."""
        if len(blob) <= 1:
            return b""
        digest = blake2b(f"{self.seed}|len|{key}".encode(), digest_size=8).digest()
        keep = 1 + int.from_bytes(digest, "big") % (len(blob) - 1)
        return blob[:keep]


_cached: Tuple[Optional[str], Optional[ChaosInjector]] = (None, None)


def env_injector() -> Optional[ChaosInjector]:
    """The injector configured by ``REPRO_CHAOS``, or ``None`` when unarmed.

    Cached per env-var value so occurrence counters persist across calls
    within one process; a changed/cleared variable rebuilds or disarms it.
    """
    global _cached
    value = envvars.CHAOS.read()
    if value == _cached[0]:
        return _cached[1]
    injector = None
    if value is not None:
        seed, rates = parse_chaos_spec(value)
        injector = ChaosInjector(seed, rates)
    _cached = (value, injector)
    return injector


def worker_injector() -> Optional[ChaosInjector]:
    """The injector, but only inside spawned worker processes.

    Chaos must never fire in the parent: the drain loop and the inline
    quarantine fallback are the recovery machinery under test, and the
    acceptance bar is "never a wrong answer, never a hang" — which requires
    an uncontaminated last line of defence.
    """
    from repro.cluster.protocol import in_worker_context

    if not in_worker_context():
        return None
    return env_injector()
