"""Checkpoint/resume journal for distributed runs.

A :class:`RunJournal` is a durable, append-only record of completed task
result envelopes, keyed by a content hash of the task itself salted with a
digest of the circuit it runs against.  The schedulers consult it before
submitting: a journalled task's result is replayed instantly, only the
remainder hits the transport.  Because cluster merges are idempotent and
cell/chunk decomposition is deterministic, a run killed mid-flight (even
with ``SIGKILL`` — no atexit, no flush) resumes to a byte-identical report.

Records are framed ``<u32 length><8-byte blake2b><pickle blob>`` so a torn
tail — the expected state after killing a writer — is detected by length or
checksum mismatch and truncated away on the next open.  Appends are
``flush`` + ``fsync`` per record: task results arrive at most every few
milliseconds, and durability is the whole point of the file.

Keys must be **content** hashes, never spool task ids: ids embed per-run
counters and uuids, so a resumed run would never match them.
:func:`task_key` hashes the semantically meaningful task fields and
:func:`program_digest` fingerprints a compiled circuit's canonical arrays
(mirroring :meth:`Circuit.structure_digest` for lowered programs, which keep
no back-reference to their source :class:`Circuit`).
"""

from __future__ import annotations

import os
import pickle
import struct
from hashlib import blake2b
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.obs import recorder as obs

#: Returned by :meth:`RunJournal.get` for a missing key (results may be None).
MISSING = object()

_HEADER = struct.Struct("<I8s")

#: Task-dict fields that define a task's identity for resume purposes.
#: Everything content-bearing but cheap to hash; deliberately excludes the
#: program blob (covered by the journal scope salt), obs envelopes and
#: transport bookkeeping.
TASK_KEY_FIELDS = (
    "kind",
    "fault_mode",
    "n_patterns",
    "block_patterns",
    "drop_detected",
    "pattern_start",
    "pattern_stop",
    "patterns_key",
    "backtrack_limit",
    "sites",
    "stuck_values",
    "seed",
    "backend",
    "cell",
    "payload",
)


def task_key(task: Dict[str, Any], salt: str = "") -> str:
    """Stable content hash identifying ``task`` across runs.

    Args:
        task: the task dict as built for :func:`execute_task`.
        salt: run-scope salt, normally the circuit/program digest — two runs
            over different circuits must never share journal entries.
    """
    digest = blake2b(salt.encode(), digest_size=16)
    for field in TASK_KEY_FIELDS:
        if field in task:
            digest.update(field.encode())
            digest.update(repr(task[field]).encode())
    return digest.hexdigest()


def program_digest(program: Any) -> str:
    """Content fingerprint of a :class:`CompiledCircuit`'s canonical arrays."""
    digest = blake2b(digest_size=16)
    digest.update(str(getattr(program, "name", "")).encode())
    digest.update(str(getattr(program, "n_inputs", 0)).encode())
    for name in ("net_names",):
        digest.update(repr(getattr(program, name, ())).encode())
    for name in (
        "node_ops",
        "node_out",
        "node_level",
        "fanin_ptr",
        "fanin_idx",
        "output_rows",
    ):
        array = getattr(program, name, None)
        if array is not None:
            digest.update(array.tobytes())
    return digest.hexdigest()


class RunJournal:
    """Append-only key -> result-envelope store under a run directory.

    Args:
        run_dir: durable directory for this run (created if missing).
        scope: journal file name stem; distinct consumers (fault-sim, podem,
            runner cells) keep distinct journals in one run dir.
    """

    def __init__(self, run_dir: str, scope: str = "tasks"):
        self.run_dir = str(run_dir)
        self.scope = str(scope)
        self.path = os.path.join(self.run_dir, f"{self.scope}.journal")
        self._entries: Dict[str, Any] = {}
        os.makedirs(self.run_dir, exist_ok=True)
        self._load()
        self._handle = open(self.path, "ab")

    def _load(self) -> None:
        """Read every intact record; truncate a torn tail in place."""
        if not os.path.exists(self.path):
            return
        valid_end = 0
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset + _HEADER.size <= len(data):
            length, checksum = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data):
                break
            blob = data[start:end]
            if blake2b(blob, digest_size=8).digest() != checksum:
                break
            try:
                key, payload = pickle.loads(blob)
            except Exception:
                # Checksummed-but-unloadable entry (e.g. a class renamed
                # between runs): treat as the journal's torn tail and replay
                # from here — but leave evidence for the event log.
                obs.event(
                    "checkpoint_truncated", path=str(self.path), offset=offset
                )
                break
            self._entries[key] = payload
            offset = valid_end = end
        if valid_end < len(data):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str, default: Any = MISSING) -> Any:
        return self._entries.get(key, default)

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(list(self._entries.items()))

    def put(self, key: str, payload: Any) -> None:
        """Durably record ``payload`` for ``key`` (last write wins on load)."""
        self._entries[key] = payload
        blob = pickle.dumps((key, payload), protocol=pickle.HIGHEST_PROTOCOL)
        record = _HEADER.pack(len(blob), blake2b(blob, digest_size=8).digest()) + blob
        self._handle.write(record)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def resolve_journal(
    resume: Optional[object], scope: str
) -> Optional[RunJournal]:
    """Build the ``scope`` journal for a ``resume=`` argument.

    Accepts a run-directory path or an existing :class:`RunJournal` (whose
    run dir is reused with the requested scope); ``None`` disables
    journalling.
    """
    if resume is None:
        return None
    if isinstance(resume, RunJournal):
        if resume.scope == scope:
            return resume
        return RunJournal(resume.run_dir, scope)
    return RunJournal(str(resume), scope)
