"""Bounded retry budgets, backoff and the task quarantine.

Every queue task carries a *retry budget* (default 3, ``REPRO_TASK_RETRIES``):
the number of times its submitting channel will re-enqueue it after a
failure — a lease that expired because the claimant died, a worker-side
exception published as an error result, or a result envelope that arrived
truncated or unpicklable.  Each re-enqueue is delayed by exponential backoff
with deterministic jitter (:func:`backoff_delay`), so a poisoned task cannot
hot-loop the spool and a flapping worker set gets breathing room.

A task that exhausts its budget is **quarantined**: its envelope, the
accumulated failure records and any telemetry events mentioning it are
written to ``<spool>/quarantine/<task_id>/`` (:func:`quarantine_task`), and
the parent then re-executes the task inline exactly once.  Task results are
pure functions of the task dict, so an inline success completes the run
bit-identically; only when inline execution *also* fails does the run abort
— with a structured report naming the task, its attempts and every recorded
failure (:class:`~repro.cluster.transport.QuarantineError`), never with a
silent hang or a wrong answer.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from hashlib import blake2b
from typing import Any, Dict, Optional, Sequence

from repro import envvars
from repro.envvars import parse_task_retries

#: Environment variable sizing every queue task's retry budget.
TASK_RETRIES_ENV_VAR = envvars.TASK_RETRIES.name

#: Re-enqueues granted to a task before it is quarantined.
DEFAULT_TASK_RETRIES = 3

#: First-retry backoff delay in seconds; doubles per attempt up to the cap.
BACKOFF_BASE = 0.1

#: Upper bound on any single backoff delay in seconds.
BACKOFF_CAP = 5.0

#: Spool subdirectory holding quarantined tasks.
QUARANTINE_DIR = "quarantine"


def resolve_task_retries(value: Optional[int] = None) -> int:
    """Resolve the retry budget (explicit argument > env var > default).

    Raises:
        ValueError: for invalid explicit or environment values.
    """
    if value is not None:
        return parse_task_retries(value)
    env = envvars.TASK_RETRIES.read()
    if env is not None:
        return env
    return DEFAULT_TASK_RETRIES


def backoff_delay(
    attempt: int,
    task_id: str,
    base: float = BACKOFF_BASE,
    cap: float = BACKOFF_CAP,
) -> float:
    """Delay before re-enqueueing ``task_id`` for its ``attempt``-th retry.

    Exponential (``base * 2**(attempt-1)``, capped) with *deterministic*
    jitter in ``[0, delay)`` derived from ``(task_id, attempt)`` — retried
    tasks de-synchronise from each other without introducing real
    randomness, so a failing run replays identically under a fixed seed.
    """
    delay = min(float(cap), float(base) * (2.0 ** max(0, int(attempt) - 1)))
    digest = blake2b(f"{task_id}|{attempt}".encode(), digest_size=8).digest()
    jitter = int.from_bytes(digest, "big") / float(1 << 64)
    return delay * (1.0 + jitter)


def failure_record(kind: str, detail: Optional[str] = None) -> Dict[str, Any]:
    """One recorded task failure: what went wrong, when, and the evidence."""
    return {"kind": kind, "detail": detail, "ts": time.time()}


def quarantine_root(spool: str) -> str:
    """The spool subdirectory quarantined tasks are moved into."""
    return os.path.join(spool, QUARANTINE_DIR)


def quarantine_task(
    spool: str,
    task_id: str,
    task: Dict[str, object],
    failures: Sequence[Dict[str, Any]],
    events: Optional[Sequence[Dict[str, Any]]] = None,
) -> str:
    """Write one exhausted task's post-mortem to the quarantine directory.

    Layout of ``<spool>/quarantine/<task_id>/``:

    * ``envelope.pickle`` — the full task dict, re-runnable via
      :func:`repro.cluster.protocol.execute_task` for offline diagnosis;
    * ``tracebacks.txt`` — every recorded failure (lease expiries, worker
      tracebacks, corrupt-envelope detections) in order;
    * ``events.jsonl`` — telemetry events mentioning the task (empty when
      tracing is off);
    * ``report.json`` — the machine-readable summary embedded in the
      structured quarantine report.

    Returns the quarantine directory path.  Write failures are swallowed —
    quarantine is forensics, and a full disk must not mask the original
    task failure.
    """
    directory = os.path.join(quarantine_root(spool), str(task_id))
    try:
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "envelope.pickle"), "wb") as handle:
            pickle.dump(task, handle, protocol=pickle.HIGHEST_PROTOCOL)
        with open(
            os.path.join(directory, "tracebacks.txt"), "w", encoding="utf-8"
        ) as handle:
            for index, failure in enumerate(failures):
                handle.write(
                    f"--- attempt {index + 1}: {failure.get('kind')} "
                    f"(ts={failure.get('ts')}) ---\n"
                )
                handle.write(str(failure.get("detail") or "<no traceback>") + "\n")
        with open(
            os.path.join(directory, "events.jsonl"), "w", encoding="utf-8"
        ) as handle:
            for record in events or ():
                handle.write(json.dumps(record, default=repr) + "\n")
        with open(
            os.path.join(directory, "report.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(
                quarantine_entry(task_id, task, failures, directory),
                handle,
                indent=2,
                default=repr,
            )
    except OSError:
        pass
    return directory


def quarantine_entry(
    task_id: str,
    task: Dict[str, object],
    failures: Sequence[Dict[str, Any]],
    directory: Optional[str] = None,
) -> Dict[str, Any]:
    """The structured-report entry for one quarantined task."""
    return {
        "task_id": str(task_id),
        "kind": task.get("kind"),
        "attempts": len(failures),
        "failures": [
            {"kind": f.get("kind"), "ts": f.get("ts")} for f in failures
        ],
        "quarantine_dir": directory,
    }


def format_quarantine_report(entries: Sequence[Dict[str, Any]]) -> str:
    """Human-readable abort message for a run that lost tasks to quarantine."""
    lines = [
        f"{len(entries)} task(s) exhausted their retry budget and failed "
        "inline re-execution:"
    ]
    for entry in entries:
        failures = ", ".join(f["kind"] for f in entry.get("failures", ())) or "?"
        lines.append(
            f"  - task {entry['task_id']} (kind={entry.get('kind')!r}, "
            f"{entry.get('attempts', 0)} attempts: {failures}) "
            f"quarantined at {entry.get('quarantine_dir')}"
        )
    return "\n".join(lines)
