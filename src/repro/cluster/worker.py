"""Queue-transport worker: ``python -m repro.cluster.worker --spool DIR``.

A worker attaches to a spool directory (see
:class:`repro.cluster.transport.QueueTransport`), claims task files by
atomic rename, executes them through the shared
:func:`repro.cluster.protocol.execute_task` dispatch, and publishes result
files.  Run it on any host or container that can see the spool's
filesystem and import ``repro`` — that is the whole join protocol.

While a task runs, a daemon thread heartbeats both the worker's liveness
file and the task's lease; a worker that is killed (or whose host
disappears) simply stops heartbeating, and the submitting parent re-enqueues
the lease-expired task for someone else.  Task exceptions are published as
error results, never raised — a poisoned task fails its submitter, not the
worker.

Exit conditions: the spool's ``stop`` file appears (written by the parent's
``close()``), the spool directory vanishes, ``--max-tasks`` is reached, or
``--idle-exit`` seconds pass without any task to claim.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
import uuid
from typing import List, Optional

from repro.cluster.protocol import WORKER_ENV_VAR
from repro.cluster.transport import (
    STOP_FILE,
    claim_task,
    init_spool,
    refresh,
    run_claimed_task,
    touch,
)


class _Heartbeat(threading.Thread):
    """Daemon thread refreshing the worker's liveness + current lease files."""

    def __init__(self, interval: float) -> None:
        super().__init__(daemon=True)
        self.interval = interval
        self.paths: List[str] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def set_paths(self, paths: List[str]) -> None:
        with self._lock:
            self.paths = list(paths)

    def beat_once(self) -> None:
        with self._lock:
            paths = list(self.paths)
        for path in paths:
            try:
                # Refresh-only: once a lease (or the liveness file) has been
                # deleted, a late beat must not resurrect it as an orphan.
                refresh(path)
            except OSError:
                pass

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat_once()

    def stop(self) -> None:
        self._stop.set()


def serve(
    spool: str,
    max_tasks: Optional[int] = None,
    poll: float = 0.05,
    heartbeat: float = 1.0,
    idle_exit: Optional[float] = None,
) -> int:
    """Serve tasks from ``spool`` until told to stop; returns tasks executed."""
    os.environ[WORKER_ENV_VAR] = "1"  # nested simulators must run inline
    init_spool(spool)
    worker_id = f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    liveness = os.path.join(spool, "workers", worker_id)
    touch(liveness)  # register; the beat thread only refreshes from here on
    beats = _Heartbeat(heartbeat)
    beats.set_paths([liveness])
    beats.start()
    done = 0
    idle_since = time.time()
    try:
        while True:
            if os.path.exists(os.path.join(spool, STOP_FILE)):
                break
            if not os.path.isdir(os.path.join(spool, "tasks")):
                break  # spool removed underneath us
            claimed = claim_task(spool)
            if claimed is None:
                if idle_exit is not None and time.time() - idle_since > idle_exit:
                    break
                time.sleep(poll)
                continue
            task_id, path = claimed
            lease = os.path.join(spool, "claimed", f"{task_id}.lease")
            touch(lease)
            beats.set_paths([liveness, lease])
            try:
                run_claimed_task(spool, task_id, path)
            finally:
                beats.set_paths([liveness])
            done += 1
            idle_since = time.time()
            if max_tasks is not None and done >= max_tasks:
                break
    finally:
        beats.stop()
        try:
            os.remove(liveness)
        except OSError:
            pass
    return done


def build_parser() -> argparse.ArgumentParser:
    """Build the worker's command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Serve repro.cluster queue tasks from a spool directory.",
    )
    parser.add_argument("--spool", required=True, help="spool directory to attach to")
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many tasks (default: serve forever)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.05, help="idle poll period in seconds"
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=1.0,
        help="liveness/lease heartbeat period in seconds",
    )
    parser.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: wait for the stop file)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    serve(
        args.spool,
        max_tasks=args.max_tasks,
        poll=args.poll,
        heartbeat=args.heartbeat,
        idle_exit=args.idle_exit,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
