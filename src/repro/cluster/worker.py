"""Queue-transport worker: ``python -m repro.cluster.worker --spool DIR``.

A worker attaches to a spool directory (see
:class:`repro.cluster.transport.QueueTransport`), claims task files by
atomic rename, executes them through the shared
:func:`repro.cluster.protocol.execute_task` dispatch, and publishes result
files.  Run it on any host or container that can see the spool's
filesystem and import ``repro`` — that is the whole join protocol.

While a task runs, a daemon thread heartbeats both the worker's liveness
file and the task's lease; a worker that is killed (or whose host
disappears) simply stops heartbeating, and the submitting parent re-enqueues
the lease-expired task for someone else.  Task exceptions are published as
error results, never raised — a poisoned task fails its submitter, not the
worker.

Exit conditions: the spool's ``stop`` file appears (written by the parent's
``close()``), the spool directory vanishes, ``--max-tasks`` is reached, or
``--max-idle`` seconds pass without any task to claim (``--idle-exit`` is
the historical spelling, kept as an alias) — so an orphaned worker whose
parent died without a stop file drains away instead of polling a dead
spool forever.  ``--clean`` is a maintenance subcommand instead of a serve
loop: it garbage-collects stale spool debris (orphan results, leases,
events, quarantine directories) past a TTL, and removes entire spool/run
directories whose *newest* file is older than the TTL.

With ``REPRO_CHAOS`` armed (see :mod:`repro.cluster.chaos`), the serve loop
deterministically injects worker kills right after a claim and heartbeat
stalls long enough to expire the lease — the two failure modes a real
fleet produces through OOM kills and CPU starvation.

With tracing on (``REPRO_TRACE=1`` — the queue transport propagates it to
the workers it spawns), every lifecycle decision — join, claim, done,
failure, exit — is appended as a JSON line to
``<spool>/events/<worker id>.jsonl``, so the distributed event log survives
the worker itself: after a ``SIGKILL`` the last line of the dead worker's
file is the claim it never finished, and the parent's ``lease_expired`` /
``task_retried`` events point at the same task id.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
import uuid
from typing import List, Optional

from repro.cluster.chaos import env_injector
from repro.cluster.protocol import WORKER_ENV_VAR
from repro.cluster.transport import (
    SPOOL_DIRS,
    STOP_FILE,
    claim_task,
    init_spool,
    refresh,
    run_claimed_task,
    spool_events_dir,
    touch,
)
from repro.obs import recorder as obs


class _Heartbeat(threading.Thread):
    """Daemon thread refreshing the worker's liveness + current lease files."""

    def __init__(self, interval: float) -> None:
        super().__init__(daemon=True)
        self.interval = interval
        self.paths: List[str] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def set_paths(self, paths: List[str]) -> None:
        with self._lock:
            self.paths = list(paths)

    def beat_once(self) -> None:
        with self._lock:
            paths = list(self.paths)
        for path in paths:
            try:
                # Refresh-only: once a lease (or the liveness file) has been
                # deleted, a late beat must not resurrect it as an orphan.
                refresh(path)
            except OSError:
                pass

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat_once()

    def stop(self) -> None:
        self._stop.set()


def serve(
    spool: str,
    max_tasks: Optional[int] = None,
    poll: float = 0.05,
    heartbeat: float = 1.0,
    idle_exit: Optional[float] = None,
) -> int:
    """Serve tasks from ``spool`` until told to stop; returns tasks executed."""
    os.environ[WORKER_ENV_VAR] = "1"  # nested simulators must run inline
    init_spool(spool)
    worker_id = f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    liveness = os.path.join(spool, "workers", worker_id)
    if obs.enabled():
        # Durable distributed event log: one JSONL file per worker in the
        # spool, appended on every lifecycle decision.  Survives the worker
        # (and its SIGKILL), unlike the in-memory recorder.
        obs.set_event_file(os.path.join(spool_events_dir(spool), f"{worker_id}.jsonl"))
        # Timeline attribution: per-task capture recorders inherit this
        # label, so intervals shipped back to the parent name the worker
        # (not just the pid) in trace tracks and run reports.
        obs.set_worker(worker_id)
    obs.event("worker_joined", worker=worker_id, spool=spool, pid=os.getpid())
    touch(liveness)  # register; the beat thread only refreshes from here on
    beats = _Heartbeat(heartbeat)
    beats.set_paths([liveness])
    beats.start()
    done = 0
    exit_reason = "stop"
    idle_since = time.time()
    try:
        while True:
            if os.path.exists(os.path.join(spool, STOP_FILE)):
                exit_reason = "stop_file"
                break
            if not os.path.isdir(os.path.join(spool, "tasks")):
                exit_reason = "spool_vanished"
                break  # spool removed underneath us
            claimed = claim_task(spool)
            if claimed is None:
                if idle_exit is not None and time.time() - idle_since > idle_exit:
                    exit_reason = "idle_exit"
                    break
                time.sleep(poll)
                continue
            task_id, path = claimed
            obs.event("task_claimed", worker=worker_id, task_id=task_id)
            lease = os.path.join(spool, "claimed", f"{task_id}.lease")
            touch(lease)
            injector = env_injector()
            if injector is not None and injector.should("kill", task_id):
                # OOM-kill / preemption right after the claim: die without
                # publishing anything.  The claim and its never-refreshed
                # lease stay behind for the parent's lease expiry to find.
                obs.event(
                    "chaos_injected", fault="kill", task_id=task_id, worker=worker_id
                )
                os._exit(9)
            stalled = injector is not None and injector.should("stall", task_id)
            if stalled:
                # CPU-starved worker: the heartbeat freezes (the beat thread
                # gets no paths) while execution proceeds, so the parent
                # expires the lease and re-runs the task — the canonical
                # duplicate-delivery race.
                obs.event(
                    "chaos_injected", fault="stall", task_id=task_id, worker=worker_id
                )
            beats.set_paths([liveness] if stalled else [liveness, lease])
            try:
                run_claimed_task(spool, task_id, path)
            finally:
                beats.set_paths([liveness])
            obs.event("task_done", worker=worker_id, task_id=task_id)
            done += 1
            idle_since = time.time()
            if max_tasks is not None and done >= max_tasks:
                exit_reason = "max_tasks"
                break
    finally:
        beats.stop()
        obs.event(
            "worker_exit", worker=worker_id, reason=exit_reason, tasks_done=done
        )
        try:
            os.remove(liveness)
        except OSError:
            pass
    return done


def clean_spool(spool: str, ttl: float) -> List[str]:
    """Garbage-collect stale debris from a spool/run directory.

    Two levels of cleanup, both gated on ``ttl`` seconds of inactivity:

    * files inside a *live* spool's bookkeeping subdirectories (orphan
      results, stale worker liveness files, leftover claims/leases, old
      event logs) and stale ``quarantine/`` subdirectories are removed
      individually once older than the TTL;
    * if after that the directory's **newest** remaining file (the spool
      itself, a checkpoint journal, anything) is still older than the TTL,
      the whole directory is removed — covering dead private spools and
      abandoned ``--resume`` run directories alike.

    Returns the paths removed (files and directories), for reporting.
    """
    import shutil

    removed: List[str] = []
    now = time.time()
    if not os.path.isdir(spool):
        return removed

    def _stale(path: str) -> bool:
        try:
            return now - os.path.getmtime(path) > ttl
        except OSError:
            return False

    for sub in SPOOL_DIRS:
        directory = os.path.join(spool, sub)
        if not os.path.isdir(directory):
            continue
        for name in sorted(os.listdir(directory)):
            path = os.path.join(directory, name)
            if os.path.isfile(path) and _stale(path):
                try:
                    os.remove(path)
                    removed.append(path)
                except OSError:
                    pass
    quarantine = os.path.join(spool, "quarantine")
    if os.path.isdir(quarantine):
        for name in sorted(os.listdir(quarantine)):
            path = os.path.join(quarantine, name)
            if os.path.isdir(path) and _stale(path):
                shutil.rmtree(path, ignore_errors=True)
                removed.append(path)
    newest = 0.0
    for root, _dirs, files in os.walk(spool):
        for name in files:
            try:
                newest = max(newest, os.path.getmtime(os.path.join(root, name)))
            except OSError:
                pass
    if now - (newest or 0.0) > ttl:
        shutil.rmtree(spool, ignore_errors=True)
        removed.append(spool)
    return removed


def build_parser() -> argparse.ArgumentParser:
    """Build the worker's command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Serve repro.cluster queue tasks from a spool directory.",
    )
    parser.add_argument("--spool", required=True, help="spool directory to attach to")
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many tasks (default: serve forever)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.05, help="idle poll period in seconds"
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=1.0,
        help="liveness/lease heartbeat period in seconds",
    )
    parser.add_argument(
        "--max-idle",
        "--idle-exit",
        dest="max_idle",
        type=float,
        default=None,
        help=(
            "exit after this many idle seconds so orphaned workers drain away "
            "(default: wait for the stop file; --idle-exit is the historical "
            "spelling)"
        ),
    )
    parser.add_argument(
        "--clean",
        action="store_true",
        help=(
            "instead of serving, garbage-collect stale spool/run debris past "
            "--ttl and exit"
        ),
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=24 * 3600.0,
        help="staleness threshold in seconds for --clean (default: 1 day)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.clean:
        for path in clean_spool(args.spool, ttl=args.ttl):
            print(f"removed {path}")
        return 0
    serve(
        args.spool,
        max_tasks=args.max_tasks,
        poll=args.poll,
        heartbeat=args.heartbeat,
        idle_exit=args.max_idle,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
