"""The shared submit/collect loop every cluster consumer drives.

:func:`stream_tasks` is the one scheduling loop behind cluster fault
simulation, cluster/sharded PODEM generation and the experiment runner's
cell fan-out.  It pulls *units* (chunk bounds, shard ranges, cells) from an
iterator, encodes each to a task **at submission time** — which is what
makes detected-fault broadcasts and adaptive chunk sizing work: a unit
built late sees everything merged so far — keeps a bounded number of tasks
in flight, and hands results to the caller's merge callback in arrival
order.

Arrival order is whatever the transport produces; correctness comes from
the merge callbacks being order-independent and idempotent
(:mod:`repro.cluster.protocol`).  Results for unknown task ids — duplicate
deliveries a retrying transport could not dedupe itself — are discarded
here, making the loop safe over any transport.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.cluster.transport import Transport
from repro.engine.pool import CHUNK_TIMEOUT

_DONE = object()


def stream_tasks(
    transport: Transport,
    units: Iterator[object],
    build_task: Callable[[object], Optional[Tuple[Dict[str, object], object]]],
    on_result: Callable[[object, object], None],
    max_inflight: int,
    timeout: float = CHUNK_TIMEOUT,
) -> int:
    """Run every unit through the transport; returns the task count.

    Args:
        transport: where tasks execute.
        units: lazily consumed unit stream; may be a generator whose next
            value depends on results merged so far (adaptive chunking).
        build_task: unit -> ``(task, meta)``, or ``None`` to skip the unit
            entirely (e.g. a shard whose faults were all detected already).
        on_result: called with ``(meta, payload)`` for each completed task,
            in arrival order; must be order-independent and idempotent.
        max_inflight: submission window; small enough that late-built tasks
            benefit from broadcasts, large enough to keep workers busy.
        timeout: per-collect timeout handed to the transport.
    """
    inflight: Dict[str, object] = {}
    submitted = 0
    exhausted = False
    while True:
        while not exhausted and len(inflight) < max_inflight:
            unit = next(units, _DONE)
            if unit is _DONE:
                exhausted = True
                break
            built = build_task(unit)
            if built is None:
                continue
            task, meta = built
            inflight[transport.submit(task)] = meta
            submitted += 1
        if not inflight:
            if exhausted:
                return submitted
            continue
        task_id, payload = transport.next_result(timeout=timeout)
        meta = inflight.pop(task_id, _DONE)
        if meta is _DONE:
            continue  # duplicate delivery of an already-merged task
        on_result(meta, payload)
