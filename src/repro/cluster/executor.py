"""The shared submit/collect loop every cluster consumer drives.

:func:`stream_tasks` is the one scheduling loop behind cluster fault
simulation, cluster/sharded PODEM generation and the experiment runner's
cell fan-out.  It pulls *units* (chunk bounds, shard ranges, cells) from an
iterator, encodes each to a task **at submission time** — which is what
makes detected-fault broadcasts and adaptive chunk sizing work: a unit
built late sees everything merged so far — keeps a bounded number of tasks
in flight, and hands results to the caller's merge callback in arrival
order.

Arrival order is whatever the transport produces; correctness comes from
the merge callbacks being order-independent and idempotent
(:mod:`repro.cluster.protocol`).  Results for unknown task ids — duplicate
deliveries a retrying transport could not dedupe itself — are discarded
here, making the loop safe over any transport.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.cluster.checkpoint import MISSING, RunJournal
from repro.cluster.transport import Transport
from repro.engine.pool import CHUNK_TIMEOUT
from repro.obs import recorder as obs

_DONE = object()


def stream_tasks(
    transport: Transport,
    units: Iterator[object],
    build_task: Callable[[object], Optional[Tuple[Dict[str, object], object]]],
    on_result: Callable[[object, object], None],
    max_inflight: int,
    timeout: float = CHUNK_TIMEOUT,
    journal: Optional[RunJournal] = None,
    task_key: Optional[Callable[[Dict[str, object]], str]] = None,
) -> int:
    """Run every unit through the transport; returns the task count.

    Args:
        transport: where tasks execute.
        units: lazily consumed unit stream; may be a generator whose next
            value depends on results merged so far (adaptive chunking).
        build_task: unit -> ``(task, meta)``, or ``None`` to skip the unit
            entirely (e.g. a shard whose faults were all detected already).
        on_result: called with ``(meta, payload)`` for each completed task,
            in arrival order; must be order-independent and idempotent.
        max_inflight: submission window; small enough that late-built tasks
            benefit from broadcasts, large enough to keep workers busy.
        timeout: per-collect timeout handed to the transport.
        journal: optional checkpoint journal.  A built task whose content
            key is already journalled replays its recorded payload straight
            into ``on_result`` without touching the transport; every task
            that does execute has its payload journalled on arrival.  The
            idempotent order-independent merges are what make replayed and
            freshly executed results freely interleavable.
        task_key: task dict -> stable content key (required with
            ``journal``); see :func:`repro.cluster.checkpoint.task_key`.
    """
    inflight: Dict[str, object] = {}
    keys: Dict[str, str] = {}
    submitted = 0
    exhausted = False
    while True:
        while not exhausted and len(inflight) < max_inflight:
            unit = next(units, _DONE)
            if unit is _DONE:
                exhausted = True
                break
            built = build_task(unit)
            if built is None:
                continue
            task, meta = built
            if journal is not None:
                key = task_key(task)
                cached = journal.get(key)
                if cached is not MISSING:
                    obs.counter("cluster.tasks_replayed")
                    submitted += 1
                    on_result(meta, cached)
                    continue
            task_id = transport.submit(task)
            if journal is not None:
                keys[task_id] = key
            inflight[task_id] = meta
            submitted += 1
        if not inflight:
            if exhausted:
                return submitted
            continue
        task_id, payload = transport.next_result(timeout=timeout)
        meta = inflight.pop(task_id, _DONE)
        if meta is _DONE:
            continue  # duplicate delivery of an already-merged task
        if journal is not None:
            obs.counter("cluster.tasks_executed")
            journal.put(keys.pop(task_id), payload)
        on_result(meta, payload)
