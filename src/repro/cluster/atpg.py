"""Transport-driven speculative PODEM scheduling for ATPG.

The ATPG driver walks the collapsed fault list in order, dropping faults
that earlier cubes already detect; per-fault PODEM runs are independent and
deterministic, so they can be generated speculatively ahead of the merge.
:class:`ClusterPodemScheduler` ships fault chunks over any cluster
transport, *broadcasts* drops between submissions (a chunk submitted after
a fault was dropped simply omits it), and hands results back strictly in
fault-list order — so the driver's :class:`~repro.atpg.tpg.ATPGResult` is
bit-identical to a serial run for any worker count, arrival order or
retried task.

The sharded backend's :class:`~repro.engine.sharded.ShardedPodemScheduler`
is a thin subclass pinning the transport to the shared spawn pool; the
``cluster`` backend uses this class directly with whatever transport is
resolved.  Whenever no transport can be used — or one fails mid-run — the
scheduler degrades to running the same compiled engine inline, result for
result (already-buffered results stay valid because per-fault runs are
deterministic).
"""

from __future__ import annotations

import traceback
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.cluster.checkpoint import MISSING, program_digest, resolve_journal, task_key
from repro.cluster.protocol import (
    CHUNKS_PER_WORKER,
    in_worker_context,
    podem_base_task,
    podem_task,
)
from repro.cluster.transport import (
    QuarantineError,
    Transport,
    TransportError,
    degraded_transport_name,
    discard_transport,
    resolve_transport,
)
from repro.engine.compile import CompiledCircuit
from repro.engine.pool import CHUNK_TIMEOUT, resolve_jobs
from repro.engine.ternary import CompiledTernaryPodem, RawPodemResult
from repro.obs import recorder as obs


class ClusterPodemScheduler:
    """Prefetches per-fault compiled-PODEM results over a cluster transport.

    Args:
        program: compiled circuit shipped to workers (pickled once).
        sites: fault-site row per fault, in fault-list order.
        stuck_values: stuck value (0/1) per fault, aligned with ``sites``.
        backtrack_limit: PODEM abort threshold (applied identically in every
            worker and in the inline fallback).
        transport: transport spec or instance; ``None`` resolves through
            ``REPRO_TRANSPORT``.
        jobs: worker count; ``None`` resolves through
            :func:`~repro.engine.pool.resolve_jobs`.
        chunks_per_worker: chunk-sizing knob, as for fault simulation.
        resume: run directory (or :class:`~repro.cluster.checkpoint.RunJournal`)
            to checkpoint completed chunk results into and replay them from;
            keys are salted with the compiled program's content digest so
            journals never leak across circuits.
    """

    #: ``stats["mode"]`` value while results come from the transport.
    POOLED_MODE = "cluster"

    def __init__(
        self,
        program: CompiledCircuit,
        sites: Sequence[int],
        stuck_values: Sequence[int],
        backtrack_limit: int,
        transport=None,
        jobs: Optional[int] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        resume=None,
    ) -> None:
        self.program = program
        self.sites = list(sites)
        self.stuck_values = [1 if value else 0 for value in stuck_values]
        self.backtrack_limit = int(backtrack_limit)
        self.transport = transport
        self.jobs = resolve_jobs(jobs)
        self._engine: Optional[CompiledTernaryPodem] = None
        self._buffer: Dict[int, RawPodemResult] = {}
        self._dropped: set = set()
        self._inflight: Dict[str, List[int]] = {}
        self._keys: Dict[str, str] = {}
        self._pending: Deque[object] = deque()
        self._transport: Optional[Transport] = None
        self._journal = resolve_journal(resume, "podem")
        self._journal_salt = (
            f"{program_digest(program)}|{self.backtrack_limit}"
            if self._journal is not None
            else ""
        )
        self.stats: Dict[str, object] = {
            "mode": "inline",
            "transport": None,
            "jobs": self.jobs,
            "chunks": 0,
            "dropped_submissions": 0,
        }
        n_faults = len(self.sites)
        if n_faults <= 1 or in_worker_context():
            return
        chunk = max(1, -(-n_faults // (self.jobs * max(1, int(chunks_per_worker)))))
        chunks = [(lo, min(lo + chunk, n_faults)) for lo in range(0, n_faults, chunk)]
        if len(chunks) <= 1:
            return  # a single chunk gains nothing from shipping
        transport_obj = self._make_transport(self.jobs)
        if transport_obj is None:
            return
        self._transport = transport_obj
        self._pending = deque(chunks)
        self.stats["mode"] = self.POOLED_MODE
        self.stats["transport"] = transport_obj.name
        self._base_task = podem_base_task(program, self.backtrack_limit)

    def _make_transport(self, jobs: int) -> Optional[Transport]:
        """Resolve the transport, or ``None`` to generate inline."""
        if isinstance(self.transport, Transport):
            return self.transport
        try:
            return resolve_transport(self.transport, jobs=jobs)
        except TransportError:
            return None

    def _failed(self) -> None:
        """Hook invoked when the transport dies mid-run."""
        if self._transport is not None and not isinstance(self.transport, Transport):
            discard_transport(self._transport)

    @property
    def pooled(self) -> bool:
        """Whether results are (still) coming from the transport."""
        return self._transport is not None

    def drop(self, index: int) -> None:
        """Broadcast that the fault at ``index`` no longer needs a cube."""
        self._dropped.add(index)

    def _run_inline(self, index: int) -> RawPodemResult:
        if self._engine is None:
            self._engine = CompiledTernaryPodem(
                self.program, backtrack_limit=self.backtrack_limit
            )
        return self._engine.run(self.sites[index], self.stuck_values[index])

    def _pump(self) -> None:
        """Submit pending chunks (minus dropped faults) and collect one result."""
        max_inflight = max(2, self.jobs + 1)
        while self._pending and len(self._inflight) < max_inflight:
            unit = self._pending.popleft()
            if isinstance(unit, tuple):
                # A (lo, hi) range from the initial plan; after a mid-run
                # degradation, re-enqueued in-flight work arrives as
                # explicit position lists instead.
                lo, hi = unit
                candidates: Sequence[int] = range(lo, hi)
            else:
                candidates = unit
            positions = [i for i in candidates if i not in self._dropped]
            self.stats["dropped_submissions"] += len(candidates) - len(positions)
            if not positions:
                continue
            task = podem_task(
                self._base_task,
                [self.sites[i] for i in positions],
                [self.stuck_values[i] for i in positions],
            )
            self.stats["chunks"] += 1
            if self._journal is not None:
                key = task_key(task, salt=self._journal_salt)
                cached = self._journal.get(key)
                if cached is not MISSING:
                    obs.counter("cluster.tasks_replayed")
                    for index, raw in zip(positions, cached):
                        self._buffer[index] = raw
                    continue
            task_id = self._transport.submit(task)
            self._inflight[task_id] = positions
            if self._journal is not None:
                self._keys[task_id] = key
        if not self._inflight:
            if self._buffer:
                return  # journal replay satisfied this pump without a submit
            raise RuntimeError(
                "PODEM scheduler has no pending work for the requested fault"
            )
        task_id, raws = self._transport.next_result(timeout=CHUNK_TIMEOUT)
        positions = self._inflight.pop(task_id, None)
        if positions is None:
            return  # duplicate delivery of an already-merged chunk
        if self._journal is not None:
            obs.counter("cluster.tasks_executed")
            self._journal.put(self._keys.pop(task_id), raws)
        for index, raw in zip(positions, raws):
            self._buffer[index] = raw

    def fetch(self, index: int) -> RawPodemResult:
        """The PODEM result for the fault at ``index`` (blocking).

        The driver fetches in increasing index order and never fetches a
        dropped fault, so the result is either buffered already or owed by a
        pending/in-flight chunk.  Any transport failure degrades to the
        inline engine for this and all later fetches — already-buffered
        results stay valid because per-fault runs are deterministic.
        """
        buffered = self._buffer.pop(index, None)
        if buffered is not None:
            return buffered
        while True:
            if self._transport is None:
                return self._run_inline(index)
            try:
                while index not in self._buffer:
                    self._pump()
                return self._buffer.pop(index)
            except QuarantineError:
                # The transport's retry/quarantine ladder already ran the
                # task inline and it still failed — a poisoned task, not a
                # sick transport.  Propagate the structured report.
                raise
            except Exception as err:
                # Degrade visibly: the cause (task id, transport, traceback)
                # goes to the event log before the next rung takes over.
                current_name = getattr(self._transport, "name", None)
                next_name = self._next_rung(current_name)
                replacement: Optional[Transport] = None
                if next_name is not None:
                    try:
                        replacement = resolve_transport(next_name, jobs=self.jobs)
                    except (TransportError, ValueError):
                        replacement = None
                obs.event(
                    "transport_failed",
                    transport=getattr(err, "transport", None) or current_name,
                    task_id=getattr(err, "task_id", None),
                    consumer="podem_scheduler",
                    fallback=next_name if replacement is not None else "inline",
                    error=repr(err),
                    traceback=traceback.format_exc(),
                )
                self._failed()
                if replacement is None:
                    self._transport = None
                    self._inflight.clear()
                    self._keys.clear()
                    self._pending.clear()
                    # Visible, like the fault-sim fallback.
                    self.stats["mode"] = "inline"
                    return self._run_inline(index)
                obs.event(
                    "transport_degraded",
                    consumer="podem_scheduler",
                    from_transport=current_name,
                    to_transport=next_name,
                )
                # Undelivered in-flight work moves to the front of the queue
                # as explicit position lists; chunk results are per-fault
                # deterministic, so re-execution on the new rung merges
                # identically.
                for positions in self._inflight.values():
                    self._pending.appendleft(list(positions))
                self._inflight.clear()
                self._keys.clear()
                self._transport = replacement
                self.stats["transport"] = replacement.name
                self.stats["degraded_from"] = current_name

    def _next_rung(self, current_name: Optional[str]) -> Optional[str]:
        """Hook: next transport down the degradation ladder, or ``None``.

        Caller-pinned transport instances never degrade (their replacement
        is not this scheduler's to choose); the sharded subclass pins the
        ladder shut the same way.
        """
        if isinstance(self.transport, Transport) or current_name is None:
            return None
        return degraded_transport_name(current_name)
