"""Transport-driven speculative PODEM scheduling for ATPG.

The ATPG driver walks the collapsed fault list in order, dropping faults
that earlier cubes already detect; per-fault PODEM runs are independent and
deterministic, so they can be generated speculatively ahead of the merge.
:class:`ClusterPodemScheduler` ships fault chunks over any cluster
transport, *broadcasts* drops between submissions (a chunk submitted after
a fault was dropped simply omits it), and hands results back strictly in
fault-list order — so the driver's :class:`~repro.atpg.tpg.ATPGResult` is
bit-identical to a serial run for any worker count, arrival order or
retried task.

The sharded backend's :class:`~repro.engine.sharded.ShardedPodemScheduler`
is a thin subclass pinning the transport to the shared spawn pool; the
``cluster`` backend uses this class directly with whatever transport is
resolved.  Whenever no transport can be used — or one fails mid-run — the
scheduler degrades to running the same compiled engine inline, result for
result (already-buffered results stay valid because per-fault runs are
deterministic).
"""

from __future__ import annotations

import traceback
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.cluster.protocol import (
    CHUNKS_PER_WORKER,
    in_worker_context,
    podem_base_task,
    podem_task,
)
from repro.cluster.transport import (
    Transport,
    TransportError,
    discard_transport,
    resolve_transport,
)
from repro.engine.compile import CompiledCircuit
from repro.engine.pool import CHUNK_TIMEOUT, resolve_jobs
from repro.engine.ternary import CompiledTernaryPodem, RawPodemResult
from repro.obs import recorder as obs


class ClusterPodemScheduler:
    """Prefetches per-fault compiled-PODEM results over a cluster transport.

    Args:
        program: compiled circuit shipped to workers (pickled once).
        sites: fault-site row per fault, in fault-list order.
        stuck_values: stuck value (0/1) per fault, aligned with ``sites``.
        backtrack_limit: PODEM abort threshold (applied identically in every
            worker and in the inline fallback).
        transport: transport spec or instance; ``None`` resolves through
            ``REPRO_TRANSPORT``.
        jobs: worker count; ``None`` resolves through
            :func:`~repro.engine.pool.resolve_jobs`.
        chunks_per_worker: chunk-sizing knob, as for fault simulation.
    """

    #: ``stats["mode"]`` value while results come from the transport.
    POOLED_MODE = "cluster"

    def __init__(
        self,
        program: CompiledCircuit,
        sites: Sequence[int],
        stuck_values: Sequence[int],
        backtrack_limit: int,
        transport=None,
        jobs: Optional[int] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
    ) -> None:
        self.program = program
        self.sites = list(sites)
        self.stuck_values = [1 if value else 0 for value in stuck_values]
        self.backtrack_limit = int(backtrack_limit)
        self.transport = transport
        self.jobs = resolve_jobs(jobs)
        self._engine: Optional[CompiledTernaryPodem] = None
        self._buffer: Dict[int, RawPodemResult] = {}
        self._dropped: set = set()
        self._inflight: Dict[str, List[int]] = {}
        self._pending: Deque[Tuple[int, int]] = deque()
        self._transport: Optional[Transport] = None
        self.stats: Dict[str, object] = {
            "mode": "inline",
            "transport": None,
            "jobs": self.jobs,
            "chunks": 0,
            "dropped_submissions": 0,
        }
        n_faults = len(self.sites)
        if n_faults <= 1 or in_worker_context():
            return
        chunk = max(1, -(-n_faults // (self.jobs * max(1, int(chunks_per_worker)))))
        chunks = [(lo, min(lo + chunk, n_faults)) for lo in range(0, n_faults, chunk)]
        if len(chunks) <= 1:
            return  # a single chunk gains nothing from shipping
        transport_obj = self._make_transport(self.jobs)
        if transport_obj is None:
            return
        self._transport = transport_obj
        self._pending = deque(chunks)
        self.stats["mode"] = self.POOLED_MODE
        self.stats["transport"] = transport_obj.name
        self._base_task = podem_base_task(program, self.backtrack_limit)

    def _make_transport(self, jobs: int) -> Optional[Transport]:
        """Resolve the transport, or ``None`` to generate inline."""
        if isinstance(self.transport, Transport):
            return self.transport
        try:
            return resolve_transport(self.transport, jobs=jobs)
        except TransportError:
            return None

    def _failed(self) -> None:
        """Hook invoked when the transport dies mid-run."""
        if self._transport is not None and not isinstance(self.transport, Transport):
            discard_transport(self._transport)

    @property
    def pooled(self) -> bool:
        """Whether results are (still) coming from the transport."""
        return self._transport is not None

    def drop(self, index: int) -> None:
        """Broadcast that the fault at ``index`` no longer needs a cube."""
        self._dropped.add(index)

    def _run_inline(self, index: int) -> RawPodemResult:
        if self._engine is None:
            self._engine = CompiledTernaryPodem(
                self.program, backtrack_limit=self.backtrack_limit
            )
        return self._engine.run(self.sites[index], self.stuck_values[index])

    def _pump(self) -> None:
        """Submit pending chunks (minus dropped faults) and collect one result."""
        max_inflight = max(2, self.jobs + 1)
        while self._pending and len(self._inflight) < max_inflight:
            lo, hi = self._pending.popleft()
            positions = [i for i in range(lo, hi) if i not in self._dropped]
            self.stats["dropped_submissions"] += (hi - lo) - len(positions)
            if not positions:
                continue
            task = podem_task(
                self._base_task,
                [self.sites[i] for i in positions],
                [self.stuck_values[i] for i in positions],
            )
            self.stats["chunks"] += 1
            self._inflight[self._transport.submit(task)] = positions
        if not self._inflight:
            raise RuntimeError(
                "PODEM scheduler has no pending work for the requested fault"
            )
        task_id, raws = self._transport.next_result(timeout=CHUNK_TIMEOUT)
        positions = self._inflight.pop(task_id, None)
        if positions is None:
            return  # duplicate delivery of an already-merged chunk
        for index, raw in zip(positions, raws):
            self._buffer[index] = raw

    def fetch(self, index: int) -> RawPodemResult:
        """The PODEM result for the fault at ``index`` (blocking).

        The driver fetches in increasing index order and never fetches a
        dropped fault, so the result is either buffered already or owed by a
        pending/in-flight chunk.  Any transport failure degrades to the
        inline engine for this and all later fetches — already-buffered
        results stay valid because per-fault runs are deterministic.
        """
        buffered = self._buffer.pop(index, None)
        if buffered is not None:
            return buffered
        if self._transport is None:
            return self._run_inline(index)
        try:
            while index not in self._buffer:
                self._pump()
            return self._buffer.pop(index)
        except Exception as err:
            # Degrade visibly: the cause (task id, transport, traceback)
            # goes to the event log before the inline engine takes over.
            obs.event(
                "transport_failed",
                transport=getattr(err, "transport", None)
                or getattr(self._transport, "name", None),
                task_id=getattr(err, "task_id", None),
                consumer="podem_scheduler",
                fallback="inline",
                error=repr(err),
                traceback=traceback.format_exc(),
            )
            self._failed()
            self._transport = None
            self._inflight.clear()
            self._pending.clear()
            self.stats["mode"] = "inline"  # visible, like the fault-sim fallback
            return self._run_inline(index)
